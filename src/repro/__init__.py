"""Semantic View Synchrony — a reproduction of Pereira, Rodrigues & Oliveira,
"Reducing the Cost of Group Communication with Semantic View Synchrony",
DSN 2002.

Quick start::

    from repro import GroupStack, ItemTagging, StackConfig

    stack = GroupStack(ItemTagging(), StackConfig(n=3, consensus="oracle"))
    stack[0].multicast(payload={"x": 1}, annotation=7)   # item tag 7
    stack.run(until=1.0)
    print(stack[1].drain())

Package layout:

* :mod:`repro.core` — the paper's contribution: obsolescence relations and
  representations, purgeable buffers, the SVS protocol (Figure 1), and the
  executable specification.
* :mod:`repro.sim` — discrete-event simulation substrate.
* :mod:`repro.fd`, :mod:`repro.consensus` — failure detection and consensus
  building blocks.
* :mod:`repro.gcs` — assembled group communication stack and endpoints.
* :mod:`repro.replication` — primary-backup replication over SVS.
* :mod:`repro.workload` — the calibrated game-trace generator (Section 5.2).
* :mod:`repro.analysis` — the throughput model and per-figure experiment
  harness (Section 5.3–5.4).
"""

from repro.core import (
    BatchAssembler,
    BatchEncoder,
    DataMessage,
    DeliveryQueue,
    EmptyRelation,
    EnumerationEncoder,
    HistoryRecorder,
    InitMessage,
    ItemTagging,
    ItemUpdate,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    MessageId,
    ObsolescenceRelation,
    PredMessage,
    SVSListeners,
    SVSProcess,
    View,
    ViewDelivery,
    check_all,
    check_classic_vs,
    check_fifo_sr,
    check_integrity,
    check_svs,
    check_view_agreement,
)
from repro.gcs import GroupEndpoint, GroupStack, RateLimitedConsumer, StackConfig
from repro.sim import Network, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core types
    "MessageId",
    "View",
    "DataMessage",
    "ViewDelivery",
    "InitMessage",
    "PredMessage",
    # relations
    "ObsolescenceRelation",
    "EmptyRelation",
    "ItemTagging",
    "MessageEnumeration",
    "EnumerationEncoder",
    "KEnumeration",
    "KEnumerationEncoder",
    # structures
    "DeliveryQueue",
    "ItemUpdate",
    "BatchEncoder",
    "BatchAssembler",
    # protocol
    "SVSProcess",
    "SVSListeners",
    "HistoryRecorder",
    "check_svs",
    "check_fifo_sr",
    "check_integrity",
    "check_view_agreement",
    "check_classic_vs",
    "check_all",
    # stack
    "GroupStack",
    "StackConfig",
    "GroupEndpoint",
    "RateLimitedConsumer",
    # substrate
    "Simulator",
    "Network",
]
