"""Semantic View Synchrony — a reproduction of Pereira, Rodrigues & Oliveira,
"Reducing the Cost of Group Communication with Semantic View Synchrony",
DSN 2002.

Quick start — declare a whole experiment session with the Scenario API::

    from repro import Scenario

    result = (
        Scenario()
        .group(n=5, relation="item-tagging", consensus="oracle")
        .latency("lognormal", mean=0.001)
        .workload("game", rounds=600)          # calibrated Quake-like trace
        .consumers(rate=120)                   # everyone consumes at 120 msg/s
        .perturb(pid=2, at=5.0, duration=1.0)  # transient stall (Section 2)
        .crash(pid=4, at=8.0)                  # crash-stop failure
        .view_change(at=8.5)                   # reconfigure the group
        .collect("throughput", "queue_depth", "view_changes")
        .run(until=30.0)
    )
    assert result.ok                           # the executable spec held
    result.write_json("run.json")

Every named component — relation, consensus protocol, failure detector,
latency model, workload — resolves through :mod:`repro.registry`, so
third-party backends plug in with a decorator.  The lower-level
:class:`GroupStack` remains for hand-wired setups::

    from repro import GroupStack, ItemTagging, StackConfig

    stack = GroupStack(ItemTagging(), StackConfig(n=3, consensus="oracle"))
    stack[0].multicast(payload={"x": 1}, annotation=7)   # item tag 7
    stack.run(until=1.0)
    print(stack[1].drain())

Package layout:

* :mod:`repro.core` — the paper's contribution: obsolescence relations and
  representations, purgeable buffers, the SVS protocol (Figure 1), and the
  executable specification.
* :mod:`repro.sim` — discrete-event simulation substrate.
* :mod:`repro.transport` — real-time substrate for live runs: asyncio
  wall clock, loopback/UDP transport backends, wire framing, and the
  sync/retransmission runtime (``Scenario.transport("loopback")``).
* :mod:`repro.fd`, :mod:`repro.consensus` — failure detection and consensus
  building blocks.
* :mod:`repro.gcs` — assembled group communication stack and endpoints.
* :mod:`repro.registry` — named component registries (the plugin surface).
* :mod:`repro.scenario` — declarative experiment sessions over the stack.
* :mod:`repro.replication` — primary-backup replication over SVS.
* :mod:`repro.workload` — the calibrated game-trace generator (Section 5.2).
* :mod:`repro.analysis` — the throughput model and per-figure experiment
  harness (Section 5.3–5.4).
"""

from repro.core import (
    BatchAssembler,
    BatchEncoder,
    DataMessage,
    DeliveryQueue,
    EmptyRelation,
    EnumerationEncoder,
    HistoryRecorder,
    InitMessage,
    ItemTagging,
    ItemUpdate,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    MessageId,
    ObsolescenceRelation,
    PredMessage,
    SVSListeners,
    SVSProcess,
    View,
    ViewDelivery,
    check_all,
    check_classic_vs,
    check_fifo_sr,
    check_integrity,
    check_svs,
    check_view_agreement,
)
from repro.faults import (
    Crash,
    FaultPlan,
    FaultPlanError,
    Heal,
    LinkFault,
    Partition,
    Perturb,
    Recover,
    ViewChange,
)
from repro.gcs import (
    GroupEndpoint,
    GroupStack,
    RateLimitedConsumer,
    RunContext,
    StackConfig,
)
from repro.registry import (
    consensus_protocols,
    failure_detectors,
    fault_profiles,
    latency_models,
    relations,
    workloads,
)
from repro.scenario import LiveScenario, Scenario, ScenarioError, ScenarioResult
from repro.sim import LognormalLatency, Network, Simulator
from repro.transport import transports
from repro.sweep import (
    ScenarioSweep,
    Sweep,
    SweepError,
    SweepInvariantError,
    SweepResult,
    scenario_cell,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core types
    "MessageId",
    "View",
    "DataMessage",
    "ViewDelivery",
    "InitMessage",
    "PredMessage",
    # relations
    "ObsolescenceRelation",
    "EmptyRelation",
    "ItemTagging",
    "MessageEnumeration",
    "EnumerationEncoder",
    "KEnumeration",
    "KEnumerationEncoder",
    # structures
    "DeliveryQueue",
    "ItemUpdate",
    "BatchEncoder",
    "BatchAssembler",
    # protocol
    "SVSProcess",
    "SVSListeners",
    "HistoryRecorder",
    "check_svs",
    "check_fifo_sr",
    "check_integrity",
    "check_view_agreement",
    "check_classic_vs",
    "check_all",
    # stack
    "GroupStack",
    "RunContext",
    "StackConfig",
    "GroupEndpoint",
    "RateLimitedConsumer",
    # scenarios
    "Scenario",
    "LiveScenario",
    "ScenarioError",
    "ScenarioResult",
    # fault injection
    "FaultPlan",
    "FaultPlanError",
    "Crash",
    "Recover",
    "Partition",
    "Heal",
    "LinkFault",
    "Perturb",
    "ViewChange",
    # sweeps
    "Sweep",
    "ScenarioSweep",
    "SweepResult",
    "SweepError",
    "SweepInvariantError",
    "scenario_cell",
    # registries
    "latency_models",
    "relations",
    "consensus_protocols",
    "failure_detectors",
    "workloads",
    "fault_profiles",
    "transports",
    # substrate
    "Simulator",
    "Network",
    "LognormalLatency",
]
