"""In-process loopback transport: asyncio timers as the wire.

The loopback backend runs a whole group inside one OS process and one
event loop, delivering frames through ``loop.call_later`` with an emulated
one-way latency.  It exists for two reasons:

* **integration lane** — live runs that are fast, portable and
  socket-free, so CI can drive the full wall-clock runtime (scheduler,
  suppression, retransmission, framing round-trips on every message) and
  cross-check the resulting history against the executable spec;
* **emulated WAN conditions** — per-frame latency jitter, loss and
  duplication drawn from seeded RNG streams (same derivation as the
  kernel's), giving reproducible *decision* sequences even though timing
  is wall-clock.

FIFO: like the simulated :class:`~repro.sim.network.Network`, a frame is
never delivered before the previously scheduled frame on the same ordered
channel unless it was explicitly selected for reordering by ``jitter``
overtake (``reorder=True``).  With ``reorder=False`` (default) channels
are FIFO, matching the paper's channel assumption.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.sim.process import ProcessId
from repro.transport.clock import WallClock
from repro.transport.interface import Transport, TransportError, transports

__all__ = ["LoopbackTransport"]


class LoopbackTransport(Transport):
    """Event-loop-local datagram fabric with emulated link conditions.

    Parameters
    ----------
    clock:
        The owning :class:`~repro.transport.clock.WallClock`; supplies the
        seeded per-edge RNG streams (``transport.<src>.<dst>``).
    latency / jitter:
        One-way delay is ``latency + U(0, jitter)`` seconds.
    loss / duplicate:
        Independent per-frame probabilities in [0, 1].
    reorder:
        When true, jittered frames skip the FIFO clamp so a later frame
        can overtake — UDP-like behaviour for stress runs.
    """

    def __init__(
        self,
        clock: WallClock,
        latency: float = 0.0005,
        jitter: float = 0.0,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: bool = False,
    ) -> None:
        super().__init__()
        if latency < 0 or jitter < 0:
            raise TransportError(
                f"latency/jitter must be non-negative: {latency!r}/{jitter!r}"
            )
        for name, rate in (("loss", loss), ("duplicate", duplicate)):
            if not (isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0):
                raise TransportError(f"{name} rate must be in [0, 1]: {rate!r}")
        self._clock = clock
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self.duplicate = float(duplicate)
        self.reorder = bool(reorder)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._last_delivery: Dict[Tuple[ProcessId, ProcessId], float] = {}

    async def start(self) -> None:
        await super().start()
        self._loop = asyncio.get_running_loop()

    async def close(self) -> None:
        await super().close()
        self._loop = None

    def send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        if self._closed or self._loop is None:
            return  # frames in flight at teardown just disappear
        self.stats.sent += 1
        rng = self._clock.rng(f"transport.{src}.{dst}")
        if self.loss and rng.random() < self.loss:
            self.stats.dropped += 1
            return
        delay = self.latency
        jittered = False
        if self.jitter:
            delay += rng.random() * self.jitter
            jittered = True
        deliver_at = self._loop.time() + delay
        channel = (src, dst)
        if not (self.reorder and jittered):
            # FIFO clamp, exactly as the simulated network applies it.
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0.0))
            self._last_delivery[channel] = deliver_at
        self._loop.call_at(deliver_at, self._dispatch, dst, data)
        if self.duplicate and rng.random() < self.duplicate:
            self.stats.duplicated += 1
            self._loop.call_at(deliver_at, self._dispatch, dst, data)


@transports.register("loopback")
def _loopback_transport(clock: WallClock, **params) -> LoopbackTransport:
    return LoopbackTransport(clock, **params)
