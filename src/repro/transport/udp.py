"""Real UDP datagram transport over asyncio sockets.

Each locally hosted pid gets its own datagram socket bound to its address
from the peer map, so a single OS process can host one member (the
multi-process deployment of ``examples/live_udp.py``) or every member
(`Scenario.transport("udp")`, where frames still cross the kernel's UDP
stack on localhost).  Sends are staged through **bounded per-channel
queues**: a burst larger than ``queue_limit`` frames drops the newest
frames (counted in ``stats.queue_overflows``) instead of buffering without
bound — on a datagram transport, late is worse than lost, because the
protocol's own sync/retransmission layer recovers losses anyway.

The peer map names every group member's address up front; live membership
is the protocol's business (views), not the transport's.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Tuple, Union

from repro.sim.process import ProcessId
from repro.transport.clock import WallClock
from repro.transport.interface import Transport, TransportError, transports

__all__ = ["UdpTransport", "default_peer_map"]

Address = Tuple[str, int]


def default_peer_map(
    n: int, host: str = "127.0.0.1", base_port: int = 47000
) -> Dict[ProcessId, Address]:
    """Convenience peer map: pid ``k`` at ``(host, base_port + k)``."""
    return {pid: (host, base_port + pid) for pid in range(n)}


class _PidProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one bound pid."""

    def __init__(self, transport: "UdpTransport", pid: ProcessId) -> None:
        self._owner = transport
        self._pid = pid

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._dispatch(self._pid, data)

    def error_received(self, exc: Exception) -> None:
        # ICMP errors (peer not up yet) are expected during staggered
        # starts; the sync layer retransmits, so they are not fatal —
        # but silently dropping them leaves a never-converging start
        # with nothing to diagnose, so count them on the owner.
        self._owner.stats.errors_received += 1


class UdpTransport(Transport):
    """Per-peer UDP sockets with bounded send queues.

    Parameters
    ----------
    clock:
        Owning wall clock (lifecycle only; UDP draws no randomness).
    peers:
        ``{pid: (host, port)}`` (or ``{pid: port}``, with ``host``) for
        every group member, local and remote alike.
    queue_limit:
        Maximum frames staged per ordered channel between event-loop
        flushes; the newest frames of an overflowing burst are dropped.
    """

    def __init__(
        self,
        clock: WallClock,
        peers: Dict[ProcessId, Union[int, Address]],
        host: str = "127.0.0.1",
        queue_limit: int = 256,
    ) -> None:
        super().__init__()
        if not peers:
            raise TransportError("UDP transport needs a non-empty peer map")
        if queue_limit < 1:
            raise TransportError(f"queue_limit must be >= 1: {queue_limit!r}")
        self._clock = clock
        self.queue_limit = queue_limit
        self.peers: Dict[ProcessId, Address] = {
            pid: (addr if isinstance(addr, tuple) else (host, addr))
            for pid, addr in peers.items()
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._sockets: Dict[ProcessId, asyncio.DatagramTransport] = {}
        self._queues: Dict[Tuple[ProcessId, ProcessId], Deque[bytes]] = {}
        self._flush_scheduled: set = set()

    def bind(self, pid: ProcessId, handler) -> None:
        if pid not in self.peers:
            raise TransportError(f"pid {pid} is not in the peer map")
        super().bind(pid, handler)

    async def start(self) -> None:
        await super().start()
        self._loop = asyncio.get_running_loop()
        for pid in sorted(self._handlers):
            transport, _protocol = await self._loop.create_datagram_endpoint(
                lambda pid=pid: _PidProtocol(self, pid),
                local_addr=self.peers[pid],
            )
            self._sockets[pid] = transport

    async def close(self) -> None:
        await super().close()
        for sock in self._sockets.values():
            sock.close()
        self._sockets.clear()
        self._queues.clear()
        self._loop = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        if self._closed or self._loop is None:
            return
        if dst not in self.peers:
            return  # address unknown: the datagram just disappears
        channel = (src, dst)
        queue = self._queues.get(channel)
        if queue is None:
            queue = self._queues[channel] = deque()
        if len(queue) >= self.queue_limit:
            self.stats.queue_overflows += 1
            self.stats.dropped += 1
            return
        queue.append(data)
        self.stats.sent += 1
        if channel not in self._flush_scheduled:
            self._flush_scheduled.add(channel)
            self._loop.call_soon(self._flush, channel)

    def _flush(self, channel: Tuple[ProcessId, ProcessId]) -> None:
        self._flush_scheduled.discard(channel)
        if self._closed:
            return
        src, dst = channel
        sock = self._sockets.get(src)
        queue = self._queues.get(channel)
        if queue is None:
            return
        if sock is None:
            # Remote-hosted src cannot happen (we only queue local sends);
            # a not-yet-started socket can: retry after startup.
            if self._loop is not None and not self._started:
                self._flush_scheduled.add(channel)
                self._loop.call_later(0.01, self._flush, channel)
            return
        addr = self.peers[dst]
        while queue:
            sock.sendto(queue.popleft(), addr)


@transports.register("udp")
def _udp_transport(
    clock: WallClock,
    peers: Optional[Dict[ProcessId, Union[int, Address]]] = None,
    n: Optional[int] = None,
    host: str = "127.0.0.1",
    base_port: int = 47000,
    queue_limit: int = 256,
) -> UdpTransport:
    """Registry factory: explicit ``peers`` map, or ``n`` members laid out
    on consecutive localhost ports from ``base_port``."""
    if peers is None:
        if n is None:
            raise TransportError(
                "udp transport needs peers={pid: (host, port)} or n=<members>"
            )
        peers = default_peer_map(n, host=host, base_port=base_port)
    return UdpTransport(clock, peers, host=host, queue_limit=queue_limit)
