"""Wire framing for live transports: every protocol message as a datagram.

A frame is ``MAGIC (1 byte) | VERSION (1 byte) | sender pid (2 bytes,
big-endian) | JSON body`` — one frame per datagram, no streaming, which is
exactly the UDP model (and what the loopback transport emulates).

The body is a *type-tagged* JSON encoding: no pickling, so a malformed or
hostile datagram can at worst fail decoding, never execute code.  Every
message type the stack puts on the wire has an explicit codec:

* :mod:`repro.core.message` — ``DataMessage``, ``InitMessage``,
  ``PredMessage``, ``WelcomeMessage``, ``ViewDelivery``, ``View``,
  ``MessageId``, ``Envelope``;
* consensus — ``Estimate``, ``Proposal``, ``Ack``, ``Nack``, ``Decide``;
* failure detection — ``Heartbeat``;
* stability tracking — ``StableMessage``;
* workload replay — ``TraceMessage`` (payloads of the recorded game
  traces), ``BatchAnnotation``-style plain containers;
* plain data: ``None``, bools, numbers, strings, lists/tuples, dicts,
  sets/frozensets.

Application payloads must be built from those types; :func:`pack` raises
``FramingError`` on anything else (by design — silently pickling arbitrary
objects is how transports grow RCE holes).  Third parties can extend the
codec with :func:`register_codec`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple, Type

from repro.consensus.chandra_toueg import Ack, Decide, Estimate, Nack, Proposal
from repro.core.message import (
    DataMessage,
    Envelope,
    InitMessage,
    MessageId,
    PredMessage,
    View,
    ViewDelivery,
    WelcomeMessage,
)
from repro.fd.detector import Heartbeat
from repro.gcs.stability import StableMessage
from repro.workload.trace import MessageKind, TraceMessage

__all__ = [
    "FramingError",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "register_codec",
    "encode",
    "decode",
    "pack",
    "unpack",
]

FRAME_MAGIC = 0xA5
FRAME_VERSION = 1
_HEADER_LEN = 4


class FramingError(ValueError):
    """An object that cannot be framed, or a frame that cannot be parsed."""


# Tag -> (encode(obj) -> json value, decode(json value) -> obj).
_CODECS: Dict[str, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {}
_TAGS: Dict[Type[Any], str] = {}


def register_codec(
    cls: Type[Any],
    tag: str,
    enc: Callable[[Any], Any],
    dec: Callable[[Any], Any],
) -> None:
    """Register a wire codec for ``cls`` under ``tag``.

    ``enc`` maps an instance to already-encoded JSON values; ``dec`` is its
    inverse.  Registering an existing tag or class raises — codecs are a
    wire contract, silently replacing one corrupts interop.
    """
    if tag in _CODECS:
        raise FramingError(f"frame tag already registered: {tag!r}")
    if cls in _TAGS:
        raise FramingError(f"class already has a frame codec: {cls.__name__}")
    _CODECS[tag] = (enc, dec)
    _TAGS[cls] = tag


def encode(obj: Any) -> Any:
    """Recursively encode ``obj`` into JSON-safe, type-tagged values."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    cls = type(obj)
    tag = _TAGS.get(cls)
    if tag is not None:
        enc, _dec = _CODECS[tag]
        return {"!": tag, "v": enc(obj)}
    if cls is list:
        return [encode(item) for item in obj]
    if cls is tuple:
        return {"!": "tuple", "v": [encode(item) for item in obj]}
    if cls in (set, frozenset):
        # Sorted so the wire form is stable (and diffable in captures).
        return {
            "!": "set" if cls is set else "frozenset",
            "v": sorted((encode(item) for item in obj), key=repr),
        }
    if cls is dict:
        items = [[encode(k), encode(v)] for k, v in obj.items()]
        return {"!": "dict", "v": items}
    raise FramingError(
        f"no wire codec for {cls.__name__}; live payloads must use framed "
        f"types (register one with repro.transport.framing.register_codec)"
    )


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        tag = value.get("!")
        body = value.get("v")
        if tag == "tuple":
            return tuple(decode(item) for item in body)
        if tag == "set":
            return set(decode(item) for item in body)
        if tag == "frozenset":
            return frozenset(decode(item) for item in body)
        if tag == "dict":
            return {decode(k): decode(v) for k, v in body}
        codec = _CODECS.get(tag)
        if codec is None:
            raise FramingError(f"unknown frame tag: {tag!r}")
        return codec[1](body)
    raise FramingError(f"undecodable frame value: {value!r}")


def pack(sender: int, obj: Any) -> bytes:
    """Frame ``obj`` (normally an :class:`Envelope`) from ``sender``."""
    if not (0 <= sender < 1 << 16):
        raise FramingError(f"sender pid out of frame range: {sender!r}")
    body = json.dumps(encode(obj), separators=(",", ":")).encode("utf-8")
    return bytes((FRAME_MAGIC, FRAME_VERSION)) + sender.to_bytes(2, "big") + body


def unpack(data: bytes) -> Tuple[int, Any]:
    """Parse one frame; returns ``(sender pid, object)``."""
    if len(data) < _HEADER_LEN:
        raise FramingError(f"short frame: {len(data)} bytes")
    if data[0] != FRAME_MAGIC:
        raise FramingError(f"bad frame magic: {data[0]:#x}")
    if data[1] != FRAME_VERSION:
        raise FramingError(f"unsupported frame version: {data[1]}")
    sender = int.from_bytes(data[2:4], "big")
    try:
        body = json.loads(data[_HEADER_LEN:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"unparseable frame body: {exc}") from None
    return sender, decode(body)


# ----------------------------------------------------------------------
# Built-in codecs
# ----------------------------------------------------------------------

register_codec(
    MessageId,
    "mid",
    lambda m: [m.sender, m.sn],
    lambda v: MessageId(v[0], v[1]),
)
register_codec(
    View,
    "view",
    lambda view: [view.vid, sorted(view.members)],
    lambda v: View(v[0], frozenset(v[1])),
)
register_codec(
    DataMessage,
    "data",
    lambda m: [
        encode(m.mid),
        m.view_id,
        encode(m.payload),
        encode(m.annotation),
    ],
    lambda v: DataMessage(
        mid=decode(v[0]), view_id=v[1], payload=decode(v[2]), annotation=decode(v[3])
    ),
)
register_codec(
    ViewDelivery,
    "viewdel",
    lambda m: encode(m.view),
    lambda v: ViewDelivery(decode(v)),
)
register_codec(
    InitMessage,
    "init",
    lambda m: [m.view_id, sorted(m.leave), sorted(m.join)],
    lambda v: InitMessage(v[0], frozenset(v[1]), frozenset(v[2])),
)
register_codec(
    PredMessage,
    "pred",
    lambda m: [m.view_id, [encode(d) for d in m.messages]],
    lambda v: PredMessage(v[0], tuple(decode(d) for d in v[1])),
)
register_codec(
    WelcomeMessage,
    "welcome",
    lambda m: encode(m.view),
    lambda v: WelcomeMessage(decode(v)),
)
register_codec(
    Envelope,
    "env",
    lambda e: [e.stream, encode(e.body), encode(e.instance)],
    lambda v: Envelope(stream=v[0], body=decode(v[1]), instance=decode(v[2])),
)

# Consensus (Chandra–Toueg) — values are (View, flush tuple) pairs, fully
# covered by the container + message codecs above.
register_codec(
    Estimate,
    "ct.est",
    lambda m: [m.round, encode(m.value), m.ts],
    lambda v: Estimate(v[0], decode(v[1]), v[2]),
)
register_codec(
    Proposal,
    "ct.prop",
    lambda m: [m.round, encode(m.value)],
    lambda v: Proposal(v[0], decode(v[1])),
)
register_codec(Ack, "ct.ack", lambda m: m.round, lambda v: Ack(v))
register_codec(Nack, "ct.nack", lambda m: m.round, lambda v: Nack(v))
register_codec(
    Decide, "ct.dec", lambda m: encode(m.value), lambda v: Decide(decode(v))
)

# Failure detection and stability gossip.
register_codec(Heartbeat, "fd.hb", lambda m: m.epoch, lambda v: Heartbeat(v))
register_codec(
    StableMessage,
    "stable",
    lambda m: [m.view_id, [[k, v] for k, v in sorted(dict(m.watermarks).items())]],
    lambda v: StableMessage(v[0], {k: sn for k, sn in v[1]}),
)

# Workload replay payloads (the recorded game traces).
register_codec(
    TraceMessage,
    "tracemsg",
    lambda m: [m.index, m.round, m.time, m.item, m.kind.value],
    lambda v: TraceMessage(v[0], v[1], v[2], v[3], MessageKind(v[4])),
)
