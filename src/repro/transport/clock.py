"""Wall-clock scheduler: the :class:`~repro.sim.kernel.Simulator` surface
re-implemented over an asyncio event loop.

Every component of the stack — :class:`~repro.core.svs.SVSProcess`, the
consensus instances, heartbeat failure detectors, rate-limited consumers,
fault plans, the Scenario workload injector — interacts with time through
exactly four operations: ``sim.now``, ``sim.schedule(delay, cb, *args)``,
``sim.schedule_at(time, cb, *args)`` and ``sim.rng(name)``.
:class:`WallClock` provides those same four operations backed by real time,
so the *unchanged* protocol core runs live: no sim-vs-live fork exists
anywhere in :mod:`repro.core` or :mod:`repro.gcs` — the only thing that
changes between a kernel run and a live run is which clock object the stack
is constructed with.

Semantics that deliberately differ from the discrete-event kernel (the
sim-vs-live contract, see ``docs/transport.md``):

* time advances on its own — two runs of the same scenario are *not*
  byte-identical; only the protocol's safety properties are preserved
  (which is exactly what the loopback cross-check lane verifies);
* the ``priority`` tie-break is accepted and ignored — wall-clock events
  never tie exactly;
* callbacks run on the event loop thread; an exception raised by any
  callback aborts the run and re-raises from :meth:`run` instead of
  vanishing into asyncio's default exception handler.

Scheduling is permitted *before* the loop exists: the Scenario builder
wires consumers, workload replay and fault plans at build time, long before
``run()`` starts the loop.  Pre-start events are parked and armed when the
loop comes up, preserving their intended absolute firing times (epoch 0 is
the instant the loop starts).
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import SimulationError, stream_rng

__all__ = ["WallClock", "WallClockHandle"]


class WallClockHandle:
    """Cancellable handle for one scheduled callback.

    Mirrors the :class:`~repro.sim.kernel.EventHandle` surface the rest of
    the stack relies on (``cancel()``, ``time``, ``cancelled``).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_timer")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._timer: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"WallClockHandle(t={self.time:.6f}{state})"


class WallClock:
    """Drop-in ``sim`` replacement that schedules against real time.

    ``seed`` feeds the same SHA-256 stream derivation the kernel uses
    (:func:`~repro.sim.kernel.derive_stream_seed`), so protocol-level
    random choices (jitter draws, emulated loss) are reproducible per seed
    even though event *timing* is not.

    ``runners`` are transport-like objects with ``async start()`` /
    ``async close()``; they are started when the loop comes up and closed
    when :meth:`run` finishes, so sockets live exactly as long as the run.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch: Optional[float] = None
        self._pending: List[WallClockHandle] = []
        self._runners: List[Any] = []
        self._errors: List[BaseException] = []
        self._finished = False
        self._events_processed = 0
        #: Frozen clock value outside run(); live value inside.
        self._now = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        if self._loop is not None and self._epoch is not None:
            return self._loop.time() - self._epoch
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Randomness — identical derivation to the kernel
    # ------------------------------------------------------------------

    def rng(self, name: str = "default") -> random.Random:
        """Identical derivation to the kernel: both clocks answer through
        :func:`repro.sim.kernel.stream_rng`, the one shared implementation
        of the seed-and-name stream contract."""
        return stream_rng(self._seed, name, self._rngs)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> WallClockHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now.

        ``priority`` is accepted for kernel compatibility and ignored —
        wall-clock firings never tie exactly.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self._schedule_abs(self.now + delay, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> WallClockHandle:
        """Schedule ``callback(*args)`` at an absolute run time (seconds
        since the loop started)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, current time is {self.now!r}"
            )
        return self._schedule_abs(time, callback, args)

    def cancel(self, handle: WallClockHandle) -> None:
        handle.cancel()

    def _schedule_abs(
        self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]
    ) -> WallClockHandle:
        handle = WallClockHandle(time, callback, args)
        if self._loop is None:
            self._pending.append(handle)
        else:
            self._arm(handle)
        return handle

    def _arm(self, handle: WallClockHandle) -> None:
        assert self._loop is not None and self._epoch is not None
        if handle.cancelled:
            return
        when = self._epoch + handle.time
        handle._timer = self._loop.call_at(max(when, self._loop.time()), self._fire, handle)

    def _fire(self, handle: WallClockHandle) -> None:
        if handle.cancelled or self._finished:
            return
        handle._timer = None
        self._events_processed += 1
        try:
            handle.callback(*handle.args)
        except BaseException as exc:  # surface from run(), don't swallow
            self._errors.append(exc)
            loop = self._loop
            if loop is not None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

    # ------------------------------------------------------------------
    # Runners (transports) and execution
    # ------------------------------------------------------------------

    def add_runner(self, runner: Any) -> None:
        """Register an object with ``async start()``/``async close()`` to be
        brought up with the loop and torn down at the end of the run."""
        self._runners.append(runner)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run the event loop for ``until`` wall-clock seconds.

        Matches the kernel's calling convention (``sim.run(until=...)``)
        so callers — above all :meth:`LiveScenario.run
        <repro.scenario.builder.LiveScenario.run>` — need no live branch.
        ``max_events`` is a kernel-only knob and rejected here; a live run
        is bounded by time, not event count.  One :class:`WallClock` backs
        one run: sockets close with the loop, so a second call raises.
        """
        if until is None:
            raise SimulationError("a wall-clock run needs an explicit `until`")
        if max_events is not None:
            raise SimulationError("max_events is not meaningful on a wall clock")
        if self._finished:
            raise SimulationError(
                "this WallClock already ran; live runs are one-shot "
                "(build a fresh scenario to run again)"
            )
        try:
            asyncio.run(self._run_async(until))
        finally:
            self._finished = True
            self._loop = None
            self._epoch = None
        if self._errors:
            raise self._errors[0]

    async def _run_async(self, until: float) -> None:
        self._loop = asyncio.get_running_loop()
        self._epoch = self._loop.time() - self._now
        try:
            for runner in self._runners:
                await runner.start()
            pending, self._pending = self._pending, []
            for handle in pending:
                self._arm(handle)
            try:
                await asyncio.sleep(max(0.0, until - self.now))
            except asyncio.CancelledError:
                pass  # a callback error cancelled the sleep; re-raised by run()
        finally:
            # Freeze the clock at the run's end.  Only clamp up to `until`
            # on clean completion: after a callback error aborted the run
            # early, the frozen value must report how far the run actually
            # got, not pretend the full duration elapsed.
            elapsed = self._loop.time() - self._epoch
            self._now = elapsed if self._errors else max(elapsed, until)
            for runner in self._runners:
                try:
                    await runner.close()
                except Exception as exc:  # pragma: no cover - teardown race
                    if not self._errors:
                        self._errors.append(exc)

    def stop(self) -> None:
        """Kernel-compat no-op surface: live runs end at their deadline."""
        raise SimulationError("a wall-clock run cannot be stopped mid-flight")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "ready"
        return f"WallClock(now={self.now:.3f}, {state})"
