"""The live counterpart of :class:`repro.sim.network.Network`.

:class:`TransportNetwork` presents the exact surface the stack wires
against — ``attach``, ``send``, the message counters, and the fault API
consumed by :class:`~repro.faults.plan.FaultPlan` (``cut``/``heal``/
``partition``/``set_link_fault``) — but moves every message as a framed
datagram over a pluggable :class:`~repro.transport.interface.Transport`.
Because :class:`~repro.core.svs.SVSProcess` only ever calls
``network.send``, swapping this in for the simulated network requires no
protocol change whatsoever.

Emulated link faults reuse the *same* :class:`~repro.sim.network.LinkFaultPolicy`
dataclass and most-specific-first resolution as the kernel network, with
draws from seeded ``faults.<src>.<dst>`` RNG streams — so a fault profile
written for simulation (``Scenario.faults("lossy-links")``) applies to a
live loopback run unmodified.

The network also exposes two integration points the wall-clock runtime
uses without touching the protocol:

* **send/receive observers** — called for every outgoing and every
  delivered (src, dst, envelope); the runtime's retransmitter and
  state-vector tracker subscribe here;
* **stream handlers** — transport-layer control streams (the sync
  beacons) are consumed at delivery time and never reach the processes,
  keeping :meth:`SVSProcess.on_message` oblivious to the live plumbing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.message import Envelope
from repro.sim.network import ChannelStats, LinkFaultPolicy
from repro.sim.process import ProcessId, SimProcess
from repro.transport.clock import WallClock
from repro.transport.framing import FramingError, pack, unpack
from repro.transport.interface import Transport

__all__ = ["TransportNetwork"]

SendObserver = Callable[[ProcessId, ProcessId, Any], None]
StreamHandler = Callable[[ProcessId, ProcessId, Any], None]


class TransportNetwork:
    """Frame-and-forward network over a live transport backend."""

    def __init__(self, clock: WallClock, transport: Transport) -> None:
        self.sim = clock  # the name the Network surface uses
        self.clock = clock
        self.transport = transport
        self._procs: Dict[ProcessId, SimProcess] = {}
        self._stats: Dict[Tuple[ProcessId, ProcessId], ChannelStats] = {}
        self._send_observers: List[SendObserver] = []
        self._receive_observers: List[SendObserver] = []
        self._stream_handlers: Dict[str, StreamHandler] = {}
        # Fault API state — mirrors repro.sim.network.Network.
        self._cut: Set[Tuple[ProcessId, ProcessId]] = set()
        self._link_faults: Dict[
            Tuple[Optional[ProcessId], Optional[ProcessId]], LinkFaultPolicy
        ] = {}
        self._policy_cache: Dict[
            Tuple[ProcessId, ProcessId], Optional[LinkFaultPolicy]
        ] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        #: Frames that failed to decode (malformed/foreign datagrams).
        self.decode_errors = 0
        self.last_decode_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, proc: SimProcess) -> None:
        if proc.pid in self._procs:
            raise ValueError(f"pid {proc.pid} already attached")
        self._procs[proc.pid] = proc
        self.transport.bind(proc.pid, self._on_datagram)

    def process(self, pid: ProcessId) -> SimProcess:
        return self._procs[pid]

    @property
    def pids(self) -> List[ProcessId]:
        return sorted(self._procs)

    # ------------------------------------------------------------------
    # Runtime integration
    # ------------------------------------------------------------------

    def add_send_observer(self, observer: SendObserver) -> None:
        self._send_observers.append(observer)

    def add_receive_observer(self, observer: SendObserver) -> None:
        self._receive_observers.append(observer)

    def register_stream(self, stream: str, handler: StreamHandler) -> None:
        """Consume envelopes of ``stream`` at the network layer; they are
        never delivered to the destination process."""
        if stream in self._stream_handlers:
            raise ValueError(f"stream already registered: {stream!r}")
        self._stream_handlers[stream] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        channel = (src, dst)
        stats = self._stats.get(channel)
        if stats is None:
            stats = self._stats[channel] = ChannelStats()
        stats.sent += 1
        self.messages_sent += 1
        for observer in self._send_observers:
            observer(src, dst, payload)

        if self._cut and channel in self._cut:
            stats.dropped += 1
            self.messages_dropped += 1
            return
        # Emulated lossy links — the same policies, resolution order and
        # per-edge RNG streams as the simulated network.
        policy = None
        if self._link_faults:
            policy = self._resolve_policy(channel)
            if policy is not None and (
                policy.inert
                or (policy.filter is not None and not policy.filter(payload))
            ):
                policy = None
        duplicated = False
        if policy is not None:
            rng = self.clock.rng(f"faults.{src}.{dst}")
            if policy.loss and rng.random() < policy.loss:
                stats.dropped += 1
                self.messages_dropped += 1
                return
            duplicated = bool(policy.duplicate) and rng.random() < policy.duplicate
            # ``reorder`` is not re-emulated here: a live transport (UDP,
            # jittered loopback) reorders on its own terms.

        data = pack(src, payload)
        self.transport.send(src, dst, data)
        if duplicated:
            stats.duplicated += 1
            self.messages_duplicated += 1
            self.transport.send(src, dst, data)

    def multicast(
        self, src: ProcessId, dsts: Any, payload: Any, token: Any = None
    ) -> None:
        """One datagram per destination, in order — the live network has
        no batched fast path (each send really is a separate wire write).
        ``token`` is accepted for surface compatibility with
        :meth:`repro.sim.network.Network.multicast` and ignored."""
        for dst in dsts:
            self.send(src, dst, payload)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_datagram(self, dst: ProcessId, data: bytes) -> None:
        try:
            src, payload = unpack(data)
        except FramingError as exc:
            self.decode_errors += 1
            self.last_decode_error = str(exc)
            return
        if isinstance(payload, Envelope):
            handler = self._stream_handlers.get(payload.stream)
            if handler is not None:
                handler(src, dst, payload.body)
                return
        proc = self._procs.get(dst)
        if proc is None:
            return
        self._stats.setdefault((src, dst), ChannelStats()).delivered += 1
        self.messages_delivered += 1
        for observer in self._receive_observers:
            observer(src, dst, payload)
        proc._deliver(src, payload)

    # ------------------------------------------------------------------
    # Fault API (FaultPlan compatibility)
    # ------------------------------------------------------------------

    def cut(self, a: ProcessId, b: ProcessId, bidirectional: bool = True) -> None:
        self._cut.add((a, b))
        if bidirectional:
            self._cut.add((b, a))

    def heal(self, a: ProcessId, b: ProcessId, bidirectional: bool = True) -> None:
        self._cut.discard((a, b))
        if bidirectional:
            self._cut.discard((b, a))

    def partition(self, side_a: Set[ProcessId], side_b: Set[ProcessId]) -> None:
        for a in side_a:
            for b in side_b:
                self.cut(a, b)

    def heal_all(self) -> None:
        self._cut.clear()

    def set_link_fault(
        self,
        src: Optional[ProcessId] = None,
        dst: Optional[ProcessId] = None,
        *,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_spread: float = 0.004,
        filter: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self._link_faults[(src, dst)] = LinkFaultPolicy(
            loss=loss,
            duplicate=duplicate,
            reorder=reorder,
            reorder_spread=reorder_spread,
            filter=filter,
        )
        self._policy_cache.clear()

    def clear_link_fault(
        self, src: Optional[ProcessId] = None, dst: Optional[ProcessId] = None
    ) -> None:
        self._link_faults.pop((src, dst), None)
        self._policy_cache.clear()

    def clear_link_faults(self) -> None:
        self._link_faults.clear()
        self._policy_cache.clear()

    def _resolve_policy(
        self, channel: Tuple[ProcessId, ProcessId]
    ) -> Optional[LinkFaultPolicy]:
        try:
            return self._policy_cache[channel]
        except KeyError:
            pass
        src, dst = channel
        faults = self._link_faults
        policy = (
            faults.get((src, dst))
            or faults.get((src, None))
            or faults.get((None, dst))
            or faults.get((None, None))
        )
        self._policy_cache[channel] = policy
        return policy

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def channel_stats(self, src: ProcessId, dst: ProcessId) -> ChannelStats:
        """Counters of one channel; a zero view for never-used channels.

        Reading must not mutate ``_stats``: inserting on lookup would make
        introspection fabricate entries, inflating iteration and ``repr``.
        The zero object is fresh per call and deliberately disconnected —
        traffic on the channel later starts its own entry.
        """
        stats = self._stats.get((src, dst))
        return stats if stats is not None else ChannelStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransportNetwork(procs={len(self._procs)}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )
