"""Real-time transport backends and the wall-clock runtime.

This package lets the *unchanged* protocol stack run in wall-clock time
over pluggable datagram transports, instead of (not in place of — the
simulator remains the primary instrument) virtual time:

* :mod:`~repro.transport.clock` — :class:`WallClock`, a drop-in for the
  scheduling surface of :class:`~repro.sim.kernel.Simulator` backed by an
  asyncio event loop;
* :mod:`~repro.transport.interface` — the :class:`Transport` contract and
  the ``transports`` registry (``"loopback"``, ``"udp"``);
* :mod:`~repro.transport.framing` — type-tagged JSON wire framing for
  every protocol message (no pickle);
* :mod:`~repro.transport.network` — :class:`TransportNetwork`, the live
  counterpart of the simulated :class:`~repro.sim.network.Network`;
* :mod:`~repro.transport.runtime` — :class:`LiveRuntime`: jittered sync
  beacons, suppression, and retransmission with exponential backoff.

Entry point for almost all uses: ``Scenario(...).transport("loopback")``
(see :mod:`repro.scenario.builder`), which returns the same
:class:`~repro.scenario.result.ScenarioResult` a simulated run produces.
"""

from repro.transport.clock import WallClock, WallClockHandle
from repro.transport.framing import (
    FramingError,
    decode,
    encode,
    pack,
    register_codec,
    unpack,
)
from repro.transport.interface import (
    Transport,
    TransportError,
    TransportStats,
    transports,
)
from repro.transport.loopback import LoopbackTransport
from repro.transport.network import TransportNetwork
from repro.transport.runtime import (
    SYNC_STREAM,
    LiveRuntime,
    RuntimeStats,
    SyncMessage,
    SyncScheduler,
    jittered_interval,
    next_backoff,
)
from repro.transport.udp import UdpTransport, default_peer_map

__all__ = [
    "WallClock",
    "WallClockHandle",
    "FramingError",
    "encode",
    "decode",
    "pack",
    "unpack",
    "register_codec",
    "Transport",
    "TransportError",
    "TransportStats",
    "transports",
    "LoopbackTransport",
    "UdpTransport",
    "default_peer_map",
    "TransportNetwork",
    "LiveRuntime",
    "RuntimeStats",
    "SyncMessage",
    "SyncScheduler",
    "SYNC_STREAM",
    "jittered_interval",
    "next_backoff",
]
