"""The pluggable transport contract behind live runs.

A :class:`Transport` moves opaque datagrams between group members in real
time.  It knows nothing about the protocol: framing happens above it (in
:class:`~repro.transport.network.TransportNetwork`), semantics above that
(the unchanged :class:`~repro.core.svs.SVSProcess`).

Lifecycle: ``bind`` local pids while wiring the stack, then the owning
:class:`~repro.transport.clock.WallClock` calls ``await start()`` when its
loop comes up and ``await close()`` when the run ends.

Backends register in :data:`repro.registry.transports` under a name
(``"loopback"``, ``"udp"``) with the contract
``factory(clock, **params) -> Transport``, which makes them reachable from
``Scenario.transport("loopback", ...)`` exactly like latency models or
fault profiles are reachable from their builder methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.registry import transports
from repro.sim.process import ProcessId

__all__ = ["Transport", "TransportError", "TransportStats", "transports"]


class TransportError(RuntimeError):
    """Misuse of a transport (unknown peer, double bind, closed send)."""


@dataclass
class TransportStats:
    """Datagram counters every backend maintains."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    queue_overflows: int = 0
    errors_received: int = 0
    """Asynchronous socket errors reported by the OS (e.g. ICMP
    port-unreachable while a peer is still starting up).  Non-fatal —
    the sync layer recovers the loss — but counted, so a staggered
    start that never converges is diagnosable."""


DatagramHandler = Callable[[ProcessId, bytes], None]
"""Receive callback: ``handler(local_pid, frame_bytes)``."""


class Transport:
    """Base class for wall-clock transport backends."""

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._handlers: Dict[ProcessId, DatagramHandler] = {}
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, pid: ProcessId, handler: DatagramHandler) -> None:
        """Attach a local endpoint: frames addressed to ``pid`` are handed
        to ``handler(pid, data)`` on the event loop."""
        if pid in self._handlers:
            raise TransportError(f"pid {pid} already bound")
        if self._started:
            raise TransportError("cannot bind after the transport started")
        self._handlers[pid] = handler

    @property
    def local_pids(self) -> Dict[ProcessId, DatagramHandler]:
        return dict(self._handlers)

    # ------------------------------------------------------------------
    # Lifecycle (driven by WallClock)
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._started = True

    async def close(self) -> None:
        self._closed = True

    # ------------------------------------------------------------------
    # Datagrams
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, data: bytes) -> None:
        """Best-effort, non-blocking send of one frame.

        Datagram semantics: a frame may be lost (backend loss emulation,
        UDP itself, queue overflow) but is never corrupted or split.
        """
        raise NotImplementedError

    def _dispatch(self, dst: ProcessId, data: bytes) -> None:
        """Deliver a frame to a locally bound pid (backend helper)."""
        handler = self._handlers.get(dst)
        if handler is None:
            return  # late datagram for a pid bound elsewhere; drop
        self.stats.delivered += 1
        handler(dst, data)
