"""Wall-clock runtime services: sync beacons, suppression, retransmission.

The simulated network is reliable-by-default, so Figure 1 can assume one
transmission suffices.  A live datagram transport cannot: UDP loses frames,
and the loopback backend is asked to emulate loss on purpose.  This module
restores liveness *around* the unchanged protocol, in the state-vector
sync idiom (each member periodically announces a per-sender sequence-number
vector; peers detect gaps and the *origin* retransmits what the peer is
missing):

* :class:`SyncScheduler` — jittered periodic timer: each interval is
  ``interval ± uniform(0, rand_percent) * interval`` so beacons desynchronise
  instead of thundering.  ``skip_interval()`` fires now; ``reset(delay)``
  suppresses the pending beacon and re-arms.
* sync beacons — per local member, a :class:`SyncMessage` carrying the
  member's per-origin max sequence numbers, multicast on the transport-level
  ``transport.sync`` stream.  The stream is consumed by
  :class:`~repro.transport.network.TransportNetwork` before process
  delivery, so :class:`~repro.core.svs.SVSProcess` never sees it.
* suppression — a beacon proving a peer already holds our exact state
  resets our scheduler (nothing new to tell); a beacon *fresher* than our
  state makes us announce immediately (``skip_interval``) so origins learn
  of our gaps without waiting a full interval.
* data retransmission — each member keeps a bounded log of its own
  multicasts; when a beacon shows a peer behind on our messages, the
  missing ones are re-sent directly to that peer (receivers are
  idempotent: t3 drops duplicates by id/coverage).
* view-change retransmission — observed INIT/PRED sends are re-sent with
  exponential backoff (``base * factor^k``, capped) while the sender stays
  blocked in the same view, so a lost PRED cannot stall a view change
  forever.  This is the wall-clock analogue of the kernel's fixed-period
  ``viewchange_retry`` option, and equally outcome-neutral on loss-free
  links.

Everything here observes the stack from outside (send/receive observers on
the network); no protocol code knows the runtime exists.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.consensus.chandra_toueg import Decide
from repro.consensus.interface import CONSENSUS_STREAM
from repro.core.message import DataMessage, Envelope, InitMessage, PredMessage
from repro.core.svs import SVS_STREAM
from repro.sim.process import ProcessId
from repro.transport.clock import WallClock
from repro.transport.framing import register_codec
from repro.transport.network import TransportNetwork

__all__ = [
    "SYNC_STREAM",
    "SyncMessage",
    "SyncScheduler",
    "LiveRuntime",
    "RuntimeStats",
    "jittered_interval",
    "next_backoff",
]

SYNC_STREAM = "transport.sync"


@dataclass(frozen=True)
class SyncMessage:
    """State-vector announcement: ``{origin pid: max sequence number}``."""

    vector: Dict[ProcessId, int]


register_codec(
    SyncMessage,
    "tsync",
    lambda m: [[k, v] for k, v in sorted(m.vector.items())],
    lambda v: SyncMessage({k: sn for k, sn in v}),
)


def jittered_interval(interval: float, rand_percent: float, rng) -> float:
    """One scheduler period: ``interval ± uniform(0, rand_percent) * interval``.

    Pure so the jitter bounds are testable without a clock; ``rng`` only
    needs ``uniform``.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive: {interval!r}")
    if not 0.0 <= rand_percent < 1.0:
        raise ValueError(f"rand_percent must be in [0, 1): {rand_percent!r}")
    if rand_percent == 0.0:
        return interval
    return interval + rng.uniform(-rand_percent, rand_percent) * interval


def next_backoff(delay: float, factor: float = 2.0, cap: float = 1.0) -> float:
    """The delay following ``delay`` in an exponential backoff capped at
    ``cap``.  Pure, for the same reason as :func:`jittered_interval`."""
    if delay <= 0 or factor < 1.0 or cap <= 0:
        raise ValueError(
            f"need delay > 0, factor >= 1, cap > 0: {delay!r}/{factor!r}/{cap!r}"
        )
    return min(delay * factor, cap)


class SyncScheduler:
    """Jittered periodic timer in the SVS scheduler idiom.

    Calls ``callback()`` every :func:`jittered_interval` seconds.
    ``skip_interval()`` fires the callback as soon as possible;
    ``reset(delay)`` cancels the pending fire and re-arms (suppression).
    """

    def __init__(
        self,
        clock: WallClock,
        callback: Callable[[], None],
        interval: float,
        rand_percent: float = 0.1,
        stream: str = "sync.scheduler",
    ) -> None:
        # Validate by computing one period now.
        self._rng = clock.rng(stream)
        jittered_interval(interval, rand_percent, self._rng)
        self.clock = clock
        self.callback = callback
        self.interval = interval
        self.rand_percent = rand_percent
        self._handle = None
        self._stopped = False

    def start(self) -> None:
        self._stopped = False
        self.reset()

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def skip_interval(self) -> None:
        """Fire now (well, next tick) instead of waiting out the interval."""
        self.reset(0.0)

    def reset(self, delay: Optional[float] = None) -> None:
        """Re-arm: cancel the pending fire and wait ``delay`` (or a fresh
        jittered interval) before the next one."""
        if self._stopped:
            return
        if self._handle is not None:
            self._handle.cancel()
        if delay is None:
            delay = jittered_interval(self.interval, self.rand_percent, self._rng)
        self._handle = self.clock.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._handle = None
        self.callback()
        self.reset()


@dataclass
class RuntimeStats:
    """Counters for the liveness layer (per :class:`LiveRuntime`)."""

    beacons_sent: int = 0
    beacons_suppressed: int = 0
    skips: int = 0
    data_retransmits: int = 0
    vc_retransmits: int = 0


@dataclass
class _MemberState:
    """Per-local-member runtime bookkeeping."""

    scheduler: SyncScheduler
    #: Per-origin max sequence number this member has seen.
    seen: Dict[ProcessId, int] = field(default_factory=dict)
    #: Bounded log of this member's own multicasts: sn -> Envelope.
    log: "OrderedDict[int, Envelope]" = field(default_factory=OrderedDict)
    #: Active view-change retransmission (None when not blocked).
    vc_vid: Optional[int] = None
    vc_init: Optional[Envelope] = None
    vc_pred: Optional[Envelope] = None
    vc_delay: float = 0.0
    vc_handle: Any = None
    #: Consensus envelopes in flight for the open change, keyed by
    #: (destination, message type, round) — NOT last-per-destination: a
    #: lost round-r proposal must keep being repaired even after a
    #: round-r+1 message to the same peer supersedes it in time.
    vc_consensus: "OrderedDict[Any, Tuple[ProcessId, Envelope]]" = field(
        default_factory=OrderedDict
    )
    #: Last DECIDE broadcast per consensus instance (kept after install to
    #: repair peers whose DECIDE was lost).
    decides: Dict[int, Envelope] = field(default_factory=dict)
    #: Rate limiter for decide replays: (peer, instance) -> last replay time.
    decide_replay: Dict[Any, float] = field(default_factory=dict)


class LiveRuntime:
    """Liveness services for one live :class:`~repro.gcs.stack.GroupStack`.

    Construct after the stack is wired, then :meth:`start` before the
    clock runs.  All parameters are wall-clock seconds.

    Parameters
    ----------
    sync_interval / sync_jitter:
        Beacon period and its ± jitter fraction (``rand_percent``).
    retransmit_base / retransmit_factor / retransmit_cap:
        Exponential backoff for INIT/PRED retransmission.
    send_log_limit:
        Own-multicast frames kept per member for gap repair (oldest
        evicted first; an evicted message can no longer be repaired by
        the runtime — the view-change flush remains the backstop).
    retransmit_burst:
        Max data frames re-sent to one peer per beacon processed.
    """

    def __init__(
        self,
        stack,
        network: TransportNetwork,
        sync_interval: float = 0.05,
        sync_jitter: float = 0.1,
        retransmit_base: float = 0.05,
        retransmit_factor: float = 2.0,
        retransmit_cap: float = 1.0,
        send_log_limit: int = 1024,
        retransmit_burst: int = 32,
    ) -> None:
        if send_log_limit < 1 or retransmit_burst < 1:
            raise ValueError("send_log_limit and retransmit_burst must be >= 1")
        next_backoff(retransmit_base, retransmit_factor, retransmit_cap)
        self.stack = stack
        self.network = network
        self.clock: WallClock = network.clock
        self.sync_interval = sync_interval
        self.sync_jitter = sync_jitter
        self.retransmit_base = retransmit_base
        self.retransmit_factor = retransmit_factor
        self.retransmit_cap = retransmit_cap
        self.send_log_limit = send_log_limit
        self.retransmit_burst = retransmit_burst
        self.stats = RuntimeStats()
        self._members: Dict[ProcessId, _MemberState] = {}
        for pid in stack.processes:
            self._members[pid] = _MemberState(
                scheduler=SyncScheduler(
                    self.clock,
                    (lambda pid=pid: self._beacon(pid)),
                    sync_interval,
                    sync_jitter,
                    stream=f"runtime.sync.{pid}",
                )
            )
        network.register_stream(SYNC_STREAM, self._on_sync)
        network.add_send_observer(self._on_send)
        network.add_receive_observer(self._on_receive)

    def start(self) -> None:
        for state in self._members.values():
            state.scheduler.start()

    def stop(self) -> None:
        for state in self._members.values():
            state.scheduler.stop()
            if state.vc_handle is not None:
                state.vc_handle.cancel()
                state.vc_handle = None

    # ------------------------------------------------------------------
    # Beacons
    # ------------------------------------------------------------------

    def _beacon(self, pid: ProcessId) -> None:
        proc = self.stack.processes[pid]
        if proc.crashed or proc.excluded or proc.joining:
            return
        state = self._members[pid]
        beacon = Envelope(stream=SYNC_STREAM, body=SyncMessage(dict(state.seen)))
        self.stats.beacons_sent += 1
        for member in sorted(proc.cv.members):
            if member != pid:
                self.network.send(pid, member, beacon)

    def _on_sync(self, src: ProcessId, dst: ProcessId, body: Any) -> None:
        if not isinstance(body, SyncMessage):
            return
        state = self._members.get(dst)
        if state is None:
            return
        proc = self.stack.processes[dst]
        if proc.crashed or proc.excluded or proc.joining:
            return
        theirs = body.vector
        # Gap repair: the peer is behind on *our own* messages — we are the
        # origin, so we hold them in the log and can re-send directly.
        have = state.seen.get(dst, -1)
        behind_from = theirs.get(dst, -1) + 1
        if behind_from <= have:
            sent = 0
            for sn in range(behind_from, have + 1):
                env = state.log.get(sn)
                if env is None:
                    continue  # evicted; the view-change flush is the backstop
                self.network.send(dst, src, env)
                self.stats.data_retransmits += 1
                sent += 1
                if sent >= self.retransmit_burst:
                    break
        fresher = any(sn > state.seen.get(origin, -1) for origin, sn in theirs.items())
        if fresher:
            # The peer knows messages we have not seen.  Announce our (now
            # provably stale) vector immediately so the origins repair us.
            self.stats.skips += 1
            state.scheduler.skip_interval()
        elif theirs == state.seen:
            # The peer mirrors our state exactly; our own pending beacon
            # would tell the group nothing — suppress it for one interval.
            self.stats.beacons_suppressed += 1
            state.scheduler.reset()

    # ------------------------------------------------------------------
    # Network observation
    # ------------------------------------------------------------------

    def _on_send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        if not isinstance(payload, Envelope):
            return
        state = self._members.get(src)
        if state is None:
            return
        body = payload.body
        if payload.stream == CONSENSUS_STREAM:
            if isinstance(body, Decide):
                state.decides[payload.instance] = payload
                while len(state.decides) > 4:
                    state.decides.pop(min(state.decides))
            if payload.instance == state.vc_vid:
                key = (dst, type(body).__name__, getattr(body, "round", None))
                state.vc_consensus[key] = (dst, payload)
                while len(state.vc_consensus) > 32:
                    state.vc_consensus.popitem(last=False)
            return
        if payload.stream != SVS_STREAM:
            return
        if isinstance(body, DataMessage):
            if body.mid.sender != src or body.sn in state.log:
                return  # a retransmission (ours or the protocol's)
            state.seen[src] = max(state.seen.get(src, -1), body.sn)
            state.log[body.sn] = payload
            while len(state.log) > self.send_log_limit:
                state.log.popitem(last=False)
        elif isinstance(body, (InitMessage, PredMessage)):
            self._note_vc_send(state, src, payload)

    def _on_receive(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        if not isinstance(payload, Envelope):
            return
        state = self._members.get(dst)
        if state is None:
            return
        body = payload.body
        if payload.stream == CONSENSUS_STREAM:
            # A peer still running consensus for a view we already closed
            # lost the DECIDE; replay ours (idempotent: the CT instance
            # forwards a duplicate DECIDE at most once, then ignores).
            proc = self.stack.processes[dst]
            key = payload.instance
            decide = state.decides.get(key)
            if (
                decide is not None
                and isinstance(key, int)
                and key < proc.cv.vid
                and not isinstance(body, Decide)
            ):
                now = self.clock.now
                last = state.decide_replay.get((src, key))
                if last is None or now - last >= self.retransmit_base:
                    state.decide_replay[(src, key)] = now
                    self.network.send(dst, src, decide)
                    self.stats.vc_retransmits += 1
            return
        if payload.stream != SVS_STREAM or not isinstance(body, DataMessage):
            return
        origin = body.mid.sender
        if body.sn > state.seen.get(origin, -1):
            state.seen[origin] = body.sn

    # ------------------------------------------------------------------
    # View-change retransmission (exponential backoff)
    # ------------------------------------------------------------------

    def _note_vc_send(
        self, state: _MemberState, pid: ProcessId, payload: Envelope
    ) -> None:
        body = payload.body
        vid = body.view_id
        if state.vc_vid != vid:
            # A new view change: reset the backoff sequence.
            if state.vc_handle is not None:
                state.vc_handle.cancel()
            state.vc_vid = vid
            state.vc_init = None
            state.vc_pred = None
            state.vc_consensus.clear()
            state.vc_delay = self.retransmit_base
            state.vc_handle = self.clock.schedule(
                state.vc_delay, self._vc_fire, pid
            )
        if isinstance(body, InitMessage):
            state.vc_init = payload
        else:
            state.vc_pred = payload
        # (Observing our own _vc_fire re-sends is fine: same vid, so the
        # timer is left alone and the envelopes are simply re-recorded.)

    def _vc_fire(self, pid: ProcessId) -> None:
        state = self._members[pid]
        state.vc_handle = None
        proc = self.stack.processes[pid]
        vid = state.vc_vid
        if (
            vid is None
            or proc.crashed
            or proc.excluded
            or proc.joining
            or not proc.blocked
            or proc.cv.vid != vid
        ):
            # The change closed (or the member left); stand down.
            state.vc_vid = None
            state.vc_init = None
            state.vc_pred = None
            state.vc_consensus.clear()
            return
        for env in (state.vc_init, state.vc_pred):
            if env is None:
                continue
            for member in sorted(proc.cv.members):
                if member != pid:
                    self.network.send(pid, member, env)
                    self.stats.vc_retransmits += 1
        for dst, env in list(state.vc_consensus.values()):
            if dst != pid:
                self.network.send(pid, dst, env)
                self.stats.vc_retransmits += 1
        state.vc_delay = next_backoff(
            state.vc_delay, self.retransmit_factor, self.retransmit_cap
        )
        state.vc_handle = self.clock.schedule(state.vc_delay, self._vc_fire, pid)
