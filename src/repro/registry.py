"""Named component registries — the pluggable backbone of the Scenario API.

Every substitutable building block of the stack is looked up by name in one
of five registries, so third-party backends plug in with a decorator instead
of editing :mod:`repro.gcs.stack`:

* :data:`latency_models` — ``factory(sim, **params) -> LatencyModel``;
* :data:`relations` — ``factory(**params) -> ObsolescenceRelation``;
* :data:`consensus_protocols` — ``factory(stack) -> ConsensusFactory``,
  called with the :class:`~repro.gcs.stack.GroupStack` under construction
  (its ``sim``, ``config`` and ``network`` exist; its processes do not
  yet).  The factory may stash shared state on the stack (the oracle hub
  does, as ``stack.oracle_hub``);
* :data:`failure_detectors` — ``factory(stack) -> FDWiring``: the wiring
  names the object handed to every :class:`~repro.core.svs.SVSProcess`
  (a shared detector instance or a per-process factory) plus a
  ``finalize(stack)`` hook run once all processes exist;
* :data:`workloads` — ``factory(**params) -> Trace``;
* :data:`fault_profiles` — ``factory(**params) -> FaultPlan``: named,
  parameterised fault schedules (see :mod:`repro.faults`), usable from
  ``Scenario.faults("partition-heal", ...)`` and as sweep axes;
* :data:`transports` — ``factory(clock, **params) -> Transport``:
  wall-clock transport backends (see :mod:`repro.transport`) behind
  ``Scenario.transport("loopback"|"udp", ...)``.

Registering is one decorator::

    from repro.registry import latency_models

    @latency_models.register("pareto")
    def _pareto(sim, scale=0.001, alpha=2.5):
        return ParetoLatency(sim, scale, alpha)

after which ``StackConfig(latency_model="pareto")`` and
``Scenario().latency("pareto", scale=0.002)`` both work, with no change to
the core.  The built-in components register themselves from their defining
modules (:mod:`repro.sim.network`, :mod:`repro.core.obsolescence`,
:mod:`repro.consensus`, :mod:`repro.fd.detector`, :mod:`repro.workload`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Registry",
    "RegistryError",
    "FDWiring",
    "latency_models",
    "relations",
    "consensus_protocols",
    "failure_detectors",
    "workloads",
    "fault_profiles",
    "transports",
]


class RegistryError(ValueError):
    """Unknown name, or a conflicting registration."""


class Registry:
    """A name → factory mapping with decorator registration and aliases.

    ``kind`` names what the registry holds ("consensus protocol", ...) and
    appears in error messages; ``contract`` documents the expected factory
    signature for introspection (``repr`` and docs).
    """

    def __init__(self, kind: str, contract: str = "") -> None:
        self.kind = kind
        self.contract = contract
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._canonical: List[str] = []
        # key (canonical or alias) -> canonical name of its registration,
        # so unregistering any key removes the whole registration.
        self._owner: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        aliases: Sequence[str] = (),
        override: bool = False,
    ):
        """Register ``factory`` under ``name`` (and ``aliases``).

        Usable directly (``registry.register("x", make_x)``) or as a
        decorator (``@registry.register("x")``).  Re-registering a taken
        name raises unless ``override=True``.
        """

        def _do(fn: Callable[..., Any]) -> Callable[..., Any]:
            keys = (name, *aliases)
            # Validate every key before touching any state, so a rejected
            # registration leaves the registry exactly as it was.
            for key in keys:
                if not key or not isinstance(key, str):
                    raise RegistryError(f"invalid {self.kind} name: {key!r}")
                if key in self._factories and not override:
                    raise RegistryError(
                        f"{self.kind} {key!r} is already registered "
                        f"(pass override=True to replace it)"
                    )
            for key in keys:
                self._factories[key] = fn
                self._owner[key] = name
            if name not in self._canonical:
                self._canonical.append(name)
            return fn

        if factory is None:
            return _do
        return _do(factory)

    def unregister(self, name: str) -> None:
        """Remove a registration — canonical name *and* its aliases —
        given any of its keys; used mostly by tests."""
        if name not in self._factories:
            raise RegistryError(f"unknown {self.kind}: {name!r}")
        canonical = self._owner[name]
        for key in [k for k, owner in self._owner.items() if owner == canonical]:
            del self._factories[key]
            del self._owner[key]
        if canonical in self._canonical:
            self._canonical.remove(canonical)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Callable[..., Any]:
        """Return the factory for ``name``; raise with the known names and,
        when one is close enough, a did-you-mean suggestion."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            hint = ""
            if isinstance(name, str) and self._factories:
                # Match against every key (aliases included) so a typo of
                # an alias still resolves to a useful suggestion.
                close = difflib.get_close_matches(
                    name, list(self._factories), n=1, cutoff=0.5
                )
                if close:
                    hint = f"; did you mean {close[0]!r}?"
            raise RegistryError(
                f"unknown {self.kind}: {name!r} (registered: {known}){hint}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its factory with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Canonical names, in registration order."""
        return list(self._canonical)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._canonical)

    def __len__(self) -> int:
        return len(self._canonical)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind!r}, names={self.names()})"


@dataclass
class FDWiring:
    """How a failure-detector backend plugs into a :class:`GroupStack`.

    ``fd`` is what each :class:`~repro.core.svs.SVSProcess` receives: a
    shared :class:`~repro.fd.detector.FailureDetector` instance, or a
    one-argument factory called with the owning process.  ``finalize`` runs
    once after every process is constructed (start timers, learn the
    membership, ...).
    """

    fd: Any
    finalize: Callable[[Any], None] = field(default=lambda stack: None)


latency_models = Registry(
    "latency model", "factory(sim, **params) -> LatencyModel"
)
relations = Registry(
    "obsolescence relation", "factory(**params) -> ObsolescenceRelation"
)
consensus_protocols = Registry(
    "consensus protocol", "factory(stack) -> ConsensusFactory"
)
failure_detectors = Registry(
    "failure detector", "factory(stack) -> FDWiring"
)
workloads = Registry("workload", "factory(**params) -> Trace")
fault_profiles = Registry("fault profile", "factory(**params) -> FaultPlan")
transports = Registry("transport", "factory(clock, **params) -> Transport")
dispatch_backends = Registry(
    "dispatch backend", "factory(**params) -> DispatchBackend"
)
