"""Stability tracking: garbage collection of accounted messages.

The paper notes (Section 2.1) that reliable protocols must buffer messages
"until they have been acknowledged by all group members" — i.e. until they
are *stable* — and that stability tracking is itself sensitive to
perturbations.  The Figure 1 pseudo-code sidesteps the issue by keeping
every message of the current view in ``delivered``, which makes the PRED
exchange grow linearly with view lifetime.  Real group communication
systems track stability and prune; this module adds that machinery as an
opt-in component (`stability_interval` on :class:`~repro.core.svs.SVSProcess`).

Design
------

Each process maintains, per sender, the highest *contiguously processed*
sequence number — its **watermark**.  A message counts as processed when it
is accepted for delivery, dropped as ⊑-covered (the coverer discharges its
obligation), or added/covered during an installation flush.  Watermarks are
gossiped periodically in STABLE messages; the per-sender minimum over the
current membership is the **stable bound**: every member has every message
at or below it accounted for.

Stable messages can then be

* pruned from the per-view ``delivered`` map (bounding memory), and
* omitted from ``local-pred`` at t5 (bounding PRED size and hence
  view-change cost),

without weakening Semantic View Synchrony: a stable message needs no
retransmission — every member already delivered it or holds a covering
chain that will be delivered before the next view installation.

Senders that leave the view (crash or exclusion) can leave permanent gaps
(messages nobody received); their watermark is *sealed* to the highest
processed sn at the next installation, since the view boundary discharges
all outstanding obligations for departed senders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

__all__ = ["StableMessage", "WatermarkTracker", "StabilityState"]


@dataclass(frozen=True)
class StableMessage:
    """Periodic gossip carrying the sender's per-stream watermarks."""

    view_id: int
    watermarks: Mapping[int, int]


class WatermarkTracker:
    """Per-sender contiguous-prefix tracking with out-of-order holding.

    ``note(sender, sn)`` records one processed message; the watermark for
    each sender is the largest W with every sn ≤ W processed.  FIFO
    channels make out-of-order notes rare (only installation flushes), so
    the pending sets stay tiny.
    """

    def __init__(self) -> None:
        self._watermark: Dict[int, int] = {}
        self._pending: Dict[int, Set[int]] = {}
        self._highest: Dict[int, int] = {}

    def note(self, sender: int, sn: int) -> None:
        high = self._highest.get(sender, -1)
        if sn > high:
            self._highest[sender] = sn
        mark = self._watermark.get(sender, -1)
        if sn <= mark:
            return
        pending = self._pending.setdefault(sender, set())
        pending.add(sn)
        while mark + 1 in pending:
            mark += 1
            pending.discard(mark)
        self._watermark[sender] = mark

    def watermark(self, sender: int) -> int:
        return self._watermark.get(sender, -1)

    def seal(self, sender: int) -> None:
        """Forgive gaps for a departed sender: jump to the highest sn seen."""
        high = self._highest.get(sender, -1)
        if high > self._watermark.get(sender, -1):
            self._watermark[sender] = high
        self._pending.pop(sender, None)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._watermark)

    def senders(self) -> Iterable[int]:
        return self._watermark.keys()


class StabilityState:
    """A process's view of group-wide stability.

    Aggregates peer watermark reports; ``stable_sn(sender)`` is the
    min-over-members bound below which messages are group-stable.
    """

    def __init__(self, own_pid: int, tracker: WatermarkTracker) -> None:
        self.own_pid = own_pid
        self.tracker = tracker
        self._reports: Dict[int, Dict[int, int]] = {}

    def record_report(self, pid: int, watermarks: Mapping[int, int]) -> None:
        self._reports[pid] = dict(watermarks)

    def stable_sn(self, sender: int, members: FrozenSet[int]) -> int:
        """Highest sn of ``sender`` known stable across ``members``.

        A member that has not reported yet contributes -1 (nothing stable)
        — conservative, never unsafe.
        """
        bound = self.tracker.watermark(sender) if self.own_pid in members else -1
        for pid in members:
            if pid == self.own_pid:
                continue
            report = self._reports.get(pid)
            if report is None:
                return -1
            bound = min(bound, report.get(sender, -1))
        return bound

    def forget_peer(self, pid: int) -> None:
        self._reports.pop(pid, None)
