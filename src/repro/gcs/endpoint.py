"""Application-facing group endpoint and rate-limited consumer.

:class:`GroupEndpoint` wraps one :class:`~repro.core.svs.SVSProcess` behind
the interface applications actually want:

* ``multicast`` that transparently queues messages while the group is
  blocked in a view change and re-sends them in the next view (the raw t2
  guard simply refuses during the change);
* callbacks for data, views and exclusion instead of manual queue polling;
* ``leave()`` / ``expel()`` membership operations (both are just t4
  triggers with the right ``leave`` set — Section 3.2 lists voluntary
  leaves and failure suspicions among the view-change causes).

:class:`RateLimitedConsumer` models the paper's receiving application: a
server draining the delivery queue at a fixed rate (messages per second),
pausable to inject the performance perturbations of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.core.message import DataMessage, View, ViewDelivery
from repro.core.svs import SVSProcess
from repro.sim.kernel import Simulator

__all__ = ["GroupEndpoint", "RateLimitedConsumer"]


class GroupEndpoint:
    """Convenience facade over one SVS group member."""

    def __init__(self, process: SVSProcess) -> None:
        self.process = process
        self._outbox: List[Tuple[Any, Any]] = []
        self.on_data: Optional[Callable[[DataMessage], None]] = None
        self.on_view: Optional[Callable[[View], None]] = None
        self.on_excluded: Optional[Callable[[View], None]] = None

        previous_install = process.listeners.on_install
        previous_exclude = process.listeners.on_exclude

        def install_hook(pid: int, view: View) -> None:
            if previous_install is not None:
                previous_install(pid, view)
            self._flush_outbox()

        def exclude_hook(pid: int, view: View) -> None:
            if previous_exclude is not None:
                previous_exclude(pid, view)
            if self.on_excluded is not None:
                self.on_excluded(view)

        process.listeners.on_install = install_hook
        process.listeners.on_exclude = exclude_hook

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def multicast(self, payload: Any, annotation: Any = None) -> bool:
        """Multicast now, or park the message until the view change ends.

        Returns True if the message went out immediately, False if parked.
        Parked messages are re-sent (in order) right after the next view
        installation — they then carry the new view's tag, which is the
        correct semantics: a message queued during a change is logically
        sent in the next configuration.
        """
        msg = self.process.multicast(payload, annotation)
        if msg is not None:
            return True
        if self.process.excluded or self.process.crashed:
            return False
        self._outbox.append((payload, annotation))
        return False

    def _flush_outbox(self) -> None:
        parked, self._outbox = self._outbox, []
        for payload, annotation in parked:
            msg = self.process.multicast(payload, annotation)
            if msg is None:
                # Blocked again already; keep the remainder parked.
                self._outbox.append((payload, annotation))

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def poll(self) -> Optional[Any]:
        """Deliver one entry, dispatching to callbacks; returns the entry."""
        entry = self.process.deliver()
        if entry is None:
            return None
        if isinstance(entry, ViewDelivery):
            if self.on_view is not None:
                self.on_view(entry.view)
        else:
            if self.on_data is not None:
                self.on_data(entry)
        return entry

    def poll_all(self) -> int:
        """Deliver everything currently queued; returns the count."""
        count = 0
        while self.process.pending:
            self.poll()
            count += 1
        return count

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def leave(self) -> None:
        """Voluntarily leave the group at the next view change."""
        self.process.trigger_view_change(leave=(self.process.pid,))

    def expel(self, *pids: int) -> None:
        """Trigger a view change removing the given members."""
        self.process.trigger_view_change(leave=pids)

    def reconfigure(self) -> None:
        """Trigger a view change with no explicit removals (suspected and
        unresponsive members drop out via the t7 guard)."""
        self.process.trigger_view_change()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def view(self) -> View:
        return self.process.cv

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def pending(self) -> int:
        return self.process.pending


class RateLimitedConsumer:
    """Drains an endpoint's queue at a fixed service rate.

    Models "the time it takes for the slower process to consume each
    message" (Section 5.3): one message every ``1/rate`` seconds while the
    queue is non-empty.  ``pause()``/``resume()`` implement the transient
    performance perturbations of Figure 5(b) (the
    :class:`~repro.sim.failure.PerturbationSchedule` protocol).
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: GroupEndpoint,
        rate: float,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.sim = sim
        self.endpoint = endpoint
        self.rate = rate
        self.paused = False
        self.consumed = 0
        self._started = False
        self._dead = False

    @property
    def service_time(self) -> float:
        return 1.0 / self.rate

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.service_time, self._tick)

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def restart(self) -> None:
        """Re-arm the service loop after the underlying process recovered.

        The loop dies silently when it observes a crash; a rejoin (see
        :meth:`repro.gcs.stack.GroupStack.rejoin`) revives the process but
        not the consumer — the fault installer calls this afterwards.
        No-op while the loop is still alive or never started.
        """
        if not self._started or not self._dead or self.endpoint.process.crashed:
            return
        self._dead = False
        self.sim.schedule(self.service_time, self._tick)

    def _tick(self) -> None:
        if self.endpoint.process.crashed:
            self._dead = True
            return
        if not self.paused and self.endpoint.pending:
            self.endpoint.poll()
            self.consumed += 1
        self.sim.schedule(self.service_time, self._tick)
