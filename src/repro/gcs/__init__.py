"""Group communication service: stack assembly, application endpoints,
stability tracking, and reusable run contexts."""

from repro.gcs.context import RunContext
from repro.gcs.endpoint import GroupEndpoint, RateLimitedConsumer
from repro.gcs.stability import StabilityState, StableMessage, WatermarkTracker
from repro.gcs.stack import GroupStack, StackConfig

__all__ = [
    "GroupStack",
    "StackConfig",
    "RunContext",
    "GroupEndpoint",
    "RateLimitedConsumer",
    "WatermarkTracker",
    "StabilityState",
    "StableMessage",
]
