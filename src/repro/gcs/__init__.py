"""Group communication service: stack assembly, application endpoints,
and stability tracking."""

from repro.gcs.endpoint import GroupEndpoint, RateLimitedConsumer
from repro.gcs.stability import StabilityState, StableMessage, WatermarkTracker
from repro.gcs.stack import GroupStack, StackConfig

__all__ = [
    "GroupStack",
    "StackConfig",
    "GroupEndpoint",
    "RateLimitedConsumer",
    "WatermarkTracker",
    "StabilityState",
    "StableMessage",
]
