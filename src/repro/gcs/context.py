"""Reusable, pre-validated construction context for simulation runs.

Every sweep cell used to pay the same fixed setup tax: re-validate the
:class:`~repro.gcs.stack.StackConfig`, re-resolve the consensus / failure
detector / latency registries, re-create the relation from its registry
name and re-build the initial :class:`~repro.core.message.View` — all of
which depend only on the *configuration*, not on the seed.  With grids of
thousands of cells (PR 2's sweep engine) that tax is pure overhead.

:class:`RunContext` hoists that work out of the per-cell path:

* :meth:`RunContext.prepare` validates once and resolves every registry
  entry once;
* :meth:`RunContext.stack` then builds a fresh, fully wired
  :class:`~repro.gcs.stack.GroupStack` per (cell, replicate) seed without
  repeating any validation;
* :meth:`RunContext.cached` memoises contexts per configuration, which is
  what the Scenario builder and the sweep executor use — one context per
  distinct configuration per worker process, shared by all its replicates.

The context is deliberately *stateless with respect to runs*: relations,
factories and views it holds are themselves stateless or copied per
stack, so two stacks built from one context never share mutable state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Union

from repro.core.message import View
from repro.core.obsolescence import ObsolescenceRelation
from repro.registry import (
    consensus_protocols,
    failure_detectors,
    latency_models,
    relations as relation_registry,
)

__all__ = ["RunContext", "context_cache_info", "clear_context_cache"]


def _config_key(config: "StackConfig") -> str:
    """Canonical JSON identity of a config (sans seed — seeds vary per
    replicate and must not fragment the cache)."""
    data = asdict(config)
    data.pop("seed", None)
    return json.dumps(data, sort_keys=True, default=repr)


@dataclass
class RunContext:
    """Validated construction inputs for one stack configuration.

    Build with :meth:`prepare` (or :meth:`cached`); then call
    :meth:`stack` once per seed.  The fields mirror exactly what
    :class:`~repro.gcs.stack.GroupStack` used to recompute per run.
    """

    config: "StackConfig"
    relation: ObsolescenceRelation
    initial_view: View

    @classmethod
    def prepare(
        cls,
        relation: Union[ObsolescenceRelation, str],
        config: Optional["StackConfig"] = None,
        relation_params: Optional[Dict[str, Any]] = None,
    ) -> "RunContext":
        """Validate the configuration and resolve every named backend.

        ``relation`` may be a registry name (created here, once) or an
        instance (used as-is; the paper's relations are stateless, so one
        instance can safely serve many stacks).
        """
        from repro.gcs.stack import StackConfig

        config = config or StackConfig()
        if isinstance(relation, str):
            relation = relation_registry.create(
                relation, **(relation_params or {})
            )
        # StackConfig.__post_init__ already checked the registry names;
        # pin the resolved entries so stack() never consults them again.
        consensus_protocols.get(config.consensus)
        failure_detectors.get(config.fd)
        latency_models.get(config.latency_model)
        return cls(
            config=config,
            relation=relation,
            initial_view=View(0, frozenset(range(config.n))),
        )

    # ------------------------------------------------------------------
    # Per-configuration memoisation (one entry per worker process)
    # ------------------------------------------------------------------

    _cache: ClassVar[Dict[Tuple[str, str], "RunContext"]] = {}
    _cache_hits: ClassVar[int] = 0
    _cache_misses: ClassVar[int] = 0

    @classmethod
    def cached(
        cls,
        relation_name: str,
        config: "StackConfig",
        relation_params: Optional[Dict[str, Any]] = None,
    ) -> "RunContext":
        """The memoised context for (relation name + params, config).

        Only registry-named relations are cacheable — an instance passed
        by the caller may be stateful, so it always gets a fresh
        :meth:`prepare`.  Seeds are excluded from the cache key: replicate
        N of a cell reuses the context replicate 0 built.
        """
        key = (
            json.dumps(
                {"name": relation_name, "params": relation_params or {}},
                sort_keys=True,
                default=repr,
            ),
            _config_key(config),
        )
        ctx = cls._cache.get(key)
        if ctx is None:
            RunContext._cache_misses += 1
            ctx = cls.prepare(relation_name, config, relation_params)
            cls._cache[key] = ctx
        else:
            RunContext._cache_hits += 1
        return ctx

    # ------------------------------------------------------------------
    # Fast stack construction
    # ------------------------------------------------------------------

    def stack(self, seed: Optional[int] = None) -> "GroupStack":
        """A fresh :class:`~repro.gcs.stack.GroupStack` for ``seed``.

        Skips config validation and registry resolution — both happened in
        :meth:`prepare`.  ``seed=None`` uses the context config's seed.
        """
        from repro.gcs.stack import GroupStack

        return GroupStack(self.relation, self.config, context=self, seed=seed)


def context_cache_info() -> Dict[str, int]:
    """Hit/miss counters of the per-process context cache (for tests)."""
    return {
        "hits": RunContext._cache_hits,
        "misses": RunContext._cache_misses,
        "entries": len(RunContext._cache),
    }


def clear_context_cache() -> None:
    RunContext._cache.clear()
    RunContext._cache_hits = 0
    RunContext._cache_misses = 0
