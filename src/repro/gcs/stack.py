"""Group communication stack assembly.

:class:`GroupStack` wires together everything a running group needs — the
simulator, the network, one failure detector and one
:class:`~repro.core.svs.SVSProcess` per member, a consensus factory, and a
:class:`~repro.core.spec.HistoryRecorder` — so tests, examples and
experiments can build a complete group in one call instead of repeating
boilerplate.

The two pluggable substrates mirror the paper's modularity claims:

* ``consensus="chandra-toueg"`` (default) runs the real ◇S protocol;
  ``consensus="oracle"`` decides instantly (optionally after a fixed delay).
* ``fd="oracle"`` (default) suspects exactly ``fd_delay`` after a crash;
  ``fd="heartbeat"`` runs the real heartbeat detector over the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.interface import ConsensusFactory
from repro.consensus.oracle import OracleConsensusHub
from repro.core.message import View
from repro.core.obsolescence import ObsolescenceRelation
from repro.core.spec import HistoryRecorder
from repro.core.svs import SVSProcess
from repro.fd.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    OracleFailureDetector,
)
from repro.sim.kernel import Simulator
from repro.sim.network import ConstantLatency, Network
from repro.sim.process import ProcessId

__all__ = ["GroupStack", "StackConfig"]


@dataclass
class StackConfig:
    """Construction options for :class:`GroupStack`."""

    n: int = 3
    seed: int = 0
    latency: float = 0.001
    consensus: str = "chandra-toueg"  # or "oracle"
    consensus_delay: float = 0.0  # oracle only
    fd: str = "oracle"  # or "heartbeat"
    fd_delay: float = 0.05  # oracle detection delay
    heartbeat_period: float = 0.02
    heartbeat_timeout: float = 0.1
    record_history: bool = True
    stability_interval: Optional[float] = None
    """Enable stability tracking (watermark gossip + stable-message GC)
    at this period; None reproduces the paper's protocol exactly."""

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("a group needs at least one member")
        if self.consensus not in ("chandra-toueg", "oracle"):
            raise ValueError(f"unknown consensus: {self.consensus!r}")
        if self.fd not in ("oracle", "heartbeat"):
            raise ValueError(f"unknown fd: {self.fd!r}")


def _chandra_toueg_factory(owner, key, participants, on_decide):
    """Consensus factory reading the detector off the owning process."""
    return ChandraTouegConsensus(owner, key, participants, on_decide, owner.fd)


class GroupStack:
    """A fully wired group of SVS processes over one simulator."""

    def __init__(
        self,
        relation: ObsolescenceRelation,
        config: Optional[StackConfig] = None,
    ) -> None:
        self.config = config or StackConfig()
        self.relation = relation
        self.sim = Simulator(seed=self.config.seed)
        self.network = Network(self.sim, ConstantLatency(self.config.latency))
        self.initial_view = View(0, frozenset(range(self.config.n)))
        self.recorder = HistoryRecorder() if self.config.record_history else None

        consensus_factory: ConsensusFactory
        if self.config.consensus == "oracle":
            hub = OracleConsensusHub(
                self.sim, decision_delay=self.config.consensus_delay
            )
            self.oracle_hub: Optional[OracleConsensusHub] = hub
            consensus_factory = hub.instance
        else:
            self.oracle_hub = None
            consensus_factory = _chandra_toueg_factory

        shared_fd: Optional[OracleFailureDetector] = None
        if self.config.fd == "oracle":
            shared_fd = OracleFailureDetector(
                self.sim, {}, detection_delay=self.config.fd_delay
            )

        def heartbeat_factory(proc) -> FailureDetector:
            return HeartbeatFailureDetector(
                proc,
                period=self.config.heartbeat_period,
                timeout=self.config.heartbeat_timeout,
            )

        self.processes: Dict[ProcessId, SVSProcess] = {}
        for pid in range(self.config.n):
            listeners = (
                self.recorder.listeners() if self.recorder is not None else None
            )
            proc = SVSProcess(
                pid=pid,
                sim=self.sim,
                network=self.network,
                initial_view=self.initial_view,
                relation=relation,
                consensus_factory=consensus_factory,
                fd=shared_fd if shared_fd is not None else heartbeat_factory,
                listeners=listeners,
                stability_interval=self.config.stability_interval,
            )
            self.processes[pid] = proc

        if shared_fd is not None:
            shared_fd.processes = dict(self.processes)
            shared_fd.start()
        else:
            for proc in self.processes.values():
                detector = proc.fd
                assert isinstance(detector, HeartbeatFailureDetector)
                detector.monitor(self.initial_view.members)
                detector.start()

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def __getitem__(self, pid: ProcessId) -> SVSProcess:
        return self.processes[pid]

    def __iter__(self):
        return iter(self.processes.values())

    def __len__(self) -> int:
        return len(self.processes)

    @property
    def members(self) -> List[ProcessId]:
        return sorted(self.processes)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        self.sim.run(until=until, max_events=max_events)

    def settle(self, quiet_time: float = 1.0, max_time: float = 120.0) -> None:
        """Run until the simulation goes quiet (heartbeats excluded).

        "Quiet" means no view change in progress anywhere and all delivery
        traffic flushed; used by tests to wait out a reconfiguration.
        """
        deadline = self.sim.now + max_time
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + quiet_time, deadline))
            busy = any(
                p.blocked and not p.crashed and not p.excluded
                for p in self.processes.values()
            )
            if not busy:
                return

    def crash(self, pid: ProcessId) -> None:
        self.processes[pid].crash()

    def drain_all(self) -> None:
        """Have every live process deliver everything queued."""
        for proc in self.processes.values():
            if not proc.crashed:
                proc.drain()

    def live_members(self) -> List[ProcessId]:
        return [
            pid
            for pid, p in self.processes.items()
            if not p.crashed and not p.excluded
        ]
