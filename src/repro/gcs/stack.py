"""Group communication stack assembly.

:class:`GroupStack` wires together everything a running group needs — the
simulator, the network, one failure detector and one
:class:`~repro.core.svs.SVSProcess` per member, a consensus factory, and a
:class:`~repro.core.spec.HistoryRecorder` — so tests, examples and
experiments can build a complete group in one call instead of repeating
boilerplate.

Every pluggable substrate is resolved by name through the registries in
:mod:`repro.registry`, mirroring the paper's modularity claims:

* ``consensus="chandra-toueg"`` (default) runs the real ◇S protocol;
  ``consensus="oracle"`` decides instantly (optionally after a fixed delay);
* ``fd="oracle"`` (default) suspects exactly ``fd_delay`` after a crash;
  ``fd="heartbeat"`` runs the real heartbeat detector over the network;
* ``latency_model`` names any registered :class:`~repro.sim.network.LatencyModel`
  (``"constant"``, ``"uniform"``, ``"lognormal"``, ...).

Third-party backends register themselves with a decorator (see
:mod:`repro.registry`) and become valid configuration values here without
any change to this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

# Imported for their registry side-effects (the built-in backends register
# themselves at import time) as well as for typing.
from repro.consensus.chandra_toueg import ChandraTouegConsensus  # noqa: F401
from repro.consensus.interface import ConsensusFactory
from repro.consensus.oracle import OracleConsensusHub
from repro.core.message import View
from repro.core.obsolescence import ObsolescenceRelation
from repro.core.spec import HistoryRecorder
from repro.core.svs import SVSProcess
from repro.fd.detector import FailureDetector  # noqa: F401
from repro.registry import (
    consensus_protocols,
    failure_detectors,
    latency_models,
    relations as relation_registry,
)
from repro.sim.failure import check_positive
from repro.sim.kernel import Simulator, SimulatorV3
from repro.sim.network import Network, NetworkV3
from repro.sim.process import ProcessId

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gcs.context import RunContext

__all__ = ["GroupStack", "StackConfig"]


@dataclass
class StackConfig:
    """Construction options for :class:`GroupStack`."""

    n: int = 3
    seed: int = 0
    latency: float = 0.001
    consensus: str = "chandra-toueg"  # any registered consensus protocol
    consensus_delay: float = 0.0  # oracle only
    fd: str = "oracle"  # any registered failure detector
    fd_delay: float = 0.05  # oracle detection delay
    heartbeat_period: float = 0.02
    heartbeat_timeout: float = 0.1
    record_history: bool = True
    stability_interval: Optional[float] = None
    """Enable stability tracking (watermark gossip + stable-message GC)
    at this period; None reproduces the paper's protocol exactly."""

    viewchange_retry: Optional[float] = None
    """Re-send INIT/PRED for an open view change at this period; None (the
    default, matching the paper's reliable channels) never retransmits.
    Set it when running over the lossy links of :mod:`repro.faults`."""

    latency_model: str = "constant"
    """Named latency model; ``"constant"`` reads its value from ``latency``."""

    latency_params: Optional[Dict[str, Any]] = None
    """Extra keyword arguments for the latency-model factory."""

    engine: str = "v2"
    """Simulation engine: ``"v2"`` (the slotted-queue kernel, default) or
    ``"v3"`` (batch dispatch + batched multicast fan-out, see
    ``docs/kernel.md``).  Results are byte-identical between the two —
    pinned by ``tests/sim/test_kernel_diff.py``; v3 exists purely for
    speed at large group sizes.  Ignored when an explicit ``sim`` /
    ``network`` substrate is injected (live transports bring their own)."""

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("a group needs at least one member")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative: {self.latency!r}")
        if self.consensus_delay < 0:
            raise ValueError(
                f"consensus_delay must be non-negative: {self.consensus_delay!r}"
            )
        if self.fd_delay < 0:
            raise ValueError(f"fd_delay must be non-negative: {self.fd_delay!r}")
        if self.heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat_period must be positive: {self.heartbeat_period!r}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive: {self.heartbeat_timeout!r}"
            )
        # Validated here (not only in SVSProcess) so every construction
        # path — including context-built stacks that skip per-process
        # re-validation — rejects it up front.
        if self.stability_interval is not None and self.stability_interval <= 0:
            raise ValueError(
                f"stability_interval must be positive: {self.stability_interval!r}"
            )
        if self.viewchange_retry is not None:
            check_positive(self.viewchange_retry, "viewchange_retry")
        if self.engine not in ("v2", "v3"):
            raise ValueError(
                f"engine must be 'v2' or 'v3': {self.engine!r}"
            )
        # Raise early (with the list of registered names) on unknown backends.
        consensus_protocols.get(self.consensus)
        failure_detectors.get(self.fd)
        latency_models.get(self.latency_model)


class GroupStack:
    """A fully wired group of SVS processes over one simulator.

    ``context`` is an optional pre-validated
    :class:`~repro.gcs.context.RunContext`: when given, the relation is
    already resolved, the initial view is shared, and no configuration is
    re-validated — the fast path sweep cells use to build one stack per
    replicate seed (pass ``seed`` to override the context config's seed
    without re-deriving anything else).

    ``sim`` and ``network`` inject an alternative substrate — a
    :class:`~repro.transport.clock.WallClock` plus a
    :class:`~repro.transport.network.TransportNetwork` for live runs; both
    duck-type the simulated originals, so the assembly below (and the
    protocol it assembles) is one code path for both worlds.  ``pids``
    restricts which members this stack hosts locally (default: all of
    ``range(n)``); a live UDP deployment builds one single-pid stack per
    OS process.  Partial hosting needs per-process backends —
    ``consensus="chandra-toueg"`` and ``fd="heartbeat"`` — because the
    oracle variants share in-memory state across the whole group.
    """

    def __init__(
        self,
        relation: Union[ObsolescenceRelation, str, None] = None,
        config: Optional[StackConfig] = None,
        context: Optional["RunContext"] = None,
        seed: Optional[int] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        pids: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        if context is not None:
            self.config = context.config
            self.relation = context.relation
            self.initial_view = context.initial_view
            stack_seed = seed if seed is not None else self.config.seed
        else:
            if relation is None:
                raise ValueError("GroupStack needs a relation (or a context)")
            if isinstance(relation, str):
                relation = relation_registry.create(relation)
            self.config = config or StackConfig()
            self.relation = relation
            self.initial_view = View(0, frozenset(range(self.config.n)))
            stack_seed = seed if seed is not None else self.config.seed
        #: The seed this stack actually runs under (== ``config.seed``
        #: unless overridden for a replicate).
        self.seed = stack_seed
        if sim is not None:
            self.sim = sim
        elif self.config.engine == "v3":
            self.sim = SimulatorV3(seed=stack_seed)
        else:
            self.sim = Simulator(seed=stack_seed)
        if network is not None:
            self.network = network
        elif self.config.engine == "v3":
            self.network = NetworkV3(self.sim, self._build_latency_model())
        else:
            self.network = Network(self.sim, self._build_latency_model())
        if pids is None:
            member_pids = list(range(self.config.n))
        else:
            member_pids = sorted(set(pids))
            bad = [p for p in member_pids if not 0 <= p < self.config.n]
            if bad:
                raise ValueError(
                    f"pids must lie in range({self.config.n}): {bad!r}"
                )
            if not member_pids:
                raise ValueError("pids must name at least one local member")
        self.recorder = HistoryRecorder() if self.config.record_history else None

        # Consensus plugins may stash shared state here (the oracle hub does).
        self.oracle_hub: Optional[OracleConsensusHub] = None
        consensus_factory: ConsensusFactory = consensus_protocols.create(
            self.config.consensus, self
        )
        fd_wiring = failure_detectors.create(self.config.fd, self)

        self.processes: Dict[ProcessId, SVSProcess] = {}
        for pid in member_pids:
            listeners = (
                self.recorder.listeners() if self.recorder is not None else None
            )
            proc = SVSProcess(
                pid=pid,
                sim=self.sim,
                network=self.network,
                initial_view=self.initial_view,
                relation=self.relation,
                consensus_factory=consensus_factory,
                fd=fd_wiring.fd,
                listeners=listeners,
                stability_interval=self.config.stability_interval,
                viewchange_retry=self.config.viewchange_retry,
                ctx=context,
            )
            self.processes[pid] = proc

        fd_wiring.finalize(self)

    def _build_latency_model(self):
        params = dict(self.config.latency_params or {})
        if self.config.latency_model == "constant":
            params.setdefault("latency", self.config.latency)
        return latency_models.create(self.config.latency_model, self.sim, **params)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def __getitem__(self, pid: ProcessId) -> SVSProcess:
        return self.processes[pid]

    def __iter__(self):
        return iter(self.processes.values())

    def __len__(self) -> int:
        return len(self.processes)

    @property
    def members(self) -> List[ProcessId]:
        return sorted(self.processes)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        self.sim.run(until=until, max_events=max_events)

    def settle(self, quiet_time: float = 1.0, max_time: float = 120.0) -> None:
        """Run until the simulation goes quiet (heartbeats excluded).

        "Quiet" means no view change in progress anywhere and all delivery
        traffic flushed; used by tests to wait out a reconfiguration.
        """
        deadline = self.sim.now + max_time
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + quiet_time, deadline))
            busy = any(
                p.blocked and not p.crashed and not p.excluded
                for p in self.processes.values()
            )
            if not busy:
                return

    def crash(self, pid: ProcessId) -> None:
        self.processes[pid].crash()

    # ------------------------------------------------------------------
    # Rejoin orchestration (the recover/welcome extension)
    # ------------------------------------------------------------------

    def rejoin(
        self,
        pid: ProcessId,
        via: Optional[ProcessId] = None,
        retry: Optional[float] = None,
    ) -> None:
        """Bring a crashed (or excluded) member back into the group.

        Revives the process as a fresh incarnation (see
        :meth:`~repro.core.svs.SVSProcess.recover`), then has a live
        *sponsor* — ``via``, or the lowest-pid live member — trigger a view
        change whose ``join`` set names the returnee; the decided view's
        survivors transfer it the new view through a WELCOME message.

        ``retry`` (seconds) arms a watchdog that re-attempts the join until
        it completes: a concurrent view change can swallow the INIT, and on
        lossy links any of the messages involved may be dropped.  Each
        re-attempt either re-triggers the join or — when the joiner already
        made it into the current view but every WELCOME was lost — re-sends
        the state transfer.  Pass ``None`` for a single attempt (enough on
        reliable, quiescent groups).
        """
        # Validate everything before the first side effect: a rejected call
        # must not leave the group mid-rejoin (and a NaN retry would
        # poison the event queue).
        if retry is not None:
            check_positive(retry, "rejoin retry")
        proc = self.processes[pid]
        proc.recover()  # validates crashed-or-excluded before any bookkeeping
        if self.recorder is not None:
            self.recorder.record_rejoin(pid)
        self._attempt_join(pid, via)
        if retry is not None:
            self.sim.schedule(retry, self._rejoin_watch, pid, via, retry)

    def _sponsor_for(self, pid: ProcessId) -> Optional[ProcessId]:
        for candidate in self.members:
            proc = self.processes[candidate]
            if (
                candidate != pid
                and not proc.crashed
                and not proc.excluded
                and not proc.joining
            ):
                return candidate
        return None

    def _attempt_join(self, pid: ProcessId, via: Optional[ProcessId]) -> None:
        joiner = self.processes[pid]
        sponsor: Optional[ProcessId] = None
        if via is not None and via != pid:
            # `via` is a preference, not a hard pin: a sponsor that has
            # crashed (or is itself joining) cannot trigger anything, and
            # silently retrying through it forever would wedge the rejoin.
            candidate = self.processes[via]
            if not (candidate.crashed or candidate.excluded or candidate.joining):
                sponsor = via
        if sponsor is None:
            sponsor = self._sponsor_for(pid)
        if sponsor is None:
            return  # nobody left to sponsor; the watchdog may retry later
        sponsor_proc = self.processes[sponsor]
        if (
            pid in sponsor_proc.cv.members
            and sponsor_proc.cv.vid > joiner.cv.vid
        ):
            # A join view newer than the joiner's stale one was installed,
            # yet the joiner never heard: the WELCOMEs were lost.
            # Re-triggering would deadlock (t7 waits for the joiner's
            # PRED); re-send the transfer instead.
            sponsor_proc.send_welcome(pid)
        else:
            sponsor_proc.trigger_view_change(join=(pid,))

    def _rejoin_watch(
        self, pid: ProcessId, via: Optional[ProcessId], retry: float
    ) -> None:
        proc = self.processes[pid]
        if not proc.joining or proc.crashed:
            return  # joined (or crashed again); the watchdog stands down
        self._attempt_join(pid, via)
        self.sim.schedule(retry, self._rejoin_watch, pid, via, retry)

    def drain_all(self) -> None:
        """Have every live process deliver everything queued."""
        for proc in self.processes.values():
            if not proc.crashed:
                proc.drain()

    def live_members(self) -> List[ProcessId]:
        return [
            pid
            for pid, p in self.processes.items()
            if not p.crashed and not p.excluded
        ]
