"""Unreliable failure detectors (Chandra–Toueg style)."""

from repro.fd.detector import (
    FD_STREAM,
    FailureDetector,
    Heartbeat,
    HeartbeatFailureDetector,
    OracleFailureDetector,
)

__all__ = [
    "FailureDetector",
    "Heartbeat",
    "HeartbeatFailureDetector",
    "OracleFailureDetector",
    "FD_STREAM",
]
