"""Failure detectors.

The paper's system model (Section 3.1) is the asynchronous model augmented
with an unreliable failure detector in the Chandra–Toueg sense.  Two
implementations are provided:

* :class:`HeartbeatFailureDetector` — the realistic one: every monitored
  process periodically multicasts heartbeats; a peer is suspected when no
  heartbeat arrives within the current timeout.  A false suspicion (a
  heartbeat from a suspected peer) lifts the suspicion and *increases* the
  timeout, giving the eventually-perfect (◇P) behaviour that Chandra–Toueg
  consensus needs for liveness.
* :class:`OracleFailureDetector` — a test/experiment convenience that knows
  the ground truth: a process is suspected exactly ``detection_delay`` after
  it actually crashes.  Zero network cost, never wrong, fully deterministic.

Both expose the same query/subscription interface (:class:`FailureDetector`),
so the consensus and SVS layers are agnostic to which one they run over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.message import Envelope
from repro.registry import FDWiring, failure_detectors as _fd_registry
from repro.sim.kernel import Simulator
from repro.sim.process import ProcessId, SimProcess

__all__ = [
    "FailureDetector",
    "Heartbeat",
    "HeartbeatFailureDetector",
    "OracleFailureDetector",
]

#: callback(pid, suspected) — invoked on every suspicion status change.
SuspicionListener = Callable[[ProcessId, bool], None]

FD_STREAM = "fd"


class FailureDetector:
    """Query/subscription interface shared by all detector implementations."""

    def suspects(self, pid: ProcessId) -> bool:
        raise NotImplementedError

    def suspected(self) -> FrozenSet[ProcessId]:
        raise NotImplementedError

    def subscribe(self, listener: SuspicionListener) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Heartbeat:
    """The periodic liveness beacon; ``epoch`` counts beats for debugging."""

    epoch: int


class _ListenerMixin:
    def __init__(self) -> None:
        self._listeners: List[SuspicionListener] = []
        self._suspected: Set[ProcessId] = set()

    def subscribe(self, listener: SuspicionListener) -> None:
        self._listeners.append(listener)

    def suspects(self, pid: ProcessId) -> bool:
        return pid in self._suspected

    def suspected(self) -> FrozenSet[ProcessId]:
        return frozenset(self._suspected)

    def _set_suspected(self, pid: ProcessId, flag: bool) -> None:
        if flag and pid not in self._suspected:
            self._suspected.add(pid)
        elif not flag and pid in self._suspected:
            self._suspected.discard(pid)
        else:
            return
        for listener in list(self._listeners):
            listener(pid, flag)


class HeartbeatFailureDetector(_ListenerMixin, FailureDetector):
    """Heartbeat-based eventually-perfect detector component.

    Owned by a :class:`~repro.sim.process.SimProcess`; the owner must route
    incoming :class:`~repro.core.message.Envelope` messages with stream
    ``"fd"`` into :meth:`on_message`.

    Parameters
    ----------
    owner:
        The process this detector runs inside.
    period:
        Heartbeat emission period.
    timeout:
        Initial suspicion timeout; must exceed ``period`` plus the one-way
        network latency or everybody is suspected immediately.
    backoff:
        Added to a peer's timeout each time it is falsely suspected —
        the standard trick that makes the detector eventually perfect under
        unknown-but-finite delays.
    """

    def __init__(
        self,
        owner: SimProcess,
        period: float = 0.05,
        timeout: float = 0.25,
        backoff: float = 0.05,
    ) -> None:
        if period <= 0 or timeout <= 0 or backoff < 0:
            raise ValueError("period/timeout must be positive, backoff >= 0")
        _ListenerMixin.__init__(self)
        self.owner = owner
        self.period = period
        self.initial_timeout = timeout
        self.backoff = backoff
        self._peers: Set[ProcessId] = set()
        self._timeouts: Dict[ProcessId, float] = {}
        self._deadline_timer_armed = False
        self._last_heard: Dict[ProcessId, float] = {}
        self._epoch = 0
        self._started = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def monitor(self, peers: Iterable[ProcessId]) -> None:
        """Set the peer set to watch (excluding the owner itself)."""
        now = self.owner.sim.now
        new_peers = {p for p in peers if p != self.owner.pid}
        for p in new_peers - self._peers:
            self._last_heard[p] = now
            self._timeouts.setdefault(p, self.initial_timeout)
        for p in self._peers - new_peers:
            self._last_heard.pop(p, None)
            self._suspected.discard(p)
        self._peers = new_peers

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._emit()
        self._check()

    # ------------------------------------------------------------------
    # Heartbeat emission and checking (driven by owner timers)
    # ------------------------------------------------------------------

    def _emit(self) -> None:
        if self.owner.crashed:
            return
        beat = Envelope(stream=FD_STREAM, body=Heartbeat(self._epoch))
        self._epoch += 1
        for peer in self._peers:
            self.owner.send(peer, beat)
        self.owner.set_timer("fd-emit", self.period, self._emit)

    def _check(self) -> None:
        if self.owner.crashed:
            return
        now = self.owner.sim.now
        for peer in self._peers:
            deadline = self._last_heard.get(peer, now) + self._timeouts.get(
                peer, self.initial_timeout
            )
            if now >= deadline:
                self._set_suspected(peer, True)
        # Re-check at heartbeat granularity; cheap and deterministic.
        self.owner.set_timer("fd-check", self.period, self._check)

    # ------------------------------------------------------------------
    # Incoming heartbeats
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, body: Heartbeat) -> None:
        if sender not in self._peers:
            return
        self._last_heard[sender] = self.owner.sim.now
        if self.suspects(sender):
            # False suspicion: recant and back off this peer's timeout.
            self._timeouts[sender] = (
                self._timeouts.get(sender, self.initial_timeout) + self.backoff
            )
            self._set_suspected(sender, False)

    # ------------------------------------------------------------------
    # Recovery (the rejoin extension, see repro.faults)
    # ------------------------------------------------------------------

    def resume(self) -> None:
        """Re-arm emission and checking after the owner recovered.

        A crash cancels the owner's timers, killing both loops.  The grace
        reset of ``last_heard`` keeps the recovered process from instantly
        suspecting every peer it has not heard from while it was down.
        """
        if not self._started or self.owner.crashed:
            return
        now = self.owner.sim.now
        for peer in self._peers:
            self._last_heard[peer] = now
        self._emit()
        self._check()


class OracleFailureDetector(_ListenerMixin, FailureDetector):
    """Ground-truth detector: suspects exactly ``detection_delay`` after a crash.

    Implemented as a periodic scan over a pid→process mapping so it needs
    no cooperation from the processes.  Deterministic and message-free,
    which keeps protocol traces clean in unit tests.
    """

    def __init__(
        self,
        sim: Simulator,
        processes: Dict[ProcessId, SimProcess],
        detection_delay: float = 0.1,
        scan_period: float = 0.01,
    ) -> None:
        if detection_delay < 0 or scan_period <= 0:
            raise ValueError("delay must be >= 0 and scan period positive")
        _ListenerMixin.__init__(self)
        self.sim = sim
        self.processes = processes
        self.detection_delay = detection_delay
        self.scan_period = scan_period
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._scan()

    def _scan(self) -> None:
        now = self.sim.now
        for pid, proc in self.processes.items():
            if (
                proc.crashed
                and proc.crash_time is not None
                and now >= proc.crash_time + self.detection_delay
            ):
                self._set_suspected(pid, True)
            elif getattr(proc, "joining", False):
                # A recovered process that is still *joining* cannot take
                # part in any protocol yet, so the ground-truth detector
                # suspects it outright — even when it recovered before the
                # crash suspicion ever fired (otherwise t7 would wait
                # forever for a PRED the joiner will never send).  It is
                # unsuspected the moment its WELCOME installs.
                self._set_suspected(pid, True)
            elif not proc.crashed and pid in self._suspected:
                # Ground truth again: alive and participating.
                self._set_suspected(pid, False)
        self.sim.schedule(self.scan_period, self._scan)


# ----------------------------------------------------------------------
# Registry entries: how each detector wires into a GroupStack
# (see repro.registry for the FDWiring contract)
# ----------------------------------------------------------------------


@_fd_registry.register("oracle")
def _oracle_fd(stack) -> FDWiring:
    """One omniscient detector shared by the whole group."""
    fd = OracleFailureDetector(
        stack.sim, {}, detection_delay=stack.config.fd_delay
    )

    def finalize(stack) -> None:
        fd.processes = dict(stack.processes)
        fd.start()

    return FDWiring(fd=fd, finalize=finalize)


@_fd_registry.register("heartbeat")
def _heartbeat_fd(stack) -> FDWiring:
    """One heartbeat detector per process, over the real network."""

    def per_process(proc) -> HeartbeatFailureDetector:
        return HeartbeatFailureDetector(
            proc,
            period=stack.config.heartbeat_period,
            timeout=stack.config.heartbeat_timeout,
        )

    def finalize(stack) -> None:
        for proc in stack.processes.values():
            detector = proc.fd
            assert isinstance(detector, HeartbeatFailureDetector)
            detector.monitor(stack.initial_view.members)
            detector.start()

    return FDWiring(fd=per_process, finalize=finalize)
