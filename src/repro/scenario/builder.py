"""Declarative experiment sessions over the group communication stack.

The paper's evaluation is a matrix of scenarios — protocol × relation ×
workload × perturbation schedule.  :class:`Scenario` expresses one cell of
that matrix declaratively instead of hand-wiring simulator, processes,
consumers, schedules and collectors::

    from repro import Scenario

    result = (
        Scenario()
        .group(n=5, relation="item-tagging", consensus="oracle")
        .latency("lognormal", mean=0.001)
        .workload("game", rounds=600)
        .consumers(rate=120)
        .perturb(pid=2, at=5.0, duration=1.0)
        .crash(pid=4, at=8.0)
        .collect("throughput", "queue_depth", "view_changes")
        .run(until=30.0)
    )
    assert result.ok          # the executable specification held
    result.write_json("run.json")

Every named component (relation, consensus, failure detector, latency
model, workload) is resolved through :mod:`repro.registry`, so anything a
third party registers is immediately usable here.

For experiments that need imperative access — custom callbacks, mid-run
triggers — :meth:`Scenario.build` returns a :class:`LiveScenario` exposing
the wired ``stack``, ``endpoints``, ``consumers`` and ``sim`` before
anything runs; :meth:`LiveScenario.run` then produces the same
:class:`~repro.scenario.result.ScenarioResult`.

A note on naming: :class:`LiveScenario` is the *built-but-not-yet-run
session* — "live" as in "live objects you can poke", not as in wall-clock
execution.  It exists for every scenario, simulated or not.  A *live
transport run* is the separate, opt-in thing selected with
:meth:`Scenario.transport`: the same wired session executed in real time
over :mod:`repro.transport` (asyncio loopback or UDP) instead of the
discrete-event kernel.  Either way, :meth:`LiveScenario.run` returns the
same result shape and applies the same executable-specification checks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.message import View
from repro.core.obsolescence import ObsolescenceRelation
from repro.core.spec import CHECKS, check_all
from repro.core.svs import SVSListeners
from repro.faults.plan import (
    Crash as CrashEvent,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    Perturb as PerturbEvent,
    Recover as RecoverEvent,
    ViewChange as ViewChangeEvent,
)
from repro.gcs.context import RunContext
from repro.gcs.endpoint import GroupEndpoint, RateLimitedConsumer
from repro.gcs.stack import GroupStack, StackConfig
from repro.metrics.collectors import TimeWeightedStat
from repro.registry import (
    fault_profiles as fault_profile_registry,
    relations as relation_registry,
    workloads as workload_registry,
)
from repro.scenario.result import ScenarioResult, serialize_histories
from repro.sim.failure import Perturbation
from repro.workload.trace import Trace, to_data_messages

__all__ = ["Scenario", "LiveScenario", "ScenarioError", "KNOWN_METRICS"]

#: Metric names accepted by :meth:`Scenario.collect`.
KNOWN_METRICS = (
    "throughput",
    "queue_depth",
    "view_changes",
    "purges",
    "network",
)


class ScenarioError(ValueError):
    """An inconsistent or invalid scenario specification."""


# Named workloads are pure functions of (name, generation params); sweep
# cells that share a workload spec would otherwise regenerate the same
# trace once per (cell, replicate).  Traces are replayed read-only, so one
# instance can serve every cell of a worker process — and sharing the
# instance also lets downstream per-trace caches (annotation memoisation)
# hit across cells.
_workload_cache: Dict[str, Trace] = {}


def _cached_workload(name: str, params: Dict[str, Any]) -> Trace:
    key = json.dumps({"name": name, "params": params}, sort_keys=True, default=repr)
    trace = _workload_cache.get(key)
    if trace is None:
        trace = workload_registry.create(name, **params)
        _workload_cache[key] = trace
    return trace


@dataclass(frozen=True)
class _Injection:
    at: float
    payload: Any
    annotation: Any
    sender: int


@dataclass(frozen=True)
class _TraceWorkload:
    trace: Trace
    sender: int
    representation: Optional[str]
    k: Optional[int]
    start: Optional[float]


class Scenario:
    """Fluent builder for one experiment session.

    Every method returns ``self`` so calls chain; nothing is constructed
    until :meth:`build` (or :meth:`run`, which builds implicitly).
    """

    def __init__(self) -> None:
        self._n = 3
        self._seed = 0
        self._relation: Union[ObsolescenceRelation, str] = "item-tagging"
        self._relation_params: Dict[str, Any] = {}
        self._relation_explicit = False
        self._consensus = "chandra-toueg"
        self._fd = "oracle"
        self._config_kwargs: Dict[str, Any] = {}
        self._latency_model: Optional[str] = None
        self._latency_params: Dict[str, Any] = {}
        self._trace_workload: Optional[_TraceWorkload] = None
        self._injections: List[_Injection] = []
        self._drivers: List[Callable[["LiveScenario"], None]] = []
        self._consumer_specs: List[Tuple[Optional[Tuple[int, ...]], float]] = []
        self._drain_period: Optional[float] = None
        self._perturbations: List[Tuple[int, Perturbation]] = []
        self._crashes: List[Tuple[int, float]] = []
        self._recovers: List[RecoverEvent] = []
        self._view_changes: List[Tuple[int, float]] = []
        self._fault_plans: List[FaultPlan] = []
        self._metrics: List[str] = []
        self._sample_period = 0.05
        self._check = True
        self._check_names: Optional[Tuple[str, ...]] = None
        self._histories: Optional[bool] = None
        self._listener_hooks: Dict[str, Callable[..., None]] = {}
        self._view_hooks: List[Callable[[int, View], None]] = []
        self._transport: Optional[Tuple[str, Dict[str, Any]]] = None
        self._runtime_params: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Group composition
    # ------------------------------------------------------------------

    def group(
        self,
        n: Optional[int] = None,
        relation: Optional[Union[ObsolescenceRelation, str]] = None,
        consensus: Optional[str] = None,
        fd: Optional[str] = None,
        seed: Optional[int] = None,
        relation_params: Optional[Dict[str, Any]] = None,
        **config_kwargs: Any,
    ) -> "Scenario":
        """Set group size, obsolescence relation and substrate backends.

        ``relation``, ``consensus`` and ``fd`` accept registry names (or, for
        the relation, an instance).  Extra keyword arguments pass straight
        through to :class:`~repro.gcs.stack.StackConfig`
        (``stability_interval=0.1``, ``fd_delay=0.02``, ...).
        """
        if n is not None:
            if n < 1:
                raise ScenarioError("a group needs at least one member")
            self._n = n
        if relation is not None:
            if isinstance(relation, str):
                relation_registry.get(relation)  # fail fast on unknown names
            self._relation = relation
            self._relation_explicit = True
        if relation_params is not None:
            self._relation_params = dict(relation_params)
        if consensus is not None:
            self._consensus = consensus
        if fd is not None:
            self._fd = fd
        if seed is not None:
            self._seed = seed
        self._config_kwargs.update(config_kwargs)
        return self

    def latency(self, model: str, **params: Any) -> "Scenario":
        """Pick a registered latency model (``"constant"``, ``"uniform"``,
        ``"lognormal"``, or anything third parties registered)."""
        self._latency_model = model
        self._latency_params = dict(params)
        return self

    def engine(self, name: str) -> "Scenario":
        """Pick the simulation engine: ``"v2"`` (default) or ``"v3"``.

        v3 runs the batch-dispatch kernel and the batched-multicast
        network (see ``docs/kernel.md``); results are byte-identical to
        v2 — the differential suite in ``tests/sim/test_kernel_diff.py``
        pins this — so the choice is purely about speed at scale.  Live
        transports (:meth:`transport`) ignore the engine: they bring
        their own clock and network substrate.
        """
        if name not in ("v2", "v3"):
            raise ScenarioError(f"engine must be 'v2' or 'v3': {name!r}")
        self._config_kwargs["engine"] = name
        return self

    def transport(
        self,
        backend: str = "loopback",
        runtime: Optional[Dict[str, Any]] = None,
        **params: Any,
    ) -> "Scenario":
        """Execute this scenario *live*, in wall-clock time, over a
        registered transport backend instead of the discrete-event kernel.

        ``backend`` names an entry of :data:`repro.registry.transports` —
        ``"loopback"`` (in-process asyncio fabric, optionally with emulated
        latency/jitter/loss/duplication via ``params``) or ``"udp"`` (real
        datagram sockets; pass ``n=...`` or an explicit ``peers`` map).
        ``runtime`` tunes the liveness layer
        (:class:`repro.transport.runtime.LiveRuntime`: sync beacon
        interval/jitter, retransmission backoff, send-log bounds).

        Everything else about the scenario — workloads, consumers, fault
        plans, metrics, the executable-specification check — is unchanged;
        :meth:`run`'s ``until`` simply becomes wall-clock seconds.  Live
        runs keep the protocol's *safety* guarantees but are not
        event-for-event reproducible; see ``docs/transport.md``.  Not
        combinable with :meth:`latency` (link timing belongs to the
        transport backend in a live run).
        """
        # Import here so simulation-only users never pay for (or depend
        # on) the transport package; the import also registers backends.
        from repro.transport import transports

        transports.get(backend)  # fail fast on unknown names
        self._transport = (backend, dict(params))
        self._runtime_params = dict(runtime or {})
        return self

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def workload(
        self,
        source: Union[Trace, str, Callable[["LiveScenario"], None]],
        *,
        sender: int = 0,
        representation: Optional[str] = None,
        k: Optional[int] = None,
        start: Optional[float] = None,
        **params: Any,
    ) -> "Scenario":
        """Drive the group with a workload.

        ``source`` may be:

        * a :class:`~repro.workload.trace.Trace` — replayed from ``sender``
          at its recorded timestamps;
        * a registered workload name (``"game"``, ``"periodic-updates"``,
          ...) — generated with ``params`` then replayed;
        * a callable — invoked with the :class:`LiveScenario` at build time
          to schedule arbitrary custom traffic.

        For traces, ``representation=None`` (default) annotates each
        obsolescible message with its item tag (pair with an item-tagging
        relation); naming a representation (``"k-enumeration"``, ...)
        pre-encodes the trace with :func:`~repro.workload.trace.to_data_messages`
        and, unless a relation was set explicitly, adopts the encoder's
        relation.
        """
        if callable(source) and not isinstance(source, (Trace, str)):
            if (
                sender != 0
                or representation is not None
                or k is not None
                or start is not None
                or params
            ):
                raise ScenarioError(
                    "sender/representation/k/start and generation parameters "
                    "only apply to trace workloads, not callable drivers"
                )
            self._drivers.append(source)
            return self
        if isinstance(source, str):
            source = _cached_workload(source, dict(params))
        elif params:
            raise ScenarioError(
                "workload generation parameters only apply to named workloads"
            )
        if not isinstance(source, Trace):
            raise ScenarioError(
                f"workload source must be a Trace, a registered name or a "
                f"callable, got {type(source).__name__}"
            )
        if self._trace_workload is not None:
            raise ScenarioError("only one trace workload per scenario")
        if start is not None and start < 0:
            raise ScenarioError(f"workload start must be non-negative: {start}")
        self._trace_workload = _TraceWorkload(
            trace=source,
            sender=sender,
            representation=representation,
            k=k,
            start=start,
        )
        return self

    def inject(
        self,
        at: float,
        payload: Any,
        annotation: Any = None,
        sender: int = 0,
    ) -> "Scenario":
        """Multicast one explicit message at an absolute simulated time."""
        if at < 0:
            raise ScenarioError(f"injection time must be non-negative: {at}")
        self._injections.append(_Injection(at, payload, annotation, sender))
        return self

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def consumers(
        self, rate: float, pids: Optional[Sequence[int]] = None
    ) -> "Scenario":
        """Attach rate-limited consumers (``rate`` messages/second).

        With ``pids=None`` every member gets one; later calls override
        earlier ones per pid, so ``.consumers(rate=5000).consumers(rate=30,
        pids=[2])`` means "everyone fast, process 2 slow"."""
        if rate <= 0:
            raise ScenarioError(f"consumer rate must be positive: {rate}")
        self._consumer_specs.append(
            (tuple(pids) if pids is not None else None, float(rate))
        )
        return self

    def drain_every(self, period: float) -> "Scenario":
        """Bulk-drain every live process's queue at a fixed period —
        the cheap stand-in for "all consumers keep up easily"."""
        if period <= 0:
            raise ScenarioError(f"drain period must be positive: {period}")
        self._drain_period = period
        return self

    # ------------------------------------------------------------------
    # Faults and membership events
    # ------------------------------------------------------------------

    def perturb(self, pid: int, at: float, duration: float) -> "Scenario":
        """Stall ``pid``'s consumer completely for ``[at, at + duration)`` —
        the paper's transient performance perturbation (Section 2)."""
        if at < 0:
            raise ScenarioError(f"perturbation start must be non-negative: {at}")
        if duration <= 0:
            raise ScenarioError(
                f"perturbation duration must be positive: {duration}"
            )
        self._perturbations.append((pid, Perturbation(at, duration)))
        return self

    def crash(self, pid: int, at: float) -> "Scenario":
        """Crash-stop ``pid`` at the given simulated time."""
        if at < 0:
            raise ScenarioError(f"crash time must be non-negative: {at}")
        self._crashes.append((pid, at))
        return self

    def recover(
        self,
        pid: int,
        at: float,
        via: Optional[int] = None,
        retry: Optional[float] = 0.5,
    ) -> "Scenario":
        """Revive a crashed (or excluded) ``pid`` at ``at`` and rejoin it
        through the stack (state transfer + fresh incarnation; see
        :meth:`repro.gcs.stack.GroupStack.rejoin`).  ``retry`` keeps a
        watchdog re-attempting the join — on lossy links, leave it on."""
        try:
            self._recovers.append(
                RecoverEvent(at=at, pid=pid, via=via, retry=retry)
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        return self

    def faults(
        self,
        source: Union[FaultPlan, str, Sequence[Any]],
        **params: Any,
    ) -> "Scenario":
        """Attach a fault plan (see :mod:`repro.faults`).

        ``source`` may be a :class:`~repro.faults.FaultPlan`, a registered
        fault-profile name (``"partition-heal"``, ``"lossy-links"``,
        ``"crash-rejoin"``, ``"partition-churn"``, ...) instantiated with
        ``params``, or a sequence of fault events / event dicts (the
        sweepable form).  May be called repeatedly; plans accumulate.
        """
        if isinstance(source, str):
            plan = fault_profile_registry.create(source, **params)
            if not isinstance(plan, FaultPlan):
                raise ScenarioError(
                    f"fault profile {source!r} returned "
                    f"{type(plan).__name__}, not a FaultPlan"
                )
        elif params:
            raise ScenarioError(
                "fault parameters only apply to named fault profiles"
            )
        elif isinstance(source, FaultPlan):
            plan = source
        elif isinstance(source, Sequence):
            try:
                if all(isinstance(e, FaultEvent) for e in source):
                    plan = FaultPlan(source)
                else:
                    plan = FaultPlan.from_dicts(source)
            except ValueError as exc:
                raise ScenarioError(str(exc)) from None
        else:
            raise ScenarioError(
                f"faults() takes a FaultPlan, a profile name or a sequence "
                f"of events, got {type(source).__name__}"
            )
        if plan.installed:
            raise ScenarioError("fault plan was already installed elsewhere")
        self._fault_plans.append(plan)
        return self

    def view_change(self, at: float, pid: int = 0) -> "Scenario":
        """Have ``pid`` trigger a view change at the given time (suspected
        and crashed members drop out via the t7 guard)."""
        if at < 0:
            raise ScenarioError(f"view-change time must be non-negative: {at}")
        self._view_changes.append((pid, at))
        return self

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def collect(self, *metrics: str) -> "Scenario":
        """Select the metrics the result should carry (see
        :data:`KNOWN_METRICS`)."""
        for name in metrics:
            if name not in KNOWN_METRICS:
                raise ScenarioError(
                    f"unknown metric: {name!r} "
                    f"(known: {', '.join(KNOWN_METRICS)})"
                )
            if name not in self._metrics:
                self._metrics.append(name)
        return self

    def sample_every(self, period: float) -> "Scenario":
        """Sampling period for time-weighted metrics (queue_depth)."""
        if period <= 0:
            raise ScenarioError(f"sample period must be positive: {period}")
        self._sample_period = period
        return self

    def check(
        self, enabled: bool = True, checks: Optional[Sequence[str]] = None
    ) -> "Scenario":
        """Toggle the executable-specification check after the run
        (on by default; requires history recording).

        ``checks`` selects a subset of :data:`repro.core.spec.CHECKS` by
        name (``"svs"``, ``"fifo-sr"``, ``"integrity"``,
        ``"view-agreement"``, ``"classic-vs"``); ``None`` runs the default
        set.  Unknown names fail here, not after the run.
        """
        self._check = enabled
        if checks is not None:
            unknown = [name for name in checks if name not in CHECKS]
            if unknown:
                raise ScenarioError(
                    f"unknown checks: {', '.join(map(repr, unknown))} "
                    f"(known: {', '.join(CHECKS)})"
                )
        self._check_names = tuple(checks) if checks is not None else None
        return self

    def histories(self, enabled: bool = True) -> "Scenario":
        """Toggle serialized per-process histories on the result.

        Defaults to following :meth:`check`: runs that verify the spec get
        histories, metrics-only runs (``check(False)``) skip the
        O(deliveries) serialization pass unless asked."""
        self._histories = enabled
        return self

    def listeners(self, **hooks: Callable[..., None]) -> "Scenario":
        """Attach :class:`~repro.core.svs.SVSListeners` hooks to every
        process (``on_install=...``, ``on_flush=...``, ``on_pred=...``).
        Hooks are chained with — never replace — the recorder's own."""
        valid = {f.name for f in SVSListeners.__dataclass_fields__.values()}
        for name in hooks:
            if name not in valid:
                raise ScenarioError(
                    f"unknown listener hook: {name!r} "
                    f"(known: {', '.join(sorted(valid))})"
                )
        self._listener_hooks.update(hooks)
        return self

    def on_view(self, hook: Callable[[int, View], None]) -> "Scenario":
        """Call ``hook(pid, view)`` whenever a consumer-equipped member's
        application sees a VIEW notification."""
        self._view_hooks.append(hook)
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def build(self) -> "LiveScenario":
        """Wire everything up without running; returns the live session."""
        return LiveScenario(self)

    def run(self, until: float, drain: bool = True) -> ScenarioResult:
        """Build, run until simulated time ``until``, and collect the result.

        ``until`` is mandatory: consumers, heartbeats and samplers re-arm
        themselves, so an unbounded run would never drain the event heap.
        """
        return self.build().run(until=until, drain=drain)


def _chain_listener(
    listeners: SVSListeners, attr: str, hook: Callable[..., None]
) -> None:
    """Add ``hook`` after whatever is already installed on ``attr``."""
    previous = getattr(listeners, attr)
    if previous is None:
        setattr(listeners, attr, hook)
        return

    def chained(*args: Any, _prev=previous, _hook=hook) -> None:
        _prev(*args)
        _hook(*args)

    setattr(listeners, attr, chained)


class LiveScenario:
    """A fully wired, not-yet-run scenario session.

    "Live" here means *live objects* — the wired ``stack``, ``sim``,
    ``endpoints`` (one per consumer-equipped pid) and ``consumers`` are
    exposed for imperative access between :meth:`Scenario.build` and
    :meth:`run` — not wall-clock execution.  Wall-clock (*live transport*)
    runs are requested with :meth:`Scenario.transport`; for those, this
    object additionally exposes ``clock`` (the
    :class:`~repro.transport.clock.WallClock` standing in for ``sim``),
    ``transport``, ``network`` and ``runtime`` (all ``None`` on simulated
    scenarios).
    """

    def __init__(self, spec: Scenario) -> None:
        self.spec = spec
        self._ran = False

        relation = self._resolve_relation_and_workload()
        config_kwargs = dict(spec._config_kwargs)
        if spec._latency_model is not None:
            config_kwargs["latency_model"] = spec._latency_model
            config_kwargs["latency_params"] = dict(spec._latency_params)
        try:
            config = StackConfig(
                n=spec._n,
                seed=spec._seed,
                consensus=spec._consensus,
                fd=spec._fd,
                **config_kwargs,
            )
        except TypeError as exc:
            raise ScenarioError(f"invalid group configuration: {exc}") from None
        self.clock = None
        self.transport = None
        self.network = None
        self.runtime = None
        if spec._transport is not None:
            if spec._latency_model is not None:
                raise ScenarioError(
                    "latency() models belong to the simulated network; in a "
                    "live run, link timing is the transport backend's "
                    "(e.g. transport('loopback', latency=..., jitter=...))"
                )
            from repro.transport import (
                LiveRuntime,
                TransportError,
                TransportNetwork,
                WallClock,
                transports,
            )

            backend, params = spec._transport
            self.clock = WallClock(seed=spec._seed)
            try:
                self.transport = transports.create(backend, self.clock, **params)
            except (TypeError, ValueError, TransportError) as exc:
                raise ScenarioError(
                    f"invalid transport configuration for {backend!r}: {exc}"
                ) from None
            self.clock.add_runner(self.transport)
            self.network = TransportNetwork(self.clock, self.transport)
            # No RunContext caching here: a live stack binds sockets and
            # timers to this one run, so nothing about it is reusable.
            self.stack = GroupStack(
                relation, config, sim=self.clock, network=self.network
            )
            self.runtime = LiveRuntime(
                self.stack, self.network, **spec._runtime_params
            )
            self.runtime.start()
        elif self._cacheable_relation is not None:
            # Registry-named relation + declarative config: reuse the
            # validated per-configuration RunContext (seeds vary per
            # replicate; the context does not).
            ctx = RunContext.cached(
                self._cacheable_relation, config, spec._relation_params
            )
            self.stack = GroupStack(context=ctx, seed=spec._seed)
        else:
            self.stack = GroupStack(relation, config)
        self.sim = self.stack.sim
        self._validate_pids()

        # Observation hooks first (so endpoints chain after them, exactly
        # as a hand-wired experiment would attach them).
        for attr, hook in spec._listener_hooks.items():
            for proc in self.stack.processes.values():
                _chain_listener(proc.listeners, attr, hook)
        self._offered = 0
        self._delivered: Dict[int, int] = {pid: 0 for pid in self.stack.members}
        self._installs: Dict[int, List[Tuple[int, float]]] = {
            pid: [] for pid in self.stack.members
        }
        for pid, proc in self.stack.processes.items():
            _chain_listener(proc.listeners, "on_multicast", self._count_multicast)
            _chain_listener(proc.listeners, "on_deliver", self._count_delivery)
            _chain_listener(proc.listeners, "on_install", self._note_install)

        # Consumers (and their endpoints), in pid order.
        rates: Dict[int, float] = {}
        for pids, rate in spec._consumer_specs:
            for pid in self.stack.members if pids is None else pids:
                rates[pid] = rate
        self.endpoints: Dict[int, GroupEndpoint] = {}
        self.consumers: Dict[int, RateLimitedConsumer] = {}
        for pid in self.stack.members:
            if pid not in rates:
                continue
            endpoint = GroupEndpoint(self.stack.processes[pid])
            self.endpoints[pid] = endpoint
            for hook in spec._view_hooks:
                self._chain_view_hook(endpoint, pid, hook)
            consumer = RateLimitedConsumer(self.sim, endpoint, rates[pid])
            consumer.start()
            self.consumers[pid] = consumer

        # Time-weighted queue occupancy, sampled periodically.
        self._occupancy: Dict[int, TimeWeightedStat] = {}
        if "queue_depth" in spec._metrics:
            self._occupancy = {
                pid: TimeWeightedStat() for pid in self.stack.members
            }
            self.sim.schedule(spec._sample_period, self._sample_queues)

        self._schedule_workload()
        for injection in spec._injections:
            self.sim.schedule_at(
                injection.at,
                self._multicast,
                injection.sender,
                injection.payload,
                injection.annotation,
            )
        if spec._drain_period is not None:
            self.sim.schedule(spec._drain_period, self._drain_tick)

        # Fault and membership schedules: the perturb/crash/recover/
        # view-change sugar and every .faults() plan are folded into one
        # FaultPlan and installed together.  A fresh plan is built per
        # LiveScenario so the same Scenario can be built repeatedly; the
        # event order below reproduces the legacy wiring byte-for-byte.
        events: List[FaultEvent] = [
            PerturbEvent(at=p.start, pid=pid, duration=p.duration)
            for pid, p in spec._perturbations
        ]
        events.extend(
            CrashEvent(at=at, pid=pid) for pid, at in spec._crashes
        )
        events.extend(spec._recovers)
        events.extend(
            ViewChangeEvent(at=at, pid=pid) for pid, at in spec._view_changes
        )
        for plan in spec._fault_plans:
            events.extend(plan.events)
        self.fault_plan = FaultPlan(events)
        try:
            self.fault_plan.install(self.stack, consumers=self.consumers)
        except FaultPlanError as exc:
            # One error contract for the whole builder surface.
            raise ScenarioError(str(exc)) from None

        # Custom traffic drivers run last, with everything else wired.
        for driver in spec._drivers:
            driver(self)

    # ------------------------------------------------------------------
    # Spec resolution and validation
    # ------------------------------------------------------------------

    def _resolve_relation_and_workload(self) -> ObsolescenceRelation:
        """Resolve the relation, pre-annotating the trace workload when a
        wire representation was requested (stashed in ``self._annotated``)."""
        spec = self.spec
        self._annotated = None
        self._cacheable_relation: Optional[str] = None
        relation = spec._relation
        workload = spec._trace_workload
        if workload is not None and workload.representation is not None:
            k = workload.k if workload.k is not None else 30
            self._annotated, encoder_relation = to_data_messages(
                workload.trace, representation=workload.representation, k=k
            )
            if not spec._relation_explicit:
                relation = encoder_relation
        if isinstance(relation, str):
            self._cacheable_relation = relation
            relation = relation_registry.create(relation, **spec._relation_params)
        return relation

    def _validate_pids(self) -> None:
        spec = self.spec
        members = set(self.stack.members)

        def need(pid: int, what: str) -> None:
            if pid not in members:
                raise ScenarioError(f"{what} names unknown process {pid}")

        for pids, _rate in spec._consumer_specs:
            for pid in pids or ():
                need(pid, "consumers()")
        for pid, _p in spec._perturbations:
            need(pid, "perturb()")
        for pid, _at in spec._crashes:
            need(pid, "crash()")
        for pid, _at in spec._view_changes:
            need(pid, "view_change()")
        for injection in spec._injections:
            need(injection.sender, "inject()")
        if spec._trace_workload is not None:
            need(spec._trace_workload.sender, "workload()")
        consumer_pids = set()
        for pids, _rate in spec._consumer_specs:
            consumer_pids.update(pids if pids is not None else members)
        for pid, _p in spec._perturbations:
            if pid not in consumer_pids:
                raise ScenarioError(
                    f"perturb(pid={pid}) requires a consumer on that process "
                    f"(perturbations stall the consumer)"
                )

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _chain_view_hook(
        self, endpoint: GroupEndpoint, pid: int, hook: Callable[[int, View], None]
    ) -> None:
        previous = endpoint.on_view

        def on_view(view: View) -> None:
            if previous is not None:
                previous(view)
            hook(pid, view)

        endpoint.on_view = on_view

    def _count_multicast(self, pid: int, msg: Any) -> None:
        self._offered += 1

    def _count_delivery(self, pid: int, entry: Any) -> None:
        self._delivered[pid] = self._delivered.get(pid, 0) + 1

    def _note_install(self, pid: int, view: View) -> None:
        self._installs.setdefault(pid, []).append((view.vid, self.sim.now))

    def _sample_queues(self) -> None:
        for pid, stat in self._occupancy.items():
            stat.update(self.sim.now, self.stack.processes[pid].pending)
        self.sim.schedule(self.spec._sample_period, self._sample_queues)

    def _multicast(self, sender: int, payload: Any, annotation: Any) -> None:
        self.stack.processes[sender].multicast(payload, annotation)

    def _drain_tick(self) -> None:
        for proc in self.stack:
            if not proc.crashed:
                proc.drain()
        self.sim.schedule(self.spec._drain_period, self._drain_tick)

    def _schedule_workload(self) -> None:
        workload = self.spec._trace_workload
        if workload is None:
            return
        producer = self.stack.processes[workload.sender]
        if self._annotated is not None:
            messages = self._annotated

            # Pre-encoded trace: replay payload + wire annotation verbatim.
            def unpack(msg):
                return msg.payload, msg.annotation, msg.payload.time

        else:
            messages = workload.trace.messages

            # Raw trace: item tags for obsolescible messages (pairs with an
            # item-tagging relation), never-obsolete otherwise.
            def unpack(msg):
                annotation = msg.item if msg.kind.obsolescible else None
                return msg, annotation, msg.time

        if not messages:
            return
        first = unpack(messages[0])[2]
        start = workload.start if workload.start is not None else first
        # ``start`` shifts the whole replay; inter-message gaps are kept by
        # offsetting every trace timestamp, not just the first.
        offset = start - first

        def inject(index: int) -> None:
            if index >= len(messages) or producer.crashed:
                return
            payload, annotation, _time = unpack(messages[index])
            producer.multicast(payload, annotation)
            if index + 1 < len(messages):
                _p, _a, next_time = unpack(messages[index + 1])
                self.sim.schedule(
                    max(0.0, next_time + offset - self.sim.now), inject, index + 1
                )

        self.sim.schedule_at(start, inject, 0)

    # ------------------------------------------------------------------
    # Execution and collection
    # ------------------------------------------------------------------

    def settle(self, quiet_time: float = 1.0, max_time: float = 120.0) -> None:
        """Run until the group goes quiet (see :meth:`GroupStack.settle`)."""
        if self.spec._transport is not None:
            raise ScenarioError(
                "settle() needs the resumable discrete-event kernel; a live "
                "transport run is one-shot — bound it with run(until=...)"
            )
        self.stack.settle(quiet_time=quiet_time, max_time=max_time)

    def run(self, until: float, drain: bool = True) -> ScenarioResult:
        """Run the simulation until simulated time ``until`` and collect
        the declared metrics.

        ``until`` is mandatory: consumers, heartbeats and samplers re-arm
        themselves, so an unbounded run would never drain the event heap.
        ``drain=True`` (default) delivers everything still queued at the
        end — through each endpoint (so application callbacks fire) or the
        raw process queue — before properties are checked.
        """
        if until is None:
            raise ScenarioError("run() needs an explicit `until` time")
        if self._ran:
            raise ScenarioError("scenario already ran; build a fresh one")
        self._ran = True
        self.sim.run(until=until)
        if drain:
            for pid in sorted(self.endpoints):
                if not self.stack.processes[pid].crashed:
                    self.endpoints[pid].poll_all()
            for pid, proc in sorted(self.stack.processes.items()):
                if pid not in self.endpoints and not proc.crashed:
                    proc.drain()
        duration = self.sim.now

        violations: Optional[List[str]] = None
        if self.spec._check and self.stack.recorder is not None:
            violations = check_all(
                self.stack.recorder,
                self.stack.relation,
                checks=self.spec._check_names,
            )
        want_histories = (
            self.spec._histories
            if self.spec._histories is not None
            else self.spec._check
        )
        histories = (
            serialize_histories(self.stack.recorder)
            if want_histories and self.stack.recorder is not None
            else {}
        )
        config = asdict(self.stack.config)
        config["seed"] = self.stack.seed  # context configs share a seed field
        config["relation"] = type(self.stack.relation).__name__
        return ScenarioResult(
            seed=self.stack.seed,
            n=self.stack.config.n,
            duration=duration,
            config=config,
            metrics=self._collect_metrics(duration),
            histories=histories,
            violations=violations,
        )

    def _collect_metrics(self, duration: float) -> Dict[str, Any]:
        metrics: Dict[str, Any] = {}
        for name in self.spec._metrics:
            if name == "throughput":
                metrics[name] = {
                    "offered": self._offered,
                    "delivered": {
                        str(pid): count
                        for pid, count in sorted(self._delivered.items())
                    },
                    "consumed": {
                        str(pid): consumer.consumed
                        for pid, consumer in sorted(self.consumers.items())
                    },
                    "rate": {
                        str(pid): (count / duration if duration > 0 else 0.0)
                        for pid, count in sorted(self._delivered.items())
                    },
                }
            elif name == "queue_depth":
                for stat in self._occupancy.values():
                    stat.finish(duration)
                metrics[name] = {
                    "mean": {
                        str(pid): stat.mean
                        for pid, stat in sorted(self._occupancy.items())
                    },
                    "max": {
                        str(pid): stat.maximum
                        for pid, stat in sorted(self._occupancy.items())
                    },
                    "sample_period": self.spec._sample_period,
                }
            elif name == "view_changes":
                metrics[name] = {
                    "count": {
                        str(pid): len(installs)
                        for pid, installs in sorted(self._installs.items())
                    },
                    "installs": {
                        str(pid): [[vid, time] for vid, time in installs]
                        for pid, installs in sorted(self._installs.items())
                    },
                }
            elif name == "purges":
                per_process = {
                    str(pid): proc.purge_count
                    for pid, proc in sorted(self.stack.processes.items())
                }
                metrics[name] = {
                    "per_process": per_process,
                    "total": sum(per_process.values()),
                }
            elif name == "network":
                metrics[name] = {
                    "sent": self.stack.network.messages_sent,
                    "delivered": self.stack.network.messages_delivered,
                    "dropped": self.stack.network.messages_dropped,
                    "duplicated": self.stack.network.messages_duplicated,
                    "reordered": self.stack.network.messages_reordered,
                }
        return metrics
