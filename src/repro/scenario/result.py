"""Structured results of a scenario run, with a stable JSON form.

:class:`ScenarioResult` is what :meth:`repro.scenario.Scenario.run` returns:
the run's configuration, every collected metric, the per-process delivery
histories (in a compact serializable shape) and the verdicts of the
executable specification.  ``to_json``/``from_json`` round-trip losslessly,
so results can be written next to ``BENCH_*.json`` artefacts and diffed
across runs.

Histories are serialized down to message *identities* (sender, sequence
number, view) rather than payloads — payloads may be arbitrary application
objects, and identity is exactly what determinism and the SVS properties
are stated over.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.core.message import ViewDelivery
from repro.core.spec import HistoryRecorder

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioResult",
    "serialize_entry",
    "serialize_histories",
]

SCHEMA_VERSION = 1


def serialize_entry(entry: Any) -> Dict[str, Any]:
    """One delivery-queue entry as a JSON-safe dict."""
    if isinstance(entry, ViewDelivery):
        return {
            "kind": "view",
            "vid": entry.view.vid,
            "members": sorted(entry.view.members),
        }
    return {
        "kind": "data",
        "sender": entry.mid.sender,
        "sn": entry.mid.sn,
        "view": entry.view_id,
    }


def serialize_histories(recorder: HistoryRecorder) -> Dict[str, List[Dict[str, Any]]]:
    """Every process's delivery history, keyed by stringified pid.

    Rejoined processes contribute one history per incarnation: retired
    (pre-rejoin) incarnations appear under ``"<pid>@<k>"`` where ``k``
    counts rejoins in order, the live incarnation under the bare pid.
    Runs without rejoins serialize exactly as before.
    """
    out = {
        str(pid): [serialize_entry(e) for e in history.events]
        for pid, history in sorted(recorder.histories.items())
    }
    rejoins: Dict[int, int] = {}
    for history in recorder.retired:
        index = rejoins.get(history.pid, 0)
        rejoins[history.pid] = index + 1
        out[f"{history.pid}@{index}"] = [
            serialize_entry(e) for e in history.events
        ]
    return out


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    ``metrics`` holds one entry per name passed to
    :meth:`~repro.scenario.Scenario.collect`; ``violations`` is ``None``
    when property checking was disabled, else the (hopefully empty) list of
    specification violations.
    """

    seed: int
    n: int
    duration: float
    config: Dict[str, Any]
    metrics: Dict[str, Any]
    histories: Dict[str, List[Dict[str, Any]]]
    violations: Optional[List[str]]
    schema_version: int = SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        """True when no specification violation was recorded."""
        return not self.violations

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ScenarioResult schema version: {version}"
            )
        return cls(
            seed=data["seed"],
            n=data["n"],
            duration=data["duration"],
            config=data["config"],
            metrics=data["metrics"],
            histories=data["histories"],
            violations=data["violations"],
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        return cls.from_dict(json.loads(text))

    @classmethod
    def read_json(cls, path: str) -> "ScenarioResult":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
