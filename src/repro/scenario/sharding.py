"""Opt-in per-group sharding over the sweep executor's worker seam.

The simulator models *one* group; capacity experiments often need many
independent groups (disjoint membership, no cross-group traffic — e.g.
10k processes as 10 shards of 1k).  Because such groups share nothing,
each shard can run as one sweep cell: the executor already provides the
picklable worker seam, deterministic per-cell seed derivation and
grid-order reassembly, so sharding inherits the sweep's guarantee that
``workers=0`` and ``workers=8`` produce byte-identical results.

Determinism rules (enforced by ``tests/scenario/test_sharding.py``):

* the scenario factory must be **module-level** (hence picklable) and
  build the shard's :class:`~repro.scenario.Scenario` purely from
  ``(shard_index, shard_seed)`` — no ambient state;
* shard seeds derive from ``(base_seed, {"shard": i})`` through the
  sweep's :func:`~repro.sweep.grid.derive_seed`, so adding shards never
  reseeds existing ones;
* the merged view is a pure fold over per-shard results in shard order.
  ``merged["totals"]`` sums every flattened scalar metric key-wise —
  meaningful for counters (messages sent, purge totals, delivery
  counts); read non-additive statistics (queue-depth means) from the
  per-shard results instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scenario.builder import Scenario
from repro.scenario.result import ScenarioResult
from repro.sweep.executor import flatten_metrics, run_sweep
from repro.sweep.grid import Sweep

__all__ = ["ShardedResult", "run_sharded"]

#: ``factory(shard_index, shard_seed) -> Scenario`` — module-level so the
#: multiprocessing pool can ship it to workers by reference.
ShardFactory = Callable[[int, int], Scenario]


@dataclass
class ShardedResult:
    """Per-shard scenario results plus the deterministic merged view."""

    shards: List[ScenarioResult]
    merged: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return all(shard.ok for shard in self.shards)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "merged": self.merged,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _shard_runner(params: Dict[str, Any], seed: int, context: Any) -> ScenarioResult:
    factory, until, drain = context
    spec = factory(params["shard"], seed)
    if not isinstance(spec, Scenario):
        raise TypeError(
            f"shard factory returned {type(spec).__name__}; expected Scenario"
        )
    return spec.run(until, drain=drain)


def _merge(shards: List[ScenarioResult]) -> Dict[str, Any]:
    totals: Dict[str, float] = {}
    for shard in shards:
        for key, value in flatten_metrics(shard.metrics).items():
            totals[key] = totals.get(key, 0.0) + value
    return {
        "shards": len(shards),
        "processes": sum(shard.n for shard in shards),
        "totals": {key: totals[key] for key in sorted(totals)},
    }


def run_sharded(
    factory: ShardFactory,
    shards: int,
    until: float,
    *,
    workers: Optional[int] = 0,
    base_seed: int = 0,
    drain: bool = True,
    on_violation: str = "raise",
    mp_context: Optional[str] = None,
) -> ShardedResult:
    """Run ``shards`` independent scenario groups, optionally in parallel.

    ``factory(shard_index, shard_seed)`` builds each shard's scenario;
    ``workers`` follows :func:`~repro.sweep.executor.run_sweep` (0/None/1
    serial in-process, >= 2 a multiprocessing pool).  The result carries
    the shards in shard order regardless of completion order.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1: {shards}")
    sweep = Sweep(seeds=1, base_seed=base_seed).axis("shard", list(range(shards)))
    result = run_sweep(
        sweep,
        _shard_runner,
        workers=workers,
        context=(factory, until, drain),
        on_violation=on_violation,
        keep_results=True,
        mp_context=mp_context,
    )
    ordered: List[Tuple[int, ScenarioResult]] = []
    for cell, cell_result in zip(sweep.cells(), result.cells):
        run = cell_result.runs[0]
        assert run.result is not None  # keep_results=True above
        ordered.append((cell["shard"], ScenarioResult.from_dict(run.result)))
    ordered.sort(key=lambda pair: pair[0])
    shard_results = [res for _, res in ordered]
    return ShardedResult(shards=shard_results, merged=_merge(shard_results))
