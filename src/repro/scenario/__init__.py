"""Declarative experiment sessions: the Scenario builder and its results.

This package is the user-facing surface for single runs (grids of runs
live in :mod:`repro.sweep`).  A :class:`Scenario` declares one cell of
the paper's evaluation matrix — group composition, latency model,
workload, consumption, faults, metrics — and ``run`` produces a
:class:`ScenarioResult` that archives losslessly as JSON::

    from repro.scenario import Scenario

    result = (
        Scenario()
        .group(n=5, relation="item-tagging", consensus="oracle")
        .latency("lognormal", mean=0.001)      # heavy-tailed links
        .workload("game", rounds=600)          # calibrated game trace
        .consumers(rate=120)                   # 120 msg/s per member
        .crash(pid=4, at=8.0)                  # crash-stop at t=8s
        .collect("throughput", "purges")
        .run(until=30.0)
    )
    assert result.ok                           # executable spec held
    print(result.metrics["purges"]["total"])
    result.write_json("run.json")              # lossless round trip

Results round-trip: ``ScenarioResult.from_dict(result.to_dict())``
reconstructs the run record, so sweeps and notebooks can archive and
diff runs as plain JSON.  For imperative access (custom callbacks,
mid-run triggers), :meth:`Scenario.build` returns the wired
:class:`LiveScenario` before anything runs::

    live = Scenario().group(n=4).consumers(rate=100).build()
    live.endpoints[1].on_data = lambda msg: print("got", msg.payload)
    result = live.run(until=10.0)

Every named component (relation, consensus, failure detector, latency
model, workload) resolves through :mod:`repro.registry`; repeated builds
of the same configuration share a validated
:class:`~repro.gcs.context.RunContext`, so sweep replicates skip
re-validation (see ``docs/kernel.md``).

See :mod:`repro.scenario.builder` for the full fluent API and
:mod:`repro.scenario.result` for the result schema.
"""

from repro.scenario.builder import (
    KNOWN_METRICS,
    LiveScenario,
    Scenario,
    ScenarioError,
)
from repro.scenario.result import (
    SCHEMA_VERSION,
    ScenarioResult,
    serialize_entry,
    serialize_histories,
)
from repro.scenario.sharding import ShardedResult, run_sharded

__all__ = [
    "Scenario",
    "LiveScenario",
    "ScenarioError",
    "ScenarioResult",
    "ShardedResult",
    "run_sharded",
    "KNOWN_METRICS",
    "SCHEMA_VERSION",
    "serialize_entry",
    "serialize_histories",
]
