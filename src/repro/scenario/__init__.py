"""Declarative experiment sessions: the Scenario builder and its results.

See :mod:`repro.scenario.builder` for the fluent API and
:mod:`repro.scenario.result` for the JSON-exportable result type.
"""

from repro.scenario.builder import (
    KNOWN_METRICS,
    LiveScenario,
    Scenario,
    ScenarioError,
)
from repro.scenario.result import (
    SCHEMA_VERSION,
    ScenarioResult,
    serialize_entry,
    serialize_histories,
)

__all__ = [
    "Scenario",
    "LiveScenario",
    "ScenarioError",
    "ScenarioResult",
    "KNOWN_METRICS",
    "SCHEMA_VERSION",
    "serialize_entry",
    "serialize_histories",
]
