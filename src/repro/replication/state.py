"""Replicated server state: a versioned collection of data items.

The paper's application model (Section 4): "all group members maintain a
collection of data items.  The values of these items are continuously
updated by one process upon handling requests from external client
processes and then disseminated to other members of the group."

:class:`ItemStore` is that collection.  Values carry the originating
sequence number so stores can be compared structurally: SVS guarantees that
at every view boundary all member stores are *equal* — every item holds the
newest disseminated value even though slower members may have skipped
intermediate values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["ItemValue", "ItemStore", "StoreOp", "apply_op"]


@dataclass(frozen=True)
class ItemValue:
    """A value plus the per-sender sequence number that produced it."""

    value: Any
    sn: int


@dataclass(frozen=True)
class StoreOp:
    """One state mutation disseminated through the group.

    ``kind`` is ``"set"``, ``"create"`` or ``"destroy"``.  Creations and
    destructions are never obsolete (the annotation layer enforces this);
    sets of the same item supersede each other.
    """

    kind: str
    item: int
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("set", "create", "destroy"):
            raise ValueError(f"unknown op kind: {self.kind!r}")


class ItemStore:
    """The replicated item collection."""

    def __init__(self) -> None:
        self._items: Dict[int, ItemValue] = {}
        self.ops_applied = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def get(self, item: int) -> Optional[Any]:
        entry = self._items.get(item)
        return entry.value if entry is not None else None

    def version(self, item: int) -> Optional[int]:
        entry = self._items.get(item)
        return entry.sn if entry is not None else None

    def items(self) -> List[Tuple[int, Any]]:
        # Item keys may be heterogeneous (ints, tuples); sort by repr so
        # ordering is total without requiring comparable keys.
        return sorted(
            ((k, v.value) for k, v in self._items.items()),
            key=lambda pair: repr(pair[0]),
        )

    def snapshot(self) -> Dict[int, ItemValue]:
        """An immutable-enough copy for later comparison."""
        return dict(self._items)

    def digest(self) -> Tuple[Tuple[int, Any], ...]:
        """Order-independent structural fingerprint of the store."""
        return tuple(self.items())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def apply(self, op: StoreOp, sn: int) -> None:
        """Apply one operation that arrived with sequence number ``sn``.

        FIFO delivery means sns arrive in increasing order per sender, so
        a plain overwrite implements last-writer-wins exactly.
        """
        self.ops_applied += 1
        if op.kind == "destroy":
            self._items.pop(op.item, None)
        else:
            self._items[op.item] = ItemValue(op.value, sn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemStore):
            return NotImplemented
        return self.digest() == other.digest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ItemStore({len(self._items)} items, {self.ops_applied} ops)"


def apply_op(store: ItemStore, op: StoreOp, sn: int) -> None:
    """Free-function form of :meth:`ItemStore.apply` (pipeline-friendly)."""
    store.apply(op, sn)
