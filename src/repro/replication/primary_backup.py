"""Primary-backup replication over Semantic View Synchrony.

"This behavior captures a fundamental issue in primary-backup replication,
where a primary server executes requests from clients and forwards state
updates to backup replicas.  The equivalence of state ensures that on
fail-over, any surviving replica can be selected for the role of the
primary." (Section 4)

:class:`ReplicatedServer` is one replica: it executes client requests when
it is the primary (the lowest pid of the current view, a deterministic
choice every member computes identically) and applies delivered updates
always — including its own, which arrive through the same delivery path as
everyone else's, keeping the replicas' code paths identical.

:class:`ReplicatedCluster` assembles n replicas over a
:class:`~repro.gcs.stack.GroupStack`, wires consumers and automatic
reconfiguration on suspicion, and exposes the state snapshots taken at
every view boundary — the observable on which the SVS consistency
guarantee is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.message import DataMessage, View
from repro.core.obsolescence import ItemTagging, ObsolescenceRelation
from repro.gcs.endpoint import GroupEndpoint, RateLimitedConsumer
from repro.gcs.stack import GroupStack, StackConfig
from repro.replication.state import ItemStore, StoreOp

__all__ = ["ReplicatedServer", "ReplicatedCluster"]


class ReplicatedServer:
    """One replica of the item-collection server."""

    def __init__(self, endpoint: GroupEndpoint) -> None:
        self.endpoint = endpoint
        self.store = ItemStore()
        self.view_snapshots: List[Tuple[int, Tuple]] = []
        """(view id, store digest) recorded at every view installation."""
        self.requests_executed = 0
        self.requests_refused = 0
        endpoint.on_data = self._on_data
        endpoint.on_view = self._on_view

    # ------------------------------------------------------------------
    # Role
    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self.endpoint.pid

    @property
    def is_primary(self) -> bool:
        """Primary = lowest pid of the current view (deterministic)."""
        members = self.endpoint.view.members
        return bool(members) and self.pid == min(members)

    # ------------------------------------------------------------------
    # Client-facing execution path (primary only)
    # ------------------------------------------------------------------

    def handle_request(self, op: StoreOp) -> bool:
        """Execute a client request: disseminate the resulting update.

        Only the primary executes requests; the state change is applied on
        *delivery* (like at every backup), not here, so all replicas share
        one code path.  Returns False when this replica is not the primary
        or is excluded — the client must retry against the new primary.
        """
        if not self.is_primary or self.endpoint.process.excluded:
            self.requests_refused += 1
            return False
        # Item tagging (Section 4.2): sets of the same item supersede each
        # other; creations and destructions are never obsolete.
        annotation = op.item if op.kind == "set" else None
        self.endpoint.multicast(payload=op, annotation=annotation)
        self.requests_executed += 1
        return True

    # ------------------------------------------------------------------
    # Delivery path (all replicas)
    # ------------------------------------------------------------------

    def _on_data(self, msg: DataMessage) -> None:
        op = msg.payload
        if not isinstance(op, StoreOp):
            raise TypeError(f"unexpected replicated payload: {op!r}")
        self.store.apply(op, msg.sn)

    def _on_view(self, view: View) -> None:
        self.view_snapshots.append((view.vid, self.store.digest()))


class ReplicatedCluster:
    """n replicas over one group stack, with consumers and auto-failover."""

    def __init__(
        self,
        n: int = 3,
        relation: Optional[Union[str, ObsolescenceRelation]] = None,
        config: Optional[StackConfig] = None,
        consumer_rates: Optional[Dict[int, float]] = None,
        default_rate: float = 10_000.0,
        auto_reconfigure: bool = True,
    ) -> None:
        # ``relation`` accepts a registry name ("item-tagging", ...) or an
        # instance; GroupStack resolves names through repro.registry.
        self.stack = GroupStack(
            relation or ItemTagging(), config or StackConfig(n=n)
        )
        self.servers: Dict[int, ReplicatedServer] = {}
        self.consumers: Dict[int, RateLimitedConsumer] = {}
        rates = consumer_rates or {}
        for pid, proc in self.stack.processes.items():
            endpoint = GroupEndpoint(proc)
            server = ReplicatedServer(endpoint)
            self.servers[pid] = server
            consumer = RateLimitedConsumer(
                self.stack.sim, endpoint, rates.get(pid, default_rate)
            )
            consumer.start()
            self.consumers[pid] = consumer

        if auto_reconfigure:
            self._install_auto_reconfigure()

    def _install_auto_reconfigure(self) -> None:
        """Any live member that suspects a peer triggers a view change."""

        def on_suspicion(suspect: int, suspected: bool) -> None:
            if not suspected:
                return
            for proc in self.stack.processes.values():
                if not proc.crashed and not proc.excluded and not proc.blocked:
                    proc.trigger_view_change()
                    return

        seen = set()
        for proc in self.stack.processes.values():
            if id(proc.fd) not in seen:
                seen.add(id(proc.fd))
                proc.fd.subscribe(on_suspicion)

    # ------------------------------------------------------------------
    # Cluster-level operations
    # ------------------------------------------------------------------

    @property
    def sim(self):
        return self.stack.sim

    def primary(self) -> Optional[ReplicatedServer]:
        """The current primary among live, non-excluded replicas."""
        candidates = [
            s
            for s in self.servers.values()
            if not s.endpoint.process.crashed and not s.endpoint.process.excluded
        ]
        primaries = [s for s in candidates if s.is_primary]
        return primaries[0] if primaries else None

    def submit(self, op: StoreOp) -> bool:
        """Submit a client request to the current primary (no retry)."""
        primary = self.primary()
        if primary is None:
            return False
        return primary.handle_request(op)

    def crash_primary(self) -> Optional[int]:
        primary = self.primary()
        if primary is None:
            return None
        self.stack.crash(primary.pid)
        return primary.pid

    def run(self, until: float) -> None:
        self.stack.run(until=until)

    def live_servers(self) -> List[ReplicatedServer]:
        return [
            s
            for s in self.servers.values()
            if not s.endpoint.process.crashed and not s.endpoint.process.excluded
        ]

    def snapshots_by_view(self) -> Dict[int, Dict[int, Tuple]]:
        """view id -> {pid -> digest} across all replicas.

        The SVS consistency claim: for every view id, all digests agree.
        """
        out: Dict[int, Dict[int, Tuple]] = {}
        for pid, server in self.servers.items():
            for vid, digest in server.view_snapshots:
                out.setdefault(vid, {})[pid] = digest
        return out
