"""Primary-backup replication over SVS."""

from repro.replication.primary_backup import ReplicatedCluster, ReplicatedServer
from repro.replication.state import ItemStore, ItemValue, StoreOp, apply_op

__all__ = [
    "ItemStore",
    "ItemValue",
    "StoreOp",
    "apply_op",
    "ReplicatedServer",
    "ReplicatedCluster",
]
