"""Declarative parameter grids over experiment cells.

A :class:`Sweep` is the cartesian product of named axes laid over a dict of
fixed base parameters — the shape behind every figure of the paper's
evaluation (load × latency × buffer-size grids).  It owns nothing about
*how* a cell runs; it enumerates cells in a deterministic order and derives
one deterministic seed per (cell, replicate) pair, so the same sweep
produces byte-identical results whether executed serially or farmed out to
a process pool (see :mod:`repro.sweep.executor`).

Axis names may be dotted paths (``"latency_params.mean"``): the path is
expanded into nested dicts when the cell parameters are materialised, which
makes any nested builder parameter sweepable without special cases.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Sweep", "SweepError", "canonical_params", "derive_seed"]


class SweepError(ValueError):
    """An inconsistent or invalid sweep specification."""


def canonical_params(params: Mapping[str, Any]) -> str:
    """A canonical JSON encoding of cell parameters.

    Stable across processes, platforms and axis declaration order — the
    substrate of :func:`derive_seed` and of cell identity in results.
    Values must be JSON-encodable; anything else (objects, traces) belongs
    in the executor's ``context``, not in the grid.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SweepError(
            f"cell parameters must be JSON-encodable for deterministic "
            f"seed derivation (pass runtime objects via context=): {exc}"
        ) from None


def derive_seed(base_seed: int, params: Mapping[str, Any], replicate: int) -> int:
    """Deterministic per-run seed from (base seed, cell identity, replicate).

    Hash-based rather than counter-based so the seed of a cell does not
    depend on its position in the grid: adding an axis value or reordering
    axes never silently reseeds unrelated cells.
    """
    material = f"{base_seed}|{canonical_params(params)}|{replicate}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def _deep_set(target: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``a.b.c`` into nested dicts, copying intermediate levels so the
    base mapping shared across cells is never mutated."""
    keys = path.split(".")
    for key in keys[:-1]:
        existing = target.get(key)
        if existing is None:
            existing = {}
        elif isinstance(existing, dict):
            existing = dict(existing)
        else:
            raise SweepError(
                f"axis {path!r} descends through non-dict parameter {key!r}"
            )
        target[key] = existing
        target = existing
    target[keys[-1]] = value


class Sweep:
    """A grid of experiment cells: fixed ``base`` parameters × named axes.

    ::

        sweep = (
            Sweep(base={"buffer_size": 15}, seeds=3)
            .axis("consumer_rate", [20, 40, 80])
            .axis("semantic", [False, True])
        )
        result = sweep.run(cell_fn, workers=4, context=trace)

    ``seeds`` is the number of replicates per cell; each replicate receives
    its own seed from :func:`derive_seed`.  Cells are enumerated in the
    cartesian-product order of axis declaration.
    """

    def __init__(
        self,
        base: Optional[Mapping[str, Any]] = None,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        seeds: int = 1,
        base_seed: int = 0,
    ) -> None:
        if seeds < 1:
            raise SweepError(f"seeds must be at least 1: {seeds}")
        self.base: Dict[str, Any] = dict(base or {})
        self.seeds = seeds
        self.base_seed = base_seed
        self.axes: Dict[str, List[Any]] = {}
        for name, values in (axes or {}).items():
            self.axis(name, values)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def axis(self, name: str, values: Iterable[Any]) -> "Sweep":
        """Add an axis; ``name`` may be a dotted path into nested params."""
        if not name or not isinstance(name, str):
            raise SweepError(f"invalid axis name: {name!r}")
        if name in self.axes:
            raise SweepError(f"duplicate axis: {name!r}")
        materialised = list(values)
        if not materialised:
            raise SweepError(f"axis {name!r} has no values")
        canonical_params({"values": materialised})  # fail fast on objects
        self.axes[name] = materialised
        return self

    def fixed(self, **params: Any) -> "Sweep":
        """Merge fixed parameters shared by every cell."""
        self.base.update(params)
        return self

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    @property
    def n_runs(self) -> int:
        return self.n_cells * self.seeds

    def cells(self) -> List[Dict[str, Any]]:
        """Every cell's materialised parameters, in deterministic order.

        Dotted axis names are expanded into nested dicts here; plain names
        simply override base keys.
        """
        names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        out: List[Dict[str, Any]] = []
        for combo in combos:
            params = dict(self.base)
            for name, value in zip(names, combo):
                if "." in name:
                    _deep_set(params, name, value)
                else:
                    params[name] = value
            out.append(params)
        return out

    def coordinates(self) -> List[Dict[str, Any]]:
        """Axis values only (no base merge), one dict per cell — the
        cell's position in the grid, aligned with :meth:`cells`."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[name] for name in names))
        ]

    def seeds_for(self, params: Mapping[str, Any]) -> List[int]:
        """The replicate seeds of one cell."""
        return [
            derive_seed(self.base_seed, params, replicate)
            for replicate in range(self.seeds)
        ]

    def dirty_cells(self, cache, runner, context=None):
        """Partition the grid into (cached, dirty) cell-parameter lists.

        A cell is *cached* when every one of its replicates has a valid
        shard in ``cache`` (a :class:`~repro.sweep.cache.SweepCache` or a
        directory path) under the current code fingerprint, ``runner``
        and ``context``; otherwise it is *dirty* and a
        :func:`~repro.sweep.executor.run_sweep` call would recompute at
        least one of its replicates.  Probing does not perturb the
        cache's hit/miss counters.
        """
        from repro.sweep.cache import SweepCache, context_token

        if not isinstance(cache, SweepCache):
            cache = SweepCache(cache)
        ctx_tok = context_token(context)
        cached: List[Dict[str, Any]] = []
        dirty: List[Dict[str, Any]] = []
        for params in self.cells():
            complete = all(
                cache.contains(runner, params, replicate, seed, ctx_tok)
                for replicate, seed in enumerate(self.seeds_for(params))
            )
            (cached if complete else dirty).append(params)
        return cached, dirty

    # ------------------------------------------------------------------
    # Execution (delegates to the executor module)
    # ------------------------------------------------------------------

    def run(self, runner, **kwargs):
        """Execute every (cell, replicate) with ``runner`` and aggregate.

        See :func:`repro.sweep.executor.run_sweep` for the keyword options
        (``workers``, ``context``, ``on_violation``, ``keep_results``,
        ``progress``, ``mp_context``, ``cache``, ``chunksize``,
        ``dispatch``, ``dispatch_params``).
        """
        from repro.sweep.executor import run_sweep

        return run_sweep(self, runner, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        axes = ", ".join(f"{k}×{len(v)}" for k, v in self.axes.items())
        return (
            f"Sweep({axes or 'no axes'}, seeds={self.seeds}, "
            f"cells={self.n_cells})"
        )
