"""Reference cell runners: the runner contract, executable.

Dispatch workers re-import runners by dotted path, so anything a test or
benchmark fans out over the ``subprocess``/``ssh`` backends must live at
module level in an importable module.  These runners are that module —
small, deterministic probes used by the dispatch test-suite and
benchmarks, and the shortest worked examples of the contract
(``runner(params, seed, context) -> mapping of metrics``):

* :func:`arithmetic_cell` — a pure seeded computation; the minimal cell.
* :func:`sleepy_cell` — the same, after an optional per-cell sleep;
  makes stragglers on demand.
* :func:`failing_cell` — raises on a designated cell; exercises
  error-frame propagation.
* :func:`flaky_worker_cell` — kills its own worker process (once, on a
  designated cell, only when running inside a dispatch worker); the
  crash-recovery probe.  Serial runs are unaffected, so its output
  remains comparable across every execution path.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "arithmetic_cell",
    "sleepy_cell",
    "failing_cell",
    "flaky_worker_cell",
]


def _mix(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """A deterministic scalar digest of (params, seed) — fake 'metrics'."""
    digest = hashlib.sha256()
    for key in sorted(params):
        digest.update(f"{key}={params[key]!r}|".encode())
    digest.update(str(seed).encode())
    word = int.from_bytes(digest.digest()[:8], "big")
    return {
        "value": (word % 10_000) / 100.0,
        "seed_echo": float(seed % 1_000_000),
    }


def arithmetic_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """Pure math: metrics are a hash of the cell identity (plus context)."""
    out = _mix(params, seed)
    if isinstance(context, Mapping) and "offset" in context:
        out["value"] += float(context["offset"])
    return out


def sleepy_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """:func:`arithmetic_cell` after sleeping ``params["sleep_s"]`` seconds.

    Give one cell a large ``sleep_s`` and the rest zero to manufacture a
    straggler; the dedup contract holds because the metrics only depend
    on (params, seed).
    """
    delay = float(params.get("sleep_s") or 0.0)
    if delay > 0:
        time.sleep(delay)
    return _mix(params, seed)


def failing_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """Raise ``ValueError`` when ``params["x"] == params["fail_at"]``."""
    if params.get("x") == params.get("fail_at"):
        raise ValueError(f"designated failure at x={params.get('x')}")
    return _mix(params, seed)


def _marker(params: Mapping[str, Any]) -> Optional[str]:
    marker = params.get("marker")
    return str(marker) if marker else None


def flaky_worker_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """Kill the hosting worker process on the designated victim cell.

    Fires only when (a) this process is a dispatch worker
    (``REPRO_SWEEP_WORKER`` is set — see :mod:`repro.sweep.worker`),
    (b) ``params["x"] == params["victim"]``, and (c) the ``marker`` file
    does not exist yet.  The marker is created with ``O_EXCL`` so exactly
    one process dies even if the cell is speculatively re-issued; the
    re-run then computes normally and the sweep output stays identical to
    a serial run.
    """
    marker = _marker(params)
    if (
        marker is not None
        and params.get("x") == params.get("victim")
        and os.environ.get("REPRO_SWEEP_WORKER")
    ):
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(17)
    return _mix(params, seed)
