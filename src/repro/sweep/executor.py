"""Cell execution: serial or multiprocess, always deterministic.

The executor turns a :class:`~repro.sweep.grid.Sweep` into a
:class:`~repro.sweep.result.SweepResult` by applying a **runner** to every
(cell, replicate) pair:

``runner(params, seed, context) -> Mapping | ScenarioResult``
    A module-level (hence picklable) callable.  ``params`` is the cell's
    materialised parameter dict, ``seed`` the deterministically derived
    replicate seed, ``context`` an arbitrary picklable object shared by
    every cell (a pre-generated trace, typically) — shipped to each worker
    once, not per cell.

Runners may return a :class:`~repro.scenario.result.ScenarioResult` (its
scalar metrics are flattened, its ``violations`` — the verdicts of
:func:`repro.core.spec.check_all` — travel with the cell) or any mapping of
metric values (an optional ``"violations"`` key is treated the same way).
Every cell is therefore invariant-checked *as it runs*; by default the
first violated cell aborts the sweep with :class:`SweepInvariantError`
(``on_violation="collect"`` records verdicts instead, for fuzzing).

Determinism does not depend on scheduling: seeds are derived from cell
identity, results are reassembled in grid order, and the serial and
multiprocess paths share the same per-cell code, so ``workers=0`` and
``workers=8`` produce byte-identical aggregated JSON.
"""

from __future__ import annotations

import json
import pathlib
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.scenario.result import ScenarioResult
from repro.sweep.cache import SweepCache, context_token
from repro.sweep.grid import Sweep, SweepError
from repro.sweep.result import CellResult, CellRun, SweepResult

__all__ = [
    "run_sweep",
    "flatten_metrics",
    "SweepCellError",
    "SweepInvariantError",
]


class SweepCellError(RuntimeError):
    """A cell runner raised; carries the cell coordinates and traceback.

    The message embeds the failing cell as a JSON dict (plus replicate and
    seed) so a pooled run's failure is reproducible from the error text
    alone — worker exceptions used to surface as a bare pool traceback
    with no indication of *which* of thousands of cells died.  The
    structured fields survive the pool's pickling round trip.
    """

    def __init__(
        self,
        message: str,
        params: Optional[Dict[str, Any]] = None,
        replicate: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.params = params
        self.replicate = replicate
        self.seed = seed

    def __reduce__(self):
        # RuntimeError's default reduce drops keyword state; keep the cell
        # coordinates intact across the multiprocessing boundary.
        return (
            self.__class__,
            (self.args[0], self.params, self.replicate, self.seed),
        )


class SweepInvariantError(RuntimeError):
    """A cell violated the executable specification."""

    def __init__(self, params: Mapping[str, Any], seed: int, violations: List[str]):
        self.params = dict(params)
        self.seed = seed
        self.violations = list(violations)
        preview = "; ".join(violations[:3])
        more = f" (+{len(violations) - 3} more)" if len(violations) > 3 else ""
        super().__init__(
            f"invariants violated in cell {self.params!r} (seed {seed}): "
            f"{preview}{more}"
        )


def flatten_metrics(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested metric mappings to dotted scalar columns.

    ``{"throughput": {"delivered": {"0": 7}}}`` becomes
    ``{"throughput.delivered.0": 7.0}``; non-numeric leaves (lists of
    install events, strings) are skipped — they stay available through
    ``keep_results=True``.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            out.update(flatten_metrics(value, f"{prefix}{key}."))
    elif isinstance(obj, bool):
        out[prefix[:-1]] = float(obj)
    elif isinstance(obj, (int, float)):
        out[prefix[:-1]] = float(obj)
    return out


def _normalise(
    out: Any, params: Mapping[str, Any], keep_results: bool
) -> Tuple[Dict[str, float], List[str], Optional[Dict[str, Any]]]:
    """(metrics, violations, full-result dict) from a runner's output."""
    if isinstance(out, ScenarioResult):
        metrics = {"duration": float(out.duration)}
        metrics.update(flatten_metrics(out.metrics))
        violations = list(out.violations or [])
        return metrics, violations, (out.to_dict() if keep_results else None)
    if isinstance(out, Mapping):
        violations = list(out.get("violations") or [])
        metrics = flatten_metrics(
            {k: v for k, v in out.items() if k != "violations"}
        )
        return metrics, violations, (dict(out) if keep_results else None)
    raise SweepCellError(
        f"cell {dict(params)!r} returned {type(out).__name__}; runners must "
        f"return a ScenarioResult or a mapping of metrics"
    )


# ----------------------------------------------------------------------
# Per-run execution, shared verbatim by the serial and pooled paths.
# ----------------------------------------------------------------------

#: One unit of work: (flat index, cell index, params, replicate, seed).
_Task = Tuple[int, int, Dict[str, Any], int, int]

# Worker-process state, installed once per worker by the pool initializer
# so heavyweight context objects are pickled per worker, not per cell.
_worker_state: Dict[str, Any] = {}


def _execute(
    runner: Callable[..., Any],
    context: Any,
    task: _Task,
    keep_results: bool,
) -> Tuple[int, int, CellRun]:
    index, cell_index, params, replicate, seed = task
    try:
        out = runner(params, seed, context)
    except SweepCellError:
        raise
    except Exception as exc:
        # Cell params came through the grid, so they are JSON-encodable by
        # construction — embed them verbatim for copy-paste reproduction.
        cell_json = json.dumps(params, sort_keys=True, default=repr)
        raise SweepCellError(
            f"sweep cell failed: {type(exc).__name__}: {exc}\n"
            f"  cell: {cell_json}\n"
            f"  replicate: {replicate}\n"
            f"  seed: {seed}\n"
            f"{traceback.format_exc()}",
            params=dict(params),
            replicate=replicate,
            seed=seed,
        ) from exc
    metrics, violations, full = _normalise(out, params, keep_results)
    run = CellRun(
        replicate=replicate,
        seed=seed,
        metrics=metrics,
        violations=violations,
        result=full,
    )
    return index, cell_index, run


def _prepare_context(context: Any) -> None:
    """Run the shared context's per-worker hook, if it declares one.

    A ``context`` with a callable ``prepare_worker`` attribute (e.g. an
    object wrapping a :class:`~repro.gcs.context.RunContext`) is invoked
    exactly once per worker process (and once for a serial run) — the
    place to warm caches or pre-validate configuration so the per-cell
    path never repeats that work.
    """
    hook = getattr(context, "prepare_worker", None)
    if callable(hook):
        hook()


def _init_worker(runner: Callable[..., Any], context: Any, keep_results: bool) -> None:
    _worker_state["runner"] = runner
    _worker_state["context"] = context
    _worker_state["keep_results"] = keep_results
    _prepare_context(context)


def _run_task(task: _Task) -> Tuple[int, int, CellRun]:
    return _execute(
        _worker_state["runner"],
        _worker_state["context"],
        task,
        _worker_state["keep_results"],
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_sweep(
    sweep: Sweep,
    runner: Callable[..., Any],
    workers: Optional[int] = 0,
    context: Any = None,
    on_violation: str = "raise",
    keep_results: bool = False,
    progress: Optional[Callable[[int, int, CellRun], None]] = None,
    mp_context: Optional[str] = None,
    cache: Optional[Union[str, pathlib.Path, SweepCache]] = None,
    chunksize: Union[int, str, None] = None,
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Execute every (cell, replicate) of ``sweep`` with ``runner``.

    ``workers=0``/``None``/``1`` runs serially in-process; ``workers>=2``
    fans cells out to the ``local-pool`` dispatch backend — a
    :mod:`multiprocessing` pool (``mp_context`` picks the start method;
    the platform default otherwise) whose ``chunksize`` adapts to the
    task count unless pinned here.  ``progress`` is called in the parent
    as ``progress(done, total, run)`` after every completed replicate.

    ``dispatch`` selects any registered dispatch backend by name (or
    takes a :class:`~repro.sweep.dispatch.DispatchBackend` instance):
    ``"local-pool"``, ``"subprocess"`` (worker OS processes speaking the
    :mod:`repro.sweep.worker` frame protocol over pipes), or ``"ssh"``
    (the same protocol over ssh; hosts via ``dispatch_params``).  All
    backends produce byte-identical aggregated JSON — scheduling never
    leaks into results.  ``dispatch_params`` is passed to the backend
    factory.  Framed backends re-import the runner by dotted path, so it
    must be module-level, and ship the context as a portable spec (see
    :func:`repro.sweep.dispatch.context_spec`).

    ``on_violation`` is the invariant policy: ``"raise"`` aborts on the
    first cell whose run violated the executable specification,
    ``"collect"`` records violations on the result (``SweepResult.ok``
    turns False).

    ``cache`` — a :class:`~repro.sweep.cache.SweepCache` or a directory
    path — memoises every (cell, replicate) by content address: runs
    found in the cache are recorded without computing (they still count
    toward ``progress`` and still trigger ``on_violation``), fresh runs
    are written back.  Both executors share one cache layout, so a
    serial run warms a later pooled run and vice versa, and the merged
    :class:`SweepResult` is byte-identical either way.
    """
    if on_violation not in ("raise", "collect"):
        raise SweepError(
            f"on_violation must be 'raise' or 'collect': {on_violation!r}"
        )
    if cache is not None and not isinstance(cache, SweepCache):
        cache = SweepCache(cache)
    cells = sweep.cells()
    tasks: List[_Task] = []
    for cell_index, params in enumerate(cells):
        for replicate, seed in enumerate(sweep.seeds_for(params)):
            tasks.append((len(tasks), cell_index, params, replicate, seed))

    runs: List[Optional[Tuple[int, CellRun]]] = [None] * len(tasks)
    done = 0

    def record(index: int, cell_index: int, run: CellRun) -> None:
        nonlocal done
        if on_violation == "raise" and run.violations:
            raise SweepInvariantError(
                cells[cell_index], run.seed, run.violations
            )
        runs[index] = (cell_index, run)
        done += 1
        if progress is not None:
            progress(done, len(tasks), run)

    try:
        pending = tasks
        ctx_tok = ""
        if cache is not None:
            # Hits are recorded up front (cache lookups are parent-side for
            # both executors — workers never touch the disk store); only the
            # misses are computed below.
            ctx_tok = context_token(context)
            pending = []
            for task in tasks:
                index, cell_index, params, replicate, seed = task
                run = cache.lookup(runner, params, replicate, seed, ctx_tok)
                if run is not None:
                    record(index, cell_index, run)
                else:
                    pending.append(task)

        def completed(index: int, cell_index: int, run: CellRun) -> None:
            if cache is not None:
                _i, _c, params, replicate, seed = tasks[index]
                # store() canonicalises the run through the shard's JSON
                # encoding, so what we record now is byte-for-byte what a
                # warm run will load.
                run = cache.store(runner, params, replicate, seed, run, ctx_tok)
            record(index, cell_index, run)

        backend = None
        if dispatch is not None:
            from repro.sweep.dispatch import resolve_backend

            backend = resolve_backend(
                dispatch,
                workers=workers if workers else None,
                mp_context=mp_context,
                chunksize=chunksize,
                params=dispatch_params,
            )
        elif workers is not None and workers > 1:
            from repro.sweep.dispatch import LocalPoolDispatch

            backend = LocalPoolDispatch(
                workers=workers, mp_context=mp_context, chunksize=chunksize
            )
        elif dispatch_params:
            raise SweepError("dispatch_params requires dispatch=<backend>")

        if backend is None:
            _prepare_context(context)
            for task in pending:
                index, cell_index, run = _execute(
                    runner, context, task, keep_results
                )
                completed(index, cell_index, run)
        elif pending:
            from repro.sweep.dispatch import DispatchJob, record_dispatch

            backend.execute(
                DispatchJob(
                    tasks=list(pending),
                    runner=runner,
                    context=context,
                    keep_results=keep_results,
                    emit=completed,
                )
            )
            if cache is not None and backend.stats is not None:
                entry = backend.stats.to_dict()
                entry["cells_total"] = len(tasks)
                entry["cells_cached"] = len(tasks) - len(pending)
                record_dispatch(cache.path, entry)
    finally:
        if cache is not None:
            cache.flush_stats()

    grouped: List[List[CellRun]] = [[] for _ in cells]
    for entry in runs:
        assert entry is not None  # every task either recorded or raised
        cell_index, run = entry
        grouped[cell_index].append(run)
    for cell_runs in grouped:
        cell_runs.sort(key=lambda run: run.replicate)

    return SweepResult(
        base=dict(sweep.base),
        axes={name: list(values) for name, values in sweep.axes.items()},
        seeds=sweep.seeds,
        base_seed=sweep.base_seed,
        cells=[
            CellResult(params=params, runs=cell_runs)
            for params, cell_runs in zip(cells, grouped)
        ],
    )
