"""Aggregated sweep results with a stable JSON form.

:class:`SweepResult` mirrors :class:`~repro.scenario.result.ScenarioResult`
one level up: where a scenario result captures one run, a sweep result
captures a whole grid — per-cell parameter coordinates, every replicate's
flattened scalar metrics (plus any invariant violations), and mean /
standard deviation / 95 % confidence interval per metric.  ``to_json`` /
``from_json`` round-trip losslessly so sweeps can be archived next to
``BENCH_*.json`` artefacts and diffed across refactors.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "CellRun",
    "CellResult",
    "SweepResult",
    "MetricStats",
    "summarise",
]

SCHEMA_VERSION = 1


@dataclass
class MetricStats:
    """Mean/CI summary of one metric across a cell's replicates."""

    mean: float
    std: float
    ci95: float
    n: int
    min: float
    max: float


def summarise(values: List[float]) -> MetricStats:
    """Sample statistics with a normal-approximation 95 % interval."""
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
        ci95 = 1.96 * std / math.sqrt(n)
    else:
        std = 0.0
        ci95 = 0.0
    return MetricStats(
        mean=mean, std=std, ci95=ci95, n=n, min=min(values), max=max(values)
    )


_MISSING = object()


def _lookup(params: Mapping[str, Any], key: str) -> Any:
    """A parameter by flat key, falling back to dotted-path descent."""
    if key in params:
        return params[key]
    current: Any = params
    for part in key.split("."):
        if not isinstance(current, Mapping) or part not in current:
            return _MISSING
        current = current[part]
    return current


@dataclass
class CellRun:
    """One replicate of one cell."""

    replicate: int
    seed: int
    metrics: Dict[str, float]
    violations: List[str] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    """Full result payload (e.g. a ScenarioResult dict) when the sweep ran
    with ``keep_results=True``; None otherwise."""

    def to_dict(self) -> Dict[str, Any]:
        """The run as a JSON-encodable dict — the shard payload format of
        :mod:`repro.sweep.cache` and the per-run shape inside
        :meth:`SweepResult.to_dict`."""
        return {
            "replicate": self.replicate,
            "seed": self.seed,
            "metrics": self.metrics,
            "violations": self.violations,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellRun":
        return cls(
            replicate=data["replicate"],
            seed=data["seed"],
            metrics=data["metrics"],
            violations=data.get("violations", []),
            result=data.get("result"),
        )


@dataclass
class CellResult:
    """One grid cell: parameters plus every replicate run."""

    params: Dict[str, Any]
    runs: List[CellRun]

    @property
    def ok(self) -> bool:
        return not any(run.violations for run in self.runs)

    @property
    def violations(self) -> List[str]:
        return [v for run in self.runs for v in run.violations]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for run in self.runs:
            for name in run.metrics:
                if name not in names:
                    names.append(name)
        return names

    def stats(self, metric: str) -> MetricStats:
        values = [
            run.metrics[metric] for run in self.runs if metric in run.metrics
        ]
        if not values:
            known = ", ".join(self.metric_names()) or "<none>"
            raise KeyError(f"no metric {metric!r} in cell (known: {known})")
        return summarise(values)

    def value(self, metric: str) -> float:
        """Mean of ``metric`` across replicates."""
        return self.stats(metric).mean

    def matches(self, coords: Mapping[str, Any]) -> bool:
        """True when every coordinate equals the cell's parameter.

        Dotted coordinates descend into nested parameters, mirroring how
        dotted axes are expanded by the grid: a cell swept with
        ``axis("latency_params.mean", ...)`` is addressed as
        ``select(**{"latency_params.mean": 0.002})``.
        """
        return all(
            _lookup(self.params, key) == value for key, value in coords.items()
        )


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    base: Dict[str, Any]
    axes: Dict[str, List[Any]]
    seeds: int
    base_seed: int
    cells: List[CellResult]
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when no replicate of any cell recorded a violation."""
        return all(cell.ok for cell in self.cells)

    @property
    def violations(self) -> List[str]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def n_runs(self) -> int:
        return sum(len(cell.runs) for cell in self.cells)

    def select(self, **coords: Any) -> CellResult:
        """The unique cell whose parameters match every given coordinate."""
        matching = [cell for cell in self.cells if cell.matches(coords)]
        if not matching:
            raise KeyError(f"no cell matches {coords!r}")
        if len(matching) > 1:
            raise KeyError(
                f"{len(matching)} cells match {coords!r}; add coordinates"
            )
        return matching[0]

    def column(self, metric: str, **coords: Any) -> List[Any]:
        """``(params, mean)`` pairs of one metric over matching cells."""
        return [
            (cell.params, cell.value(metric))
            for cell in self.cells
            if cell.matches(coords)
        ]

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        for cell, raw in zip(self.cells, data["cells"]):
            raw["stats"] = {
                name: asdict(cell.stats(name)) for name in cell.metric_names()
            }
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported SweepResult schema version: {version}")
        cells = [
            CellResult(
                params=raw["params"],
                runs=[CellRun.from_dict(run) for run in raw["runs"]],
            )
            for raw in data["cells"]
        ]
        return cls(
            base=data["base"],
            axes=data["axes"],
            seeds=data["seeds"],
            base_seed=data["base_seed"],
            cells=cells,
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    @classmethod
    def read_json(cls, path: str) -> "SweepResult":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
