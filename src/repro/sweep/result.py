"""Aggregated sweep results with a stable JSON form.

:class:`SweepResult` mirrors :class:`~repro.scenario.result.ScenarioResult`
one level up: where a scenario result captures one run, a sweep result
captures a whole grid — per-cell parameter coordinates, every replicate's
flattened scalar metrics (plus any invariant violations), and mean /
standard deviation / 95 % confidence interval per metric.  ``to_json`` /
``from_json`` round-trip losslessly so sweeps can be archived next to
``BENCH_*.json`` artefacts and diffed across refactors.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "CellRun",
    "CellResult",
    "SweepResult",
    "MetricStats",
    "summarise",
    "t_critical",
]

SCHEMA_VERSION = 1

#: Two-sided 95 % Student-t critical values by degrees of freedom.  At the
#: 3–5 replicates a sweep typically runs, the normal z=1.96 understates the
#: interval badly (df=2 needs 4.303, more than double); scipy is not a
#: dependency, so the standard table is inlined.  Entries above df=30 step
#: down through the usual printed rows and converge on z at infinity.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Large-sample limit (the normal z value the legacy ``ci95`` field uses).
_Z_95 = 1.96


def t_critical(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom.

    Exact table value for df ≤ 30; between tabulated rows (31–120) the
    value of the *largest tabulated df not exceeding* the request is used —
    rounding df down makes the interval conservative (never narrower than
    the true t interval).  Beyond 120 the normal limit 1.96 applies.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1: {df}")
    if df in _T_95:
        return _T_95[df]
    if df > 120:
        return _Z_95
    return _T_95[max(d for d in _T_95 if d <= df)]


@dataclass
class MetricStats:
    """Mean/CI summary of one metric across a cell's replicates.

    ``ci95`` is the historical normal-approximation half-width (z=1.96
    regardless of n) and is kept byte-identical for golden fixtures;
    ``ci95_t`` is the corrected small-sample half-width using the
    Student-t critical value at n-1 degrees of freedom — what reports
    should quote at the 3–5 replicates sweeps typically run.
    """

    mean: float
    std: float
    ci95: float
    n: int
    min: float
    max: float
    ci95_t: float = 0.0


def summarise(values: List[float]) -> MetricStats:
    """Sample statistics with normal- and t-based 95 % intervals."""
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
        sem = std / math.sqrt(n)
        ci95 = _Z_95 * sem
        ci95_t = t_critical(n - 1) * sem
    else:
        std = 0.0
        ci95 = 0.0
        ci95_t = 0.0
    return MetricStats(
        mean=mean, std=std, ci95=ci95, n=n, min=min(values), max=max(values),
        ci95_t=ci95_t,
    )


_MISSING = object()


def _lookup(params: Mapping[str, Any], key: str) -> Any:
    """A parameter by flat key, falling back to dotted-path descent."""
    if key in params:
        return params[key]
    current: Any = params
    for part in key.split("."):
        if not isinstance(current, Mapping) or part not in current:
            return _MISSING
        current = current[part]
    return current


@dataclass
class CellRun:
    """One replicate of one cell."""

    replicate: int
    seed: int
    metrics: Dict[str, float]
    violations: List[str] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    """Full result payload (e.g. a ScenarioResult dict) when the sweep ran
    with ``keep_results=True``; None otherwise."""

    def to_dict(self) -> Dict[str, Any]:
        """The run as a JSON-encodable dict — the shard payload format of
        :mod:`repro.sweep.cache` and the per-run shape inside
        :meth:`SweepResult.to_dict`."""
        return {
            "replicate": self.replicate,
            "seed": self.seed,
            "metrics": self.metrics,
            "violations": self.violations,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellRun":
        return cls(
            replicate=data["replicate"],
            seed=data["seed"],
            metrics=data["metrics"],
            violations=data.get("violations", []),
            result=data.get("result"),
        )


@dataclass
class CellResult:
    """One grid cell: parameters plus every replicate run."""

    params: Dict[str, Any]
    runs: List[CellRun]

    @property
    def ok(self) -> bool:
        return not any(run.violations for run in self.runs)

    @property
    def violations(self) -> List[str]:
        return [v for run in self.runs for v in run.violations]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for run in self.runs:
            for name in run.metrics:
                if name not in names:
                    names.append(name)
        return names

    def stats(self, metric: str) -> MetricStats:
        values = [
            run.metrics[metric] for run in self.runs if metric in run.metrics
        ]
        if not values:
            known = ", ".join(self.metric_names()) or "<none>"
            raise KeyError(f"no metric {metric!r} in cell (known: {known})")
        return summarise(values)

    def value(self, metric: str) -> float:
        """Mean of ``metric`` across replicates."""
        return self.stats(metric).mean

    def matches(self, coords: Mapping[str, Any]) -> bool:
        """True when every coordinate equals the cell's parameter.

        Dotted coordinates descend into nested parameters, mirroring how
        dotted axes are expanded by the grid: a cell swept with
        ``axis("latency_params.mean", ...)`` is addressed as
        ``select(**{"latency_params.mean": 0.002})``.
        """
        return all(
            _lookup(self.params, key) == value for key, value in coords.items()
        )


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    base: Dict[str, Any]
    axes: Dict[str, List[Any]]
    seeds: int
    base_seed: int
    cells: List[CellResult]
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when no replicate of any cell recorded a violation."""
        return all(cell.ok for cell in self.cells)

    @property
    def violations(self) -> List[str]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def n_runs(self) -> int:
        return sum(len(cell.runs) for cell in self.cells)

    def select(self, **coords: Any) -> CellResult:
        """The unique cell whose parameters match every given coordinate."""
        matching = [cell for cell in self.cells if cell.matches(coords)]
        if not matching:
            raise KeyError(f"no cell matches {coords!r}")
        if len(matching) > 1:
            raise KeyError(
                f"{len(matching)} cells match {coords!r}; add coordinates"
            )
        return matching[0]

    def column(self, metric: str, **coords: Any) -> List[Any]:
        """``(params, mean)`` pairs of one metric over matching cells."""
        return [
            (cell.params, cell.value(metric))
            for cell in self.cells
            if cell.matches(coords)
        ]

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        for cell, raw in zip(self.cells, data["cells"]):
            raw["stats"] = {
                name: asdict(cell.stats(name)) for name in cell.metric_names()
            }
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported SweepResult schema version: {version}")
        cells = [
            CellResult(
                params=raw["params"],
                runs=[CellRun.from_dict(run) for run in raw["runs"]],
            )
            for raw in data["cells"]
        ]
        return cls(
            base=data["base"],
            axes=data["axes"],
            seeds=data["seeds"],
            base_seed=data["base_seed"],
            cells=cells,
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    @classmethod
    def read_json(cls, path: str) -> "SweepResult":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
