"""Sweep worker: one OS process speaking newline-delimited JSON frames.

``python -m repro.sweep.worker`` turns any host with the package on its
``PYTHONPATH`` into a sweep executor.  The parent (a
:class:`~repro.sweep.dispatch.FramedDispatch` backend) writes one JSON
object per line on the worker's stdin and reads one JSON object per line
from its stdout — exactly the framing a remote host sees, whether the
transport is a local pipe (``subprocess`` backend) or an ``ssh`` channel
(``ssh`` backend).

Parent → worker frames::

    {"type": "hello", "protocol": 1, "runner": "module:qualname",
     "context": <context spec or null>, "keep_results": false}
    {"type": "job", "id": 17, "params": {...}, "replicate": 0, "seed": 123}
    {"type": "shutdown"}

Worker → parent frames::

    {"type": "ready", "protocol": 1, "pid": 4242}
    {"type": "result", "id": 17, "elapsed": 0.0123, "run": {CellRun dict}}
    {"type": "error", "id": 17, "error": "...", "params": {...},
     "replicate": 0, "seed": 123}
    {"type": "fatal", "error": "..."}

The worker executes jobs strictly in arrival order, one at a time, through
the same :func:`repro.sweep.executor._execute` used by the serial and
pooled paths — so a result frame's ``run`` dict is the JSON round trip of
exactly the :class:`~repro.sweep.result.CellRun` a serial run would have
produced, and aggregated sweep output stays byte-identical across
backends (Python's JSON float encoding is shortest-round-trip exact).

Context specs describe how the worker rebuilds the shared context object
locally instead of shipping pickles over the wire:

``null``
    No context.
``{"kind": "json", "data": ...}``
    Any JSON-encodable context, passed through verbatim.
``{"kind": "workload", "name": "game", "params": {...}}``
    A registered workload trace, rebuilt via ``workloads.create(name)``.
``{"kind": "factory", "path": "module:qualname", "params": {...}}``
    An importable zero-side-effect factory called with JSON params.

Objects advertise their spec through a ``worker_recipe()`` method (see
:meth:`repro.workload.trace.Trace.worker_recipe`); contexts without one
and without a JSON encoding are rejected before any worker is spawned.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = ["PROTOCOL", "FRAME_TYPES", "resolve_callable", "build_context", "main"]

#: Wire-protocol version; bumped on any frame-shape change.
PROTOCOL = 1

#: Every frame type of protocol 1, parent→worker then worker→parent.
FRAME_TYPES = ("hello", "job", "shutdown", "ready", "result", "error", "fatal")

#: Set in every worker process before the first job runs — lets cell
#: runners (and fault-injection probes in tests) detect that they execute
#: inside a dispatch worker rather than the parent.
WORKER_ENV = "REPRO_SWEEP_WORKER"


def resolve_callable(path: str) -> Callable[..., Any]:
    """Import ``"module:qualname"`` back into the callable it names."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"runner path must be 'module:qualname': {path!r}")
    if "<locals>" in qualname:
        raise ValueError(
            f"runner {path!r} is defined inside a function; dispatch workers "
            f"can only import module-level callables"
        )
    import importlib

    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"{path!r} resolved to non-callable {type(obj).__name__}")
    return obj


def build_context(spec: Optional[Dict[str, Any]]) -> Any:
    """Rebuild the shared context object a spec describes (see module doc)."""
    if spec is None:
        return None
    kind = spec.get("kind")
    if kind == "json":
        return spec.get("data")
    if kind == "workload":
        import repro  # noqa: F401  (imports register every workload)
        from repro.registry import workloads

        trace = workloads.create(spec["name"], **dict(spec.get("params") or {}))
        # Re-stamp the recipe so a context rebuilt in a worker is itself
        # portable (nested dispatch, diagnostics).
        trace.recipe = {"kind": "workload", "name": spec["name"],
                        "params": dict(spec.get("params") or {})}
        return trace
    if kind == "factory":
        factory = resolve_callable(spec["path"])
        return factory(**dict(spec.get("params") or {}))
    raise ValueError(f"unknown context spec kind: {kind!r}")


def _emit(out: TextIO, frame: Dict[str, Any]) -> None:
    out.write(json.dumps(frame, sort_keys=True) + "\n")
    out.flush()


def main(stdin: Optional[TextIO] = None, stdout: Optional[TextIO] = None) -> int:
    """Run the worker loop; returns a process exit code.

    With no arguments the real stdio streams are used, and ``sys.stdout``
    is rebound to stderr first so stray prints from cell runners cannot
    corrupt the frame stream.  Tests drive the loop in-process by passing
    explicit text streams.
    """
    os.environ[WORKER_ENV] = "1"
    if stdout is None:
        # Duplicate the real stdout fd for frames, then point sys.stdout
        # (and anything a runner prints) at stderr.
        out = os.fdopen(os.dup(sys.stdout.fileno()), "w", encoding="utf-8")
        sys.stdout = sys.stderr
    else:
        out = stdout
    inp = stdin if stdin is not None else sys.stdin

    from repro.sweep.executor import SweepCellError, _execute, _prepare_context

    runner: Optional[Callable[..., Any]] = None
    context: Any = None
    keep_results = False

    for line in inp:
        line = line.strip()
        if not line:
            continue
        try:
            frame = json.loads(line)
            ftype = frame.get("type")
        except Exception as exc:
            _emit(out, {"type": "fatal", "error": f"bad frame: {exc}"})
            return 2
        if ftype == "hello":
            try:
                if frame.get("protocol") != PROTOCOL:
                    raise ValueError(
                        f"protocol mismatch: parent speaks "
                        f"{frame.get('protocol')!r}, worker speaks {PROTOCOL}"
                    )
                runner = resolve_callable(frame["runner"])
                context = build_context(frame.get("context"))
                keep_results = bool(frame.get("keep_results"))
                _prepare_context(context)
            except Exception as exc:
                _emit(out, {"type": "fatal",
                            "error": f"{type(exc).__name__}: {exc}"})
                return 2
            _emit(out, {"type": "ready", "protocol": PROTOCOL,
                        "pid": os.getpid()})
        elif ftype == "job":
            if runner is None:
                _emit(out, {"type": "fatal", "error": "job before hello"})
                return 2
            job_id = frame.get("id")
            params = frame["params"]
            replicate = frame["replicate"]
            seed = frame["seed"]
            task = (0, 0, params, replicate, seed)
            started = time.perf_counter()
            try:
                _, _, run = _execute(runner, context, task, keep_results)
            except SweepCellError as exc:
                _emit(out, {
                    "type": "error", "id": job_id, "error": str(exc),
                    "params": exc.params, "replicate": exc.replicate,
                    "seed": exc.seed,
                })
                continue
            _emit(out, {
                "type": "result", "id": job_id,
                "elapsed": time.perf_counter() - started,
                "run": run.to_dict(),
            })
        elif ftype == "shutdown":
            break
        else:
            _emit(out, {"type": "fatal", "error": f"unknown frame type: {ftype!r}"})
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
