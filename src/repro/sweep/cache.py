"""Content-addressed cell cache: incremental sweep re-runs.

Every figure of the paper is a grid of (cell, replicate) runs, and every
run is deterministic — same params, same derived seed, same code, same
result.  That makes a sweep memoisable by fingerprint, the discipline
training/eval harnesses use: a :class:`SweepCache` maps

    sha256(cell params, replicate seed, runner identity, context token,
           code fingerprint over ``src/repro/**``)

to a JSON **shard** holding one :class:`~repro.sweep.result.CellRun`.
:func:`~repro.sweep.executor.run_sweep` consults the cache before
computing each run and writes back after, so a warm re-run of
``reproduce_figures.py --cache DIR`` computes zero cells; editing any
module under :mod:`repro` changes the code fingerprint and invalidates
everything, while flipping one axis value recomputes exactly the
affected cells.

Design rules:

* **Keys are content-addressed.**  A key covers everything a run's output
  depends on: the materialised cell params (which include the checks
  subset for scenario cells), the derived replicate seed, the runner's
  identity (module:qualname, plus its source hash when it lives outside
  the :mod:`repro` package), the shared context's token (see
  :func:`context_token`) and the :func:`code_fingerprint`.  Nothing is
  ever invalidated *in place* — a change produces a different key and the
  stale shard becomes garbage for :func:`gc`.
* **Shards are verified on load.**  Each shard embeds a history
  fingerprint (sha256 of the canonical run payload); a shard whose stored
  fingerprint does not match — truncated write, manual edit, bit rot — is
  treated as a miss and recomputed, never served.  In particular a shard
  recording invariant **violations** is only ever served after this
  re-check, so a tampered violation record cannot poison ``on_violation``
  handling.
* **Writes are atomic.**  Shards land via temp-file + ``os.replace`` so
  concurrent writers (a pooled run's parent, or two sweep processes
  sharing one cache directory) can only ever publish complete shards;
  last writer wins with byte-identical content.
* **Cached and fresh runs merge byte-identically.**  Run payloads are
  canonicalised through a JSON round trip at store time and the
  normalised run is what the executor records, so a warm
  :class:`~repro.sweep.result.SweepResult` serialises byte-for-byte equal
  to the cold one that populated the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.sweep.grid import SweepError, canonical_params
from repro.sweep.result import CellRun

__all__ = [
    "SweepCache",
    "CacheStats",
    "code_fingerprint",
    "runner_token",
    "context_token",
    "gc",
    "cache_stats",
]

SHARD_SCHEMA = 1

#: Name of the best-effort counters file inside a cache directory.
STATS_FILE = "cache-stats.json"

_code_fingerprint_memo: Dict[str, str] = {}


def code_fingerprint(root: Optional[Union[str, pathlib.Path]] = None) -> str:
    """Combined sha256 over every ``*.py`` source of the repro package.

    Any edit to any module under ``src/repro/**`` changes this value and
    thereby every cache key — coarse on purpose: sweeping correctness
    beats shaving a cold run, and stale shards are reclaimed by
    :func:`gc`, not trusted.  Memoised per root path per process (the
    tree cannot change under a running sweep's feet without also changing
    the code that is running).
    """
    if root is None:
        import repro

        root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(root)
    memo_key = str(root)
    cached = _code_fingerprint_memo.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _code_fingerprint_memo[memo_key] = value
    return value


def runner_token(runner: Callable[..., Any]) -> str:
    """Stable identity of a cell runner.

    ``module:qualname`` for runners inside the :mod:`repro` package
    (their source is already covered by :func:`code_fingerprint`); for
    runners defined elsewhere (examples, benchmarks, tests) the token
    additionally hashes the defining file, so editing an external runner
    invalidates its cells just like editing the package would.
    """
    module = getattr(runner, "__module__", "") or ""
    qualname = getattr(runner, "__qualname__", repr(runner))
    token = f"{module}:{qualname}"
    if module == "repro" or module.startswith("repro."):
        return token
    import inspect

    try:
        source = inspect.getsourcefile(runner)
    except TypeError:
        source = None
    if source and os.path.exists(source):
        with open(source, "rb") as fh:
            token += ":" + hashlib.sha256(fh.read()).hexdigest()[:16]
    return token


def context_token(context: Any) -> str:
    """A content token for the executor's shared ``context`` object.

    The context participates in a run's output (a trace, a mapping of
    scenario defaults), so it must participate in the key.  Resolution
    order:

    * ``None`` — the empty token;
    * an object exposing ``cache_token()`` (e.g.
      :meth:`repro.workload.trace.Trace.cache_token`) — its value;
    * any JSON-encodable value — sha256 of its canonical encoding;
    * anything else — a :class:`~repro.sweep.grid.SweepError`: an opaque
      context cannot be fingerprinted, so it cannot be cached safely.
    """
    if context is None:
        return ""
    token = getattr(context, "cache_token", None)
    if callable(token):
        return str(token())
    try:
        encoded = json.dumps(context, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        raise SweepError(
            f"cannot cache a sweep whose context ({type(context).__name__}) "
            f"is neither JSON-encodable nor exposes cache_token()"
        ) from None
    return "sha256:" + hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _history_fingerprint(payload: Mapping[str, Any]) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class CacheStats:
    """Session counters of one :class:`SweepCache` instance."""

    __slots__ = ("hits", "misses", "stores", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corrupt={self.corrupt})"
        )


class SweepCache:
    """On-disk, content-addressed store of per-(cell, replicate) shards.

    ``path`` is created on first use.  ``fingerprint`` overrides the code
    fingerprint (tests inject synthetic values to exercise invalidation);
    ``extra`` is an optional JSON-encodable salt mixed into every key —
    the hook for out-of-band inputs the params don't carry (an explicit
    checks subset handed to a custom runner, a dataset revision, ...).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fingerprint: Optional[str] = None,
        extra: Any = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        if extra is not None:
            canonical_params({"extra": extra})  # fail fast on objects
        self.extra = extra
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key(
        self,
        runner: Callable[..., Any],
        params: Mapping[str, Any],
        replicate: int,
        seed: int,
        context_tok: str = "",
    ) -> str:
        material = json.dumps(
            {
                "code": self.fingerprint,
                "context": context_tok,
                "extra": self.extra,
                "params": dict(params),
                "replicate": replicate,
                "runner": runner_token(runner),
                "seed": seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def shard_path(self, key: str) -> pathlib.Path:
        return self.path / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def lookup(
        self,
        runner: Callable[..., Any],
        params: Mapping[str, Any],
        replicate: int,
        seed: int,
        context_tok: str = "",
    ) -> Optional[CellRun]:
        """The cached run, or None on miss/corruption (counted apart)."""
        run = self._load(self.key(runner, params, replicate, seed, context_tok))
        if run is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return run

    def contains(
        self,
        runner: Callable[..., Any],
        params: Mapping[str, Any],
        replicate: int,
        seed: int,
        context_tok: str = "",
    ) -> bool:
        """Verified presence check; does not touch the session counters."""
        return (
            self._load(self.key(runner, params, replicate, seed, context_tok))
            is not None
        )

    def _load(self, key: str) -> Optional[CellRun]:
        path = self.shard_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                shard = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.stats.corrupt += 1
            return None
        try:
            if shard["schema"] != SHARD_SCHEMA or shard["key"] != key:
                self.stats.corrupt += 1
                return None
            payload = shard["run"]
            # The history fingerprint is re-checked on *every* load — a
            # shard whose stored payload drifted (truncation, edits) is
            # recomputed, and recorded invariant violations in particular
            # are never served without passing this check.
            if shard["history_fingerprint"] != _history_fingerprint(payload):
                self.stats.corrupt += 1
                return None
            return CellRun.from_dict(payload)
        except (KeyError, TypeError):
            self.stats.corrupt += 1
            return None

    def store(
        self,
        runner: Callable[..., Any],
        params: Mapping[str, Any],
        replicate: int,
        seed: int,
        run: CellRun,
        context_tok: str = "",
    ) -> CellRun:
        """Write one shard atomically; returns the canonicalised run.

        The returned :class:`CellRun` has been round-tripped through the
        shard's JSON encoding, so the executor records exactly what a
        warm run would load — cold-with-cache and warm results are
        byte-identical by construction.
        """
        key = self.key(runner, params, replicate, seed, context_tok)
        payload = json.loads(json.dumps(run.to_dict()))
        shard = {
            "schema": SHARD_SCHEMA,
            "key": key,
            "code_fingerprint": self.fingerprint,
            "runner": runner_token(runner),
            "context": context_tok,
            "params": dict(params),
            "replicate": replicate,
            "seed": seed,
            "run": payload,
            "history_fingerprint": _history_fingerprint(payload),
        }
        path = self.shard_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(shard, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return CellRun.from_dict(payload)

    # ------------------------------------------------------------------
    # Persistent counters (best effort, for `repro-sweep stats`)
    # ------------------------------------------------------------------

    def flush_stats(self) -> None:
        """Merge this session's counters into ``cache-stats.json``.

        Read-modify-write without a lock: two simultaneous sweeps may
        lose each other's increment, which only skews the *reported* hit
        rate — never correctness.  The write itself is atomic, so the
        file is always valid JSON.
        """
        if self.stats.lookups == 0 and self.stats.stores == 0:
            return
        path = self.path / STATS_FILE
        totals = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0, "runs": 0}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                recorded = json.load(fh)
            for name in totals:
                totals[name] = int(recorded.get(name, 0))
        except (OSError, ValueError):
            pass
        totals["hits"] += self.stats.hits
        totals["misses"] += self.stats.misses
        totals["stores"] += self.stats.stores
        totals["corrupt"] += self.stats.corrupt
        totals["runs"] += 1
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=".stats-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(totals, fh, sort_keys=True, indent=2)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepCache({str(self.path)!r}, "
            f"fingerprint={self.fingerprint[:12]}..., {self.stats!r})"
        )


# ----------------------------------------------------------------------
# Maintenance (the `repro-sweep` CLI is a thin wrapper over these)
# ----------------------------------------------------------------------


def _iter_shards(path: pathlib.Path):
    for sub in sorted(path.iterdir()) if path.is_dir() else ():
        if not sub.is_dir() or len(sub.name) != 2:
            continue
        for shard in sorted(sub.glob("*.json")):
            yield shard


def cache_stats(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Inventory of a cache directory: shards, bytes, fingerprints,
    recorded hit/miss counters (see :meth:`SweepCache.flush_stats`)."""
    path = pathlib.Path(path)
    current = code_fingerprint()
    shards = 0
    total_bytes = 0
    stale = 0
    unreadable = 0
    fingerprints: Dict[str, int] = {}
    for shard_path in _iter_shards(path):
        shards += 1
        total_bytes += shard_path.stat().st_size
        try:
            with open(shard_path, "r", encoding="utf-8") as fh:
                shard = json.load(fh)
            fingerprint = shard["code_fingerprint"]
        except (OSError, ValueError, KeyError, TypeError):
            unreadable += 1
            continue
        fingerprints[fingerprint] = fingerprints.get(fingerprint, 0) + 1
        if fingerprint != current:
            stale += 1
    counters = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0, "runs": 0}
    try:
        with open(path / STATS_FILE, "r", encoding="utf-8") as fh:
            recorded = json.load(fh)
        for name in counters:
            counters[name] = int(recorded.get(name, 0))
    except (OSError, ValueError):
        pass
    lookups = counters["hits"] + counters["misses"]
    return {
        "path": str(path),
        "shards": shards,
        "bytes": total_bytes,
        "code_fingerprint": current,
        "fingerprints": fingerprints,
        "stale_shards": stale,
        "unreadable_shards": unreadable,
        "counters": counters,
        "hit_rate": (counters["hits"] / lookups) if lookups else None,
    }


def gc(
    path: Union[str, pathlib.Path],
    remove_all: bool = False,
    dry_run: bool = False,
) -> Dict[str, Any]:
    """Evict stale shards: wrong code fingerprint or unreadable.

    ``remove_all`` clears every shard regardless of fingerprint (a cache
    reset); ``dry_run`` reports what would go without deleting.  Returns
    ``{"evicted": n, "bytes": b, "kept": k}``.
    """
    path = pathlib.Path(path)
    current = code_fingerprint()
    evicted = 0
    freed = 0
    kept = 0
    for shard_path in _iter_shards(path):
        size = shard_path.stat().st_size
        doomed = remove_all
        if not doomed:
            try:
                with open(shard_path, "r", encoding="utf-8") as fh:
                    shard = json.load(fh)
                doomed = shard["code_fingerprint"] != current
            except (OSError, ValueError, KeyError, TypeError):
                doomed = True
        if doomed:
            evicted += 1
            freed += size
            if not dry_run:
                shard_path.unlink()
        else:
            kept += 1
    if not dry_run and path.is_dir():
        for sub in path.iterdir():
            if sub.is_dir() and len(sub.name) == 2 and not any(sub.iterdir()):
                sub.rmdir()
    return {"evicted": evicted, "bytes": freed, "kept": kept}
