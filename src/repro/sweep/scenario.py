"""Scenario-backed sweep cells: a declarative, JSON-safe cell schema.

:func:`scenario_cell` is the bridge between the sweep engine and the
:class:`~repro.scenario.Scenario` builder: each cell's parameters are a
plain dict (so they can be hashed into deterministic seeds and shipped to
worker processes), and the runner materialises them into a scenario, runs
it, and returns the :class:`~repro.scenario.result.ScenarioResult` — with
the executable specification checked on every single cell.

Recognised keys (all optional unless noted)::

    n, relation, relation_params, consensus, fd   group composition
    config          extra StackConfig kwargs ({"fd_delay": 0.02, ...})
    latency_model, latency_params                 e.g. "lognormal", {"mean": 1e-3}
    workload, workload_params, workload_sender    registered trace generator
    consumer_rate   one rate for every member
    consumers       [{"rate": r, "pids": [..]} ...] (pids optional)
    drain_every     bulk-drain period (alternative to consumers)
    perturb         [[pid, at, duration], ...]
    crash           [[pid, at], ...]
    recover         [[pid, at], [pid, at, via], or [pid, at, via, retry]
                    (retry null = single attempt), ...]
    view_change     [[at] or [at, pid], ...]
    faults          {"profile": name, "params": {...}} or [event dicts]
                    (see repro.faults; axes can reach into it, e.g.
                    .axis("faults.params.loss", [0.0, 0.05]))
    metrics         names for Scenario.collect (default: all known)
    sample_period, histories, checks, drain
    until           (required) simulated run time

The replicate ``seed`` handed in by the executor seeds the whole stack, so
two replicates of the same cell differ exactly by their derived seeds.

:class:`ScenarioSweep` packages a grid with this runner::

    result = (
        ScenarioSweep(base={"until": 10.0, "workload": "game",
                            "workload_params": {"rounds": 300}},
                      seeds=3)
        .axis("n", [3, 5, 8])
        .axis("latency_params.mean", [0.0005, 0.002])
        .fixed(latency_model="lognormal", consumer_rate=200.0)
        .run(workers=4, cache=".sweep-cache")
    )

Scenario cells cache cleanly (``cache=`` above, see
:mod:`repro.sweep.cache`): the whole cell — including the ``checks``
subset and every fault/latency knob — is a JSON dict, so the cell params
themselves are the cache key's identity, and a context of defaults is
folded in via its canonical JSON token.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.scenario.builder import KNOWN_METRICS, Scenario
from repro.scenario.result import ScenarioResult
from repro.sweep.grid import Sweep, SweepError

__all__ = ["scenario_cell", "ScenarioSweep", "SCENARIO_CELL_KEYS"]

#: Every key :func:`scenario_cell` understands; anything else is an error
#: (axis typos must not silently no-op a whole sweep).
SCENARIO_CELL_KEYS = frozenset(
    {
        "n",
        "relation",
        "relation_params",
        "consensus",
        "fd",
        "config",
        "latency_model",
        "latency_params",
        "workload",
        "workload_params",
        "workload_sender",
        "consumer_rate",
        "consumers",
        "drain_every",
        "perturb",
        "crash",
        "recover",
        "view_change",
        "faults",
        "metrics",
        "sample_period",
        "histories",
        "checks",
        "drain",
        "until",
    }
)


def scenario_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> ScenarioResult:
    """Build, run and invariant-check one declarative scenario cell.

    ``context``, when given, is a mapping of defaults the cell params are
    laid over (useful to keep bulky shared settings out of the grid).
    """
    merged: Dict[str, Any] = {}
    if context is not None:
        if not isinstance(context, Mapping):
            raise SweepError(
                f"scenario_cell context must be a mapping of defaults, "
                f"got {type(context).__name__}"
            )
        merged.update(context)
    merged.update(params)

    unknown = set(merged) - SCENARIO_CELL_KEYS
    if unknown:
        raise SweepError(
            f"unknown scenario cell parameters: "
            f"{', '.join(sorted(map(repr, unknown)))} "
            f"(known: {', '.join(sorted(SCENARIO_CELL_KEYS))})"
        )
    if "until" not in merged:
        raise SweepError("scenario cells need an 'until' run time")

    scenario = Scenario().group(
        n=merged.get("n"),
        relation=merged.get("relation"),
        consensus=merged.get("consensus"),
        fd=merged.get("fd"),
        seed=seed,
        relation_params=merged.get("relation_params"),
        **dict(merged.get("config") or {}),
    )
    if merged.get("latency_model") is not None:
        scenario.latency(
            merged["latency_model"], **dict(merged.get("latency_params") or {})
        )
    elif merged.get("latency_params"):
        # A latency axis without a model would silently no-op every cell.
        raise SweepError(
            "latency_params given without latency_model; fix the model "
            "(e.g. latency_model='lognormal') in the sweep base"
        )
    if merged.get("workload") is not None:
        scenario.workload(
            merged["workload"],
            sender=merged.get("workload_sender", 0),
            **dict(merged.get("workload_params") or {}),
        )
    if merged.get("consumer_rate") is not None:
        scenario.consumers(rate=merged["consumer_rate"])
    for spec in merged.get("consumers") or ():
        scenario.consumers(rate=spec["rate"], pids=spec.get("pids"))
    if merged.get("drain_every") is not None:
        scenario.drain_every(merged["drain_every"])
    for pid, at, duration in merged.get("perturb") or ():
        scenario.perturb(pid=pid, at=at, duration=duration)
    for pid, at in merged.get("crash") or ():
        scenario.crash(pid=pid, at=at)
    for entry in merged.get("recover") or ():
        pid, at = entry[0], entry[1]
        via = entry[2] if len(entry) > 2 else None
        retry = entry[3] if len(entry) > 3 else 0.5
        scenario.recover(pid=pid, at=at, via=via, retry=retry)
    for entry in merged.get("view_change") or ():
        at, pid = (entry[0], entry[1]) if len(entry) > 1 else (entry[0], 0)
        scenario.view_change(at=at, pid=pid)
    faults = merged.get("faults")
    if faults is not None:
        if isinstance(faults, Mapping):
            if "profile" not in faults:
                raise SweepError(
                    "a faults mapping must be {'profile': name, 'params': "
                    "{...}}; pass a *list* of event dicts for raw events"
                )
            scenario.faults(faults["profile"], **dict(faults.get("params") or {}))
        else:
            scenario.faults(faults)
    metrics = merged.get("metrics")
    if metrics is None:  # absent or explicit None both mean "everything"
        metrics = KNOWN_METRICS
    scenario.collect(*metrics)
    if merged.get("sample_period") is not None:
        scenario.sample_every(merged["sample_period"])
    # The whole point of the sweep harness: every cell is checked against
    # the executable specification while it runs.
    scenario.check(True, checks=merged.get("checks"))
    scenario.histories(bool(merged.get("histories", False)))
    return scenario.run(
        until=merged["until"], drain=bool(merged.get("drain", True))
    )


class ScenarioSweep(Sweep):
    """A :class:`Sweep` whose cells are declarative scenario specs."""

    def run(self, runner=scenario_cell, **kwargs):  # type: ignore[override]
        return super().run(runner, **kwargs)
