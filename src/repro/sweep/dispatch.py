"""Pluggable dispatch backends: how a sweep's cells reach their workers.

The executor (:func:`repro.sweep.executor.run_sweep`) decides *what* runs
— cache misses, in grid order — and a **dispatch backend** decides
*where*.  Backends register on :data:`repro.registry.dispatch_backends`
exactly like latency models and transports::

    run_sweep(sweep, runner, dispatch="subprocess", workers=2)
    run_sweep(sweep, runner, dispatch="ssh",
              dispatch_params={"hostfile": "hosts.txt"})

Built-in backends:

``local-pool``
    Today's :mod:`multiprocessing` pool behind the new seam —
    byte-identical to the historical ``workers>=2`` path, now with an
    adaptive ``chunksize`` instead of the hard-coded ``1``.
``subprocess``
    Worker OS processes started as ``python -m repro.sweep.worker``,
    speaking newline-delimited JSON job/result frames over pipes —
    exactly the framing a remote host sees.
``ssh``
    The same worker protocol over ``ssh <host> python -m
    repro.sweep.worker``; peers come from a hostfile or dict with
    per-host worker counts.

Scheduling in the framed backends is cache-aware (the executor dispatches
only misses), streaming (each completed ``CellRun`` is merged into the
parent-side cache as it arrives), and straggler-resistant: the per-worker
in-flight window adapts to observed per-cell runtime, tail cells are
re-issued to idle workers, and results dedup first-wins on
(cell, replicate, seed) — safe because same-seed runs are byte-identical
by the determinism contract.  A worker that dies mid-sweep has its
in-flight cells re-queued, never lost.
"""

from __future__ import annotations

import inspect
import json
import multiprocessing
import os
import pathlib
import selectors
import shlex
import subprocess
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.registry import RegistryError, dispatch_backends
from repro.sweep.executor import (
    SweepCellError,
    _init_worker,
    _run_task,
    _Task,
)
from repro.sweep.grid import SweepError
from repro.sweep.result import CellRun

__all__ = [
    "DispatchBackend",
    "DispatchError",
    "DispatchJob",
    "DispatchStats",
    "LocalPoolDispatch",
    "SubprocessDispatch",
    "SshDispatch",
    "auto_chunksize",
    "context_spec",
    "parse_hostfile",
    "resolve_backend",
    "runner_path",
    "record_dispatch",
    "load_dispatch_stats",
    "DISPATCH_STATS_FILE",
]


class DispatchError(SweepError):
    """A dispatch backend failed outside any single cell (worker loss, ...)."""


# ----------------------------------------------------------------------
# Job description and run statistics
# ----------------------------------------------------------------------


@dataclass
class DispatchJob:
    """Everything a backend needs to run one sweep's pending cells.

    ``emit(index, cell_index, run)`` is called in the parent exactly once
    per task, as results arrive — the executor's cache-merge / invariant
    hook.  Task order inside ``tasks`` is grid order; backends may
    complete them in any order.
    """

    tasks: List[_Task]
    runner: Callable[..., Any]
    context: Any
    keep_results: bool
    emit: Callable[[int, int, CellRun], None]


@dataclass
class DispatchStats:
    """What a backend did, for ``repro-sweep stats`` post-mortems."""

    backend: str
    workers: int
    dispatched: int = 0  #: job frames issued, speculative copies included
    completed: int = 0  #: first-wins results recorded
    stolen: int = 0  #: speculative re-issues of tail cells to idle workers
    reissued: int = 0  #: unfinished cells lost to a worker crash (redone)
    duplicates: int = 0  #: late copies discarded by first-result-wins
    wall_s: float = 0.0
    chunksize: Optional[int] = None  #: local-pool only
    window: Optional[int] = None  #: framed backends: final adaptive window
    per_worker: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "backend": self.backend,
            "workers": self.workers,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "stolen": self.stolen,
            "reissued": self.reissued,
            "duplicates": self.duplicates,
            "wall_s": round(self.wall_s, 6),
        }
        if self.chunksize is not None:
            out["chunksize"] = self.chunksize
        if self.window is not None:
            out["window"] = self.window
        if self.per_worker:
            out["per_worker"] = self.per_worker
        return out


class DispatchBackend:
    """Base class: run a :class:`DispatchJob`, record :class:`DispatchStats`."""

    name = "base"

    def __init__(self) -> None:
        self.stats: Optional[DispatchStats] = None

    def execute(self, job: DispatchJob) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


# ----------------------------------------------------------------------
# Portable runner / context descriptions for framed backends
# ----------------------------------------------------------------------


def runner_path(runner: Callable[..., Any]) -> str:
    """``"module:qualname"`` of a runner, validated importable for workers."""
    module = getattr(runner, "__module__", None)
    qualname = getattr(runner, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        raise SweepError(
            f"runner {runner!r} is not importable (module-level functions "
            f"only); dispatch workers re-import runners by dotted path"
        )
    return f"{module}:{qualname}"


def context_spec(context: Any) -> Optional[Dict[str, Any]]:
    """The wire description a worker uses to rebuild ``context`` locally.

    Objects may advertise their own spec through a ``worker_recipe()``
    method (a :class:`~repro.workload.trace.Trace` built by a registered
    workload does); otherwise any JSON-encodable context travels verbatim
    as ``{"kind": "json"}``.  Anything else is rejected up front with a
    :class:`~repro.sweep.grid.SweepError` naming the fix.
    """
    if context is None:
        return None
    recipe = getattr(context, "worker_recipe", None)
    if callable(recipe):
        spec = recipe()
        if spec is not None:
            return spec
    try:
        encoded = json.dumps(context)
    except (TypeError, ValueError):
        raise SweepError(
            f"context {type(context).__name__} is not portable to dispatch "
            f"workers: give it a worker_recipe() returning a context spec "
            f"(see repro.sweep.worker), or pass a JSON-encodable context"
        ) from None
    return {"kind": "json", "data": json.loads(encoded)}


def auto_chunksize(n_tasks: int, workers: int) -> int:
    """Pool chunk size aiming at ~4 chunks per worker, clamped to [1, 32].

    Small enough that a straggler chunk cannot hold more than a quarter
    of one worker's share, large enough that per-chunk IPC stops
    dominating micro-cells (the historical ``chunksize=1`` cost one pickle
    round trip per cell).
    """
    if n_tasks <= 0 or workers <= 0:
        return 1
    return max(1, min(32, n_tasks // (workers * 4) or 1))


# ----------------------------------------------------------------------
# local-pool: the historical multiprocessing path behind the seam
# ----------------------------------------------------------------------


@dispatch_backends.register("local-pool", aliases=("pool", "multiprocessing"))
class LocalPoolDispatch(DispatchBackend):
    """Fan cells out to a :mod:`multiprocessing` pool on this host.

    ``chunksize=None``/``"auto"`` sizes chunks from the task count via
    :func:`auto_chunksize`; an integer pins it (``1`` reproduces the
    historical scheduling exactly).  Output is byte-identical either way
    — results are reassembled in grid order.
    """

    name = "local-pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        chunksize: Union[int, str, None] = None,
    ) -> None:
        super().__init__()
        self.workers = max(1, int(workers) if workers else 2)
        self.mp_context = mp_context
        self.chunksize = chunksize

    def execute(self, job: DispatchJob) -> None:
        chunk = self.chunksize
        if chunk is None or chunk == "auto":
            chunk = auto_chunksize(len(job.tasks), self.workers)
        chunk = max(1, int(chunk))
        stats = DispatchStats(
            backend=self.name, workers=self.workers, chunksize=chunk
        )
        self.stats = stats
        started = time.perf_counter()
        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else multiprocessing.get_context()
        )
        with ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(job.runner, job.context, job.keep_results),
        ) as pool:
            try:
                for index, cell_index, run in pool.imap_unordered(
                    _run_task, job.tasks, chunksize=chunk
                ):
                    stats.completed += 1
                    job.emit(index, cell_index, run)
            except Exception:
                pool.terminate()
                raise
            finally:
                stats.dispatched = len(job.tasks)
                stats.wall_s = time.perf_counter() - started


# ----------------------------------------------------------------------
# Framed backends: the repro.sweep.worker protocol over pipes / ssh
# ----------------------------------------------------------------------


class _Worker:
    """Parent-side handle on one framed worker process."""

    __slots__ = (
        "label", "proc", "buf", "inflight", "ready", "closing",
        "started", "ended", "crashed", "cells", "busy_s", "dead",
    )

    def __init__(self, label: str, proc: subprocess.Popen) -> None:
        self.label = label
        self.proc = proc
        self.buf = b""
        self.inflight: Set[int] = set()
        self.ready = False
        self.closing = False
        self.started = time.perf_counter()
        self.ended: Optional[float] = None
        self.crashed = False
        self.cells = 0
        self.busy_s = 0.0
        self.dead = False


class FramedDispatch(DispatchBackend):
    """Shared engine for backends that speak the NDJSON worker protocol.

    Subclasses provide :meth:`_worker_specs` — the argv (and env) of each
    worker process — and this class runs the scheduling loop: adaptive
    per-worker in-flight windows sized from an EMA of observed per-cell
    runtime (``pipeline_budget`` seconds of work in flight per worker),
    work stealing for tail cells (at most ``max_copies`` concurrent
    copies of a cell), first-result-wins dedup, and crash re-queue.
    """

    name = "framed"

    #: In-flight work (seconds, per worker) the adaptive window targets.
    pipeline_budget = 0.05
    #: Hard cap on the in-flight window.
    max_window = 16

    def __init__(self, max_copies: int = 2) -> None:
        super().__init__()
        self.workers = 0
        self.max_copies = max(1, int(max_copies))

    def _worker_specs(
        self,
    ) -> List[Tuple[str, List[str], Optional[Dict[str, str]]]]:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- frame I/O ------------------------------------------------------

    def _send(self, worker: _Worker, frame: Mapping[str, Any]) -> bool:
        try:
            assert worker.proc.stdin is not None
            worker.proc.stdin.write(
                (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
            )
            worker.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError):
            return False

    # -- the scheduling loop -------------------------------------------

    def execute(self, job: DispatchJob) -> None:
        # Imported lazily so ``python -m repro.sweep.worker`` does not see
        # the worker module pre-imported by the package (runpy warning).
        from repro.sweep.worker import PROTOCOL

        stats = DispatchStats(backend=self.name, workers=0)
        self.stats = stats
        if not job.tasks:
            return
        hello = {
            "type": "hello",
            "protocol": PROTOCOL,
            "runner": runner_path(job.runner),
            "context": context_spec(job.context),
            "keep_results": job.keep_results,
        }
        tasks_by_id: Dict[int, _Task] = {t[0]: t for t in job.tasks}
        unfinished: Set[int] = set(tasks_by_id)
        pending: deque = deque(sorted(tasks_by_id))
        assigned: Dict[int, Set[str]] = {tid: set() for tid in tasks_by_id}

        specs = self._worker_specs()
        if not specs:
            raise DispatchError(f"{self.name} backend has no workers configured")
        stats.workers = self.workers = len(specs)

        started = time.perf_counter()
        ema: Optional[float] = None
        window = 2
        sel = selectors.DefaultSelector()
        workers: List[_Worker] = []

        def mark_dead(w: _Worker) -> None:
            if w.dead:
                return
            w.dead = True
            w.ended = time.perf_counter()
            try:
                sel.unregister(w.proc.stdout)
            except (KeyError, ValueError):
                pass
            if not w.closing:
                w.crashed = True
                for tid in w.inflight:
                    assigned[tid].discard(w.label)
                    if tid in unfinished:
                        # The crashed copy's work must be redone; requeue
                        # unless a stolen copy is already running elsewhere.
                        stats.reissued += 1
                        if not assigned[tid]:
                            pending.appendleft(tid)
            w.inflight.clear()

        def next_task(w: _Worker) -> Optional[int]:
            while pending:
                tid = pending.popleft()
                if tid in unfinished:
                    return tid
            # Queue drained: steal a tail cell another worker is still
            # chewing on (bounded copies; first result wins).
            candidates = [
                tid
                for tid in unfinished
                if w.label not in assigned[tid]
                and len(assigned[tid]) < self.max_copies
            ]
            if not candidates:
                return None
            tid = min(candidates, key=lambda t: (len(assigned[t]), t))
            stats.stolen += 1
            return tid

        def issue(w: _Worker) -> None:
            while w.ready and not w.closing and len(w.inflight) < window:
                tid = next_task(w)
                if tid is None:
                    return
                _, _, params, replicate, seed = tasks_by_id[tid]
                ok = self._send(w, {
                    "type": "job", "id": tid, "params": params,
                    "replicate": replicate, "seed": seed,
                })
                if not ok:
                    pending.appendleft(tid)
                    mark_dead(w)
                    return
                assigned[tid].add(w.label)
                w.inflight.add(tid)
                stats.dispatched += 1

        def handle(w: _Worker, frame: Mapping[str, Any]) -> None:
            nonlocal ema, window
            ftype = frame.get("type")
            if ftype == "ready":
                w.ready = True
                return
            if ftype == "result":
                tid = frame["id"]
                w.inflight.discard(tid)
                elapsed = float(frame.get("elapsed") or 0.0)
                ema = elapsed if ema is None else 0.7 * ema + 0.3 * elapsed
                window = max(
                    1,
                    min(self.max_window,
                        int(self.pipeline_budget / max(ema, 1e-9))),
                )
                if tid not in unfinished:
                    stats.duplicates += 1
                    return
                unfinished.discard(tid)
                w.cells += 1
                w.busy_s += elapsed
                stats.completed += 1
                index, cell_index, _, _, _ = tasks_by_id[tid]
                job.emit(index, cell_index, CellRun.from_dict(frame["run"]))
                return
            if ftype == "error":
                tid = frame.get("id")
                w.inflight.discard(tid)
                if tid in unfinished:
                    raise SweepCellError(
                        str(frame.get("error")),
                        params=frame.get("params"),
                        replicate=frame.get("replicate"),
                        seed=frame.get("seed"),
                    )
                return
            if ftype == "fatal":
                raise DispatchError(
                    f"worker {w.label} failed: {frame.get('error')}"
                )
            raise DispatchError(
                f"worker {w.label} sent unknown frame type {ftype!r}"
            )

        def drain(w: _Worker) -> None:
            assert w.proc.stdout is not None
            try:
                chunk = w.proc.stdout.read1(65536)
            except (OSError, ValueError):
                chunk = b""
            if not chunk:
                mark_dead(w)
                return
            w.buf += chunk
            while b"\n" in w.buf:
                line, w.buf = w.buf.split(b"\n", 1)
                if line.strip():
                    handle(w, json.loads(line))

        try:
            for label, argv, env in specs:
                proc = subprocess.Popen(
                    argv,
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    env=env,
                )
                w = _Worker(label, proc)
                workers.append(w)
                sel.register(proc.stdout, selectors.EVENT_READ, w)
                if not self._send(w, hello):
                    mark_dead(w)

            while unfinished:
                live = [w for w in workers if not w.dead]
                if not live:
                    raise DispatchError(
                        f"{self.name}: all {len(workers)} workers exited "
                        f"with {len(unfinished)} cells unfinished"
                    )
                for w in live:
                    issue(w)
                for key, _ in sel.select(timeout=0.05):
                    drain(key.data)
                for w in workers:
                    if not w.dead and w.proc.poll() is not None:
                        drain(w)  # pick up any final buffered frames
                        mark_dead(w)

            # Orderly shutdown: duplicates still in flight are abandoned.
            for w in workers:
                if not w.dead:
                    w.closing = True
                    self._send(w, {"type": "shutdown"})
                    try:
                        assert w.proc.stdin is not None
                        w.proc.stdin.close()
                    except OSError:
                        pass
            for w in workers:
                if w.proc.poll() is None:
                    try:
                        w.proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        w.proc.kill()
                        w.proc.wait()
                if w.ended is None:
                    w.ended = time.perf_counter()
        finally:
            for w in workers:
                if w.proc.poll() is None:
                    w.proc.kill()
                    w.proc.wait()
                for stream in (w.proc.stdin, w.proc.stdout):
                    if stream is not None:
                        try:
                            stream.close()
                        except OSError:
                            pass
            sel.close()
            stats.wall_s = time.perf_counter() - started
            stats.window = window
            end = time.perf_counter()
            stats.per_worker = {
                w.label: {
                    "cells": w.cells,
                    "busy_s": round(w.busy_s, 6),
                    "wall_s": round((w.ended or end) - w.started, 6),
                    "crashed": w.crashed,
                }
                for w in workers
            }


def _repro_src_root() -> str:
    import repro

    return str(pathlib.Path(repro.__file__).resolve().parents[1])


@dispatch_backends.register("subprocess", aliases=("worker",))
class SubprocessDispatch(FramedDispatch):
    """Framed workers as local OS processes: ``python -m repro.sweep.worker``.

    The same frames a remote host would see, minus the network — the
    reference implementation (and CI stand-in) for multi-host dispatch.
    """

    name = "subprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        python: Optional[str] = None,
        max_copies: int = 2,
    ) -> None:
        super().__init__(max_copies=max_copies)
        self.n_workers = max(1, int(workers) if workers else 2)
        self.python = python or sys.executable

    def _worker_specs(self):
        env = dict(os.environ)
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = _repro_src_root() + (
            os.pathsep + extra if extra else ""
        )
        argv = [self.python, "-u", "-m", "repro.sweep.worker"]
        return [(f"local/{i}", list(argv), env) for i in range(self.n_workers)]


def parse_hostfile(path: Union[str, pathlib.Path]) -> Dict[str, int]:
    """``host [workers]`` per line; ``#`` comments; returns ordered counts."""
    hosts: Dict[str, int] = {}
    for lineno, raw in enumerate(
        pathlib.Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) > 2:
            raise SweepError(
                f"{path}:{lineno}: expected 'host [workers]', got {raw!r}"
            )
        count = 1
        if len(parts) == 2:
            try:
                count = int(parts[1])
            except ValueError:
                raise SweepError(
                    f"{path}:{lineno}: worker count must be an integer, "
                    f"got {parts[1]!r}"
                ) from None
            if count < 1:
                raise SweepError(
                    f"{path}:{lineno}: worker count must be >= 1, got {count}"
                )
        hosts[parts[0]] = hosts.get(parts[0], 0) + count
    if not hosts:
        raise SweepError(f"hostfile {path} names no hosts")
    return hosts


@dispatch_backends.register("ssh")
class SshDispatch(FramedDispatch):
    """Framed workers over ``ssh <host> python -m repro.sweep.worker``.

    ``hosts`` is a mapping ``{host: workers}`` (or a sequence of host
    names, one worker each); ``hostfile`` reads the same from a file.
    ``pythonpath`` / ``cwd`` locate the package on the remote side and
    default to this checkout's ``src`` root — correct for
    ssh-to-localhost, override for real remote hosts.  ``ssh`` names the
    client binary (tests substitute a shim) and ``ssh_args`` extends the
    default non-interactive ``-o BatchMode=yes``.
    """

    name = "ssh"

    def __init__(
        self,
        hosts: Union[Mapping[str, int], Sequence[str], None] = None,
        hostfile: Union[str, pathlib.Path, None] = None,
        python: str = "python3",
        pythonpath: Optional[str] = None,
        cwd: Optional[str] = None,
        ssh: str = "ssh",
        ssh_args: Sequence[str] = ("-o", "BatchMode=yes"),
        max_copies: int = 2,
    ) -> None:
        super().__init__(max_copies=max_copies)
        if hosts is None and hostfile is None:
            raise SweepError("ssh dispatch needs hosts= or hostfile=")
        if hostfile is not None:
            counts = parse_hostfile(hostfile)
            if hosts is not None:
                raise SweepError("pass hosts= or hostfile=, not both")
        elif isinstance(hosts, Mapping):
            counts = {str(h): int(n) for h, n in hosts.items()}
        else:
            counts = {}
            for h in hosts or ():
                counts[str(h)] = counts.get(str(h), 0) + 1
        if not counts or any(n < 1 for n in counts.values()):
            raise SweepError(f"ssh dispatch host counts must be >= 1: {counts!r}")
        self.hosts = counts
        self.python = python
        self.pythonpath = pythonpath if pythonpath is not None else _repro_src_root()
        self.cwd = cwd
        self.ssh = ssh
        self.ssh_args = list(ssh_args)

    def _remote_command(self) -> str:
        parts = []
        if self.cwd:
            parts.append(f"cd {shlex.quote(self.cwd)}")
        run = f"{shlex.quote(self.python)} -u -m repro.sweep.worker"
        if self.pythonpath:
            run = f"PYTHONPATH={shlex.quote(self.pythonpath)} {run}"
        parts.append(run)
        return " && ".join(parts)

    def _worker_specs(self):
        remote = self._remote_command()
        specs = []
        for host, count in self.hosts.items():
            for slot in range(count):
                argv = [self.ssh, *self.ssh_args, host, remote]
                specs.append((f"{host}/{slot}", argv, None))
        return specs


# ----------------------------------------------------------------------
# Resolution from run_sweep(dispatch=...) and the stats trail
# ----------------------------------------------------------------------


def resolve_backend(
    dispatch: Union[str, DispatchBackend],
    workers: Optional[int] = None,
    mp_context: Optional[str] = None,
    chunksize: Union[int, str, None] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> DispatchBackend:
    """Turn ``run_sweep``'s ``dispatch=`` argument into a backend instance.

    A backend instance passes through untouched; a registry name is
    instantiated with ``params`` plus whichever of ``workers`` /
    ``mp_context`` / ``chunksize`` its factory signature accepts.
    """
    if isinstance(dispatch, DispatchBackend):
        if params:
            raise SweepError(
                "dispatch_params only applies to a named backend; "
                "configure the instance directly instead"
            )
        return dispatch
    if not isinstance(dispatch, str):
        raise SweepError(
            f"dispatch must be a backend name or DispatchBackend instance, "
            f"got {type(dispatch).__name__}"
        )
    try:
        factory = dispatch_backends.get(dispatch)
    except RegistryError as exc:
        raise SweepError(str(exc)) from None
    kwargs: Dict[str, Any] = dict(params or {})
    try:
        sig = inspect.signature(factory)
        accepted = set(sig.parameters)
        has_var = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig.parameters.values()
        )
    except (TypeError, ValueError):  # pragma: no cover - C factories
        accepted, has_var = set(), True
    for key, value in (
        ("workers", workers),
        ("mp_context", mp_context),
        ("chunksize", chunksize),
    ):
        if value is not None and key not in kwargs and (has_var or key in accepted):
            kwargs[key] = value
    return factory(**kwargs)


DISPATCH_STATS_FILE = "dispatch-stats.json"

#: Most recent dispatch records kept per cache directory.
_STATS_KEEP = 50

#: Lockfile serializing the stats trail's read-modify-write.
_STATS_LOCK_FILE = DISPATCH_STATS_FILE + ".lock"

#: Bounded lock acquisition: retries × sleep bounds the wait at ~2 s, and
#: a lock older than this many seconds is considered abandoned (a crashed
#: writer) and broken.
_LOCK_RETRIES = 200
_LOCK_SLEEP_S = 0.01
_LOCK_STALE_S = 10.0


def load_dispatch_stats(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """The ``dispatch-stats.json`` payload of a cache dir (empty if none)."""
    stats_path = pathlib.Path(path) / DISPATCH_STATS_FILE
    if not stats_path.is_file():
        return {"schema": 1, "runs": []}
    try:
        payload = json.loads(stats_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {"schema": 1, "runs": []}
    if not isinstance(payload, dict) or not isinstance(payload.get("runs"), list):
        return {"schema": 1, "runs": []}
    return payload


class _StatsLock:
    """``O_EXCL`` lockfile with bounded retry and stale-lock breaking.

    ``os.replace`` makes each *write* of the trail atomic, but append is a
    read-modify-write: two concurrent sweeps finishing into one cache dir
    would each read the same trail and the second ``os.replace`` silently
    drops the first's record.  Creating the lockfile with
    ``O_CREAT | O_EXCL`` is atomic on POSIX and NFS alike; a holder that
    died is detected by the lockfile's age and broken so a crashed sweep
    can never wedge the trail.  If the lock cannot be acquired within the
    retry budget the append proceeds unlocked — stats are best-effort and
    must never deadlock a sweep.
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.path = root / _STATS_LOCK_FILE
        self.acquired = False

    def __enter__(self) -> "_StatsLock":
        for _ in range(_LOCK_RETRIES):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > _LOCK_STALE_S:
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    continue
                time.sleep(_LOCK_SLEEP_S)
            except OSError:
                return self  # unwritable dir: fall back to unlocked append
            else:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(str(os.getpid()))
                self.acquired = True
                return self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.acquired:
            try:
                os.unlink(self.path)
            except OSError:
                pass


def record_dispatch(
    path: Union[str, pathlib.Path], entry: Mapping[str, Any]
) -> None:
    """Append one dispatch record to the cache dir's stats trail.

    The read-modify-write is serialized by an ``O_EXCL`` lockfile (see
    :class:`_StatsLock`), so concurrent sweeps sharing a cache directory
    append rather than overwrite each other; the trail is trimmed to the
    last :data:`_STATS_KEEP` records *after* the merge, and the final
    write is still an atomic ``os.replace``.
    """
    root = pathlib.Path(path)
    root.mkdir(parents=True, exist_ok=True)
    with _StatsLock(root):
        payload = load_dispatch_stats(root)
        payload["schema"] = 1
        payload["runs"] = (payload["runs"] + [dict(entry)])[-_STATS_KEEP:]
        stats_path = root / DISPATCH_STATS_FILE
        fd, tmp = tempfile.mkstemp(dir=root, prefix=".dispatch-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, stats_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
