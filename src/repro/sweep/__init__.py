"""Parallel parameter sweeps over experiment cells.

The paper's results are grids — load × latency × buffer-size behind
Figures 3–5.  This package runs such grids as first-class objects: a
declarative :class:`~repro.sweep.grid.Sweep` enumerates the cells, a
deterministic executor (:mod:`repro.sweep.executor`) runs them serially or
across a process pool with hash-derived per-replicate seeds, and an
aggregating :class:`~repro.sweep.result.SweepResult` carries mean / 95 % CI
per metric with a lossless JSON round trip.

Reproducing Figure 4(a) is one sweep call::

    from repro.analysis.experiments import figure_4_sweep

    result = figure_4_sweep(workers=4)     # the whole Figure 4 grid
    idle = result.select(consumer_rate=28, semantic=True)
    print(idle.value("producer_idle_pct"))

(or simply ``figure_4a(workers=4)`` — every grid experiment of
:mod:`repro.analysis.experiments` is built on this API).

Full-stack grids use :class:`~repro.sweep.scenario.ScenarioSweep`, whose
cells are declarative :class:`~repro.scenario.Scenario` specs; every cell
is checked against the executable specification of
:mod:`repro.core.spec` as it runs, so a sweep doubles as an invariant
fuzzing harness::

    from repro.sweep import ScenarioSweep

    result = (
        ScenarioSweep(
            base={"until": 10.0, "workload": "game",
                  "workload_params": {"rounds": 300},
                  "consumer_rate": 200.0},
            seeds=3,
        )
        .axis("n", [3, 5, 8])
        .axis("latency_model", ["constant", "lognormal"])
        .run(workers=4)
    )
    assert result.ok                       # SVS/FIFO-SR/... held everywhere
    result.write_json("sweep.json")        # archivable, diffable

Determinism is scheduling-independent: seeds are derived by hashing cell
identity, so ``workers=0`` and ``workers=8`` produce byte-identical
aggregated JSON.

Repeat runs are memoisable: ``run(..., cache="path/to/dir")`` (or an
explicit :class:`~repro.sweep.cache.SweepCache`) stores every completed
(cell, replicate) as a content-addressed JSON shard keyed by the cell
params, replicate seed, runner identity, context token and a code
fingerprint over ``src/repro/**`` — a warm re-run computes nothing and
merges byte-identically, while any param/seed/code change recomputes
exactly the affected cells.  ``Sweep.dirty_cells(cache, runner)``
partitions a grid into cached/dirty up front, and the ``repro-sweep``
CLI (:mod:`repro.sweep.cli`) reports hit rates and garbage-collects
stale fingerprints.  See ``docs/sweeps-cache.md``.

When a cell dies inside a worker, the raised
:class:`~repro.sweep.executor.SweepCellError` names the failing cell as a
JSON dict plus its replicate and derived seed — copy the dict back into a
single-cell sweep to reproduce.  A shared ``context`` object may expose a
``prepare_worker()`` hook, invoked once per worker process (and once for
serial runs), to warm per-process caches before the first cell runs.

Cells can leave this machine: ``run(dispatch="subprocess", workers=4)``
(or ``dispatch="ssh", dispatch_params={"hostfile": "hosts.txt"}``) fans
cells out through a pluggable dispatch backend (:mod:`repro.sweep.dispatch`)
speaking a newline-delimited JSON frame protocol (:mod:`repro.sweep.worker`)
— cache-aware, straggler-resistant, crash-tolerant, and still
byte-identical to a serial run.  See ``docs/sweeps-dispatch.md``.

The architecture and the kernel hot path behind cell execution are
documented in ``docs/architecture.md`` and ``docs/kernel.md``.
"""

from repro.sweep.cache import SweepCache, code_fingerprint, context_token
from repro.sweep.dispatch import (
    DispatchBackend,
    DispatchError,
    DispatchStats,
    LocalPoolDispatch,
    SshDispatch,
    SubprocessDispatch,
    parse_hostfile,
)
from repro.sweep.executor import (
    SweepCellError,
    SweepInvariantError,
    flatten_metrics,
    run_sweep,
)
from repro.sweep.grid import Sweep, SweepError, canonical_params, derive_seed
from repro.sweep.result import (
    SCHEMA_VERSION,
    CellResult,
    CellRun,
    MetricStats,
    SweepResult,
    summarise,
    t_critical,
)
from repro.sweep.scenario import SCENARIO_CELL_KEYS, ScenarioSweep, scenario_cell

__all__ = [
    "Sweep",
    "SweepCache",
    "SweepError",
    "DispatchBackend",
    "DispatchError",
    "DispatchStats",
    "LocalPoolDispatch",
    "SubprocessDispatch",
    "SshDispatch",
    "parse_hostfile",
    "SweepResult",
    "code_fingerprint",
    "context_token",
    "SweepCellError",
    "SweepInvariantError",
    "CellResult",
    "CellRun",
    "MetricStats",
    "SCHEMA_VERSION",
    "SCENARIO_CELL_KEYS",
    "ScenarioSweep",
    "scenario_cell",
    "run_sweep",
    "flatten_metrics",
    "canonical_params",
    "derive_seed",
    "summarise",
    "t_critical",
]
