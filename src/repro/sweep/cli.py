"""``repro-sweep``: maintenance CLI for the sweep cell cache.

Two subcommands over a cache directory (see :mod:`repro.sweep.cache`):

``repro-sweep stats DIR``
    Inventory: shard count and bytes, code-fingerprint breakdown (how
    many shards the current code can still hit), and the recorded
    hit/miss counters with the overall hit rate.
    ``--assert-hit-rate X`` exits non-zero when the recorded rate is
    below ``X``; combined with ``--since SNAPSHOT`` (a file written by an
    earlier ``stats --json``) the rate covers only the lookups recorded
    *after* the snapshot — how CI's warm-cache lane asserts that the
    second pass alone hit ≥90%.

    When the directory carries a ``dispatch-stats.json`` trail (written
    by ``run_sweep(dispatch=...)``), ``stats`` also reports per-backend
    dispatch timing: cells dispatched / stolen / re-issued, and the last
    run's per-worker wall and busy times.

``repro-sweep gc DIR``
    Evict shards whose code fingerprint no longer matches the installed
    sources (plus unreadable ones).  ``--all`` clears the cache
    entirely; ``--dry-run`` only reports.

Both accept ``--json`` for machine-readable output.  Also reachable as
``python -m repro.sweep.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sweep.cache import cache_stats, gc as cache_gc

__all__ = ["main"]


def _human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def _dispatch_summary(path) -> Optional[dict]:
    """Aggregate the ``dispatch-stats.json`` trail by backend (None if no
    dispatched runs were ever recorded for this cache)."""
    from repro.sweep.dispatch import load_dispatch_stats

    runs = load_dispatch_stats(path).get("runs", [])
    if not runs:
        return None
    by_backend: dict = {}
    for run in runs:
        agg = by_backend.setdefault(
            run.get("backend", "?"),
            {"runs": 0, "dispatched": 0, "stolen": 0, "reissued": 0,
             "duplicates": 0, "wall_s": 0.0},
        )
        agg["runs"] += 1
        for key in ("dispatched", "stolen", "reissued", "duplicates"):
            agg[key] += int(run.get(key, 0))
        agg["wall_s"] = round(agg["wall_s"] + float(run.get("wall_s", 0.0)), 6)
    return {"by_backend": by_backend, "last": runs[-1]}


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = cache_stats(args.dir)
    dispatch = _dispatch_summary(args.dir)
    if dispatch is not None:
        stats["dispatch"] = dispatch
    if args.since:
        with open(args.since, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        baseline = snapshot.get("counters", snapshot)
        counters = stats["counters"]
        # The delta-window rate divides delta hits by delta lookups
        # (hits + misses accrued strictly after the snapshot) — never by
        # the cumulative counters, which would dilute a warm pass with
        # cold history.  A counter that moved *backwards* means the stats
        # file was reset (cache cleared) after the snapshot; clamping at
        # zero keeps the reported window sane instead of producing
        # negative lookups or a rate above 100 %.
        delta = {
            name: max(0, counters[name] - int(baseline.get(name, 0)))
            for name in ("hits", "misses", "stores", "corrupt", "runs")
        }
        lookups = delta["hits"] + delta["misses"]
        stats["since"] = delta
        stats["since_hit_rate"] = (delta["hits"] / lookups) if lookups else None
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        counters = stats["counters"]
        print(f"cache: {stats['path']}")
        print(
            f"  shards: {stats['shards']} ({_human_bytes(stats['bytes'])}), "
            f"{stats['stale_shards']} stale, "
            f"{stats['unreadable_shards']} unreadable"
        )
        print(f"  code fingerprint: {stats['code_fingerprint'][:16]}...")
        print(
            f"  recorded over {counters['runs']} runs: "
            f"{counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['stores']} stores, {counters['corrupt']} corrupt"
        )
        rate = stats["hit_rate"]
        print(f"  hit rate: {f'{rate:.1%}' if rate is not None else 'n/a'}")
        if args.since:
            delta = stats["since"]
            since_rate = stats["since_hit_rate"]
            print(
                f"  since snapshot: {delta['hits']} hits, "
                f"{delta['misses']} misses over {delta['runs']} runs "
                f"({f'{since_rate:.1%}' if since_rate is not None else 'n/a'})"
            )
        if dispatch is not None:
            print("  dispatch:")
            for backend, agg in sorted(dispatch["by_backend"].items()):
                print(
                    f"    {backend}: {agg['runs']} runs, "
                    f"{agg['dispatched']} dispatched, {agg['stolen']} stolen, "
                    f"{agg['reissued']} re-issued, "
                    f"{agg['duplicates']} duplicate results, "
                    f"{agg['wall_s']:.2f}s wall"
                )
            last = dispatch["last"]
            for label, w in sorted(last.get("per_worker", {}).items()):
                flag = " CRASHED" if w.get("crashed") else ""
                print(
                    f"    last run [{last.get('backend', '?')}] {label}: "
                    f"{w.get('cells', 0)} cells, "
                    f"{w.get('busy_s', 0.0):.2f}s busy / "
                    f"{w.get('wall_s', 0.0):.2f}s wall{flag}"
                )
    if args.assert_hit_rate is not None:
        rate = stats["since_hit_rate"] if args.since else stats["hit_rate"]
        if rate is None or rate < args.assert_hit_rate:
            print(
                f"hit rate {'n/a' if rate is None else f'{rate:.1%}'} below "
                f"required {args.assert_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    report = cache_gc(args.dir, remove_all=args.all, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        verb = "would evict" if args.dry_run else "evicted"
        print(
            f"{verb} {report['evicted']} shards "
            f"({_human_bytes(report['bytes'])}), kept {report['kept']}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Maintain a repro.sweep cell cache directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="report shard inventory and hit rates")
    stats.add_argument("dir", help="cache directory")
    stats.add_argument("--json", action="store_true", help="JSON output")
    stats.add_argument(
        "--assert-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 unless the recorded hit rate is at least RATE (0..1); "
        "with --since, only lookups after the snapshot count",
    )
    stats.add_argument(
        "--since",
        default=None,
        metavar="SNAPSHOT",
        help="a previous `stats --json` dump; report/assert the delta",
    )
    stats.set_defaults(func=_cmd_stats)

    gc = sub.add_parser("gc", help="evict stale-fingerprint shards")
    gc.add_argument("dir", help="cache directory")
    gc.add_argument("--all", action="store_true", help="clear every shard")
    gc.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    gc.add_argument("--json", action="store_true", help="JSON output")
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
