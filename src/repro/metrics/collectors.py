"""Measurement primitives used by experiments and benchmarks.

All collectors take explicit timestamps (simulated time) rather than
reading a clock, so they work identically under the discrete-event
simulator and in offline trace analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "TimeWeightedStat",
    "BusyTracker",
    "Histogram",
    "SummaryStats",
    "summarize",
]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class TimeWeightedStat:
    """Time-weighted mean/max of a piecewise-constant signal.

    Used for buffer occupancy (Figure 4(b) reports occupancy in messages):
    call :meth:`update` whenever the signal changes, then :meth:`finish`.
    """

    __slots__ = (
        "_last_time", "_value", "_weighted_sum", "_elapsed", "maximum", "minimum"
    )

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._value = initial
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self.maximum = initial
        self.minimum = initial

    @property
    def current(self) -> float:
        return self._value

    def update(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._weighted_sum += self._value * dt
        self._elapsed += dt
        self._last_time = time
        self._value = value
        if value > self.maximum:
            self.maximum = value
        if value < self.minimum:
            self.minimum = value

    def finish(self, time: float) -> None:
        """Account the signal up to ``time`` without changing it."""
        self.update(time, self._value)

    @property
    def mean(self) -> float:
        if self._elapsed == 0:
            return self._value
        return self._weighted_sum / self._elapsed


class BusyTracker:
    """Tracks the fraction of time an actor spends in a given state.

    The throughput experiments use one of these per producer to measure
    *blocked* (flow-controlled) time — Figure 4(a)'s "producer idle %" is
    ``1 -`` blocked fraction presented from the producer's perspective; see
    :mod:`repro.analysis.throughput` for the exact mapping.
    """

    __slots__ = ("_start", "_busy_since", "total_busy", "intervals")

    def __init__(self, start_time: float = 0.0) -> None:
        self._start = start_time
        self._busy_since: Optional[float] = None
        self.total_busy = 0.0
        self.intervals: List[Tuple[float, float]] = []

    @property
    def busy(self) -> bool:
        return self._busy_since is not None

    def enter(self, time: float) -> None:
        if self._busy_since is None:
            self._busy_since = time

    def leave(self, time: float) -> None:
        if self._busy_since is None:
            return
        if time < self._busy_since:
            raise ValueError("interval ends before it starts")
        self.total_busy += time - self._busy_since
        self.intervals.append((self._busy_since, time))
        self._busy_since = None

    def finish(self, time: float) -> None:
        if self._busy_since is not None:
            self.leave(time)
            self._busy_since = None

    def fraction(self, end_time: float) -> float:
        elapsed = end_time - self._start
        if elapsed <= 0:
            return 0.0
        pending = 0.0
        if self._busy_since is not None:
            pending = max(0.0, end_time - self._busy_since)
        return (self.total_busy + pending) / elapsed


class Histogram:
    """Integer-bucketed histogram with percentage views.

    Figures 3(a) and 3(b) are both percentage histograms; this class turns
    raw observations into the paper's "% of rounds" / "% of messages" rows.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def observe(self, value: int, count: int = 1) -> None:
        self._buckets[value] = self._buckets.get(value, 0) + count
        self.total += count

    def count(self, value: int) -> int:
        return self._buckets.get(value, 0)

    def percentage(self, value: int) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self._buckets.get(value, 0) / self.total

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._buckets.items())

    def percentages(self) -> List[Tuple[int, float]]:
        return [(v, self.percentage(v)) for v, _ in self.items()]

    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return sum(v * c for v, c in self._buckets.items()) / self.total

    def quantile(self, q: float) -> int:
        """Smallest bucket value covering fraction ``q`` of observations.

        Boundary semantics: the result is the smallest bucket value ``v``
        whose cumulative count reaches ``max(1, ceil(q * total))``
        observations — so ``quantile(0.0)`` is the minimum observed value
        (one observation, not zero, is required) and ``quantile(1.0)`` the
        maximum.  The threshold is computed in exact integer arithmetic:
        ``q`` is first snapped to the rational it was written as (0.9 is
        stored as a binary float a hair *above* 9/10, so the naive
        ``seen >= q * total`` comparison demands 100 of 110 observations
        where 99 suffice), then ``ceil`` is taken over integers with no
        float product anywhere.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.total == 0:
            return 0
        # Fraction(q).limit_denominator recovers the decimal/rational the
        # caller wrote (9/10 from the float nearest 0.9); -(-a // b) is
        # ceil(a / b) on exact integers.
        frac = Fraction(q).limit_denominator(10**12)
        need = -(-frac.numerator * self.total // frac.denominator)
        if need < 1:
            need = 1
        seen = 0
        for value, count in self.items():
            seen += count
            if seen >= need:
                return value
        return self.items()[-1][0]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float


def summarize(sample: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` (population stdev; 0 for n<2)."""
    n = len(sample)
    if n == 0:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0)
    mean = sum(sample) / n
    var = sum((x - mean) ** 2 for x in sample) / n if n > 1 else 0.0
    return SummaryStats(n, mean, math.sqrt(var), min(sample), max(sample))
