"""Metrics: counters, time-weighted statistics, histograms."""

from repro.metrics.collectors import (
    BusyTracker,
    Counter,
    Histogram,
    SummaryStats,
    TimeWeightedStat,
    summarize,
)

__all__ = [
    "Counter",
    "TimeWeightedStat",
    "BusyTracker",
    "Histogram",
    "SummaryStats",
    "summarize",
]
