"""Built-in named fault profiles.

A *profile* is a parameterised factory producing a
:class:`~repro.faults.FaultPlan`, registered in
:data:`repro.registry.fault_profiles`.  Profiles make whole fault
schedules addressable by name — from the Scenario builder
(``.faults("partition-heal", at=2.0, side=[4])``), from sweep cells
(``{"faults": {"profile": "lossy-links", "params": {"loss": 0.05}}}``)
and therefore as sweep axes (``.axis("faults.params.loss", [...])``).

Third-party profiles register with the usual decorator::

    from repro.registry import fault_profiles
    from repro.faults import FaultPlan, Crash, Recover

    @fault_profiles.register("flapping")
    def _flapping(pid=0, period=1.0, cycles=3):
        events = []
        for k in range(cycles):
            events.append(Crash(at=k * period, pid=pid))
            events.append(Recover(at=k * period + period / 2, pid=pid))
        return FaultPlan(events)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.plan import (
    Crash,
    FaultPlan,
    FaultPlanError,
    Heal,
    LinkFault,
    Partition,
    Recover,
    ViewChange,
)
from repro.registry import fault_profiles

__all__: list = []


@fault_profiles.register("partition-heal")
def _partition_heal(
    at: float = 1.0,
    duration: float = 1.0,
    side: Sequence[int] = (0,),
    reconfigure_after: Optional[float] = 0.05,
    trigger_pid: int = 0,
) -> FaultPlan:
    """One symmetric partition episode: cut at ``at``, heal ``duration``
    later, optionally trigger a view change ``reconfigure_after`` seconds
    after the heal (the survivors' reaction that flushes losses)."""
    if duration <= 0:
        raise FaultPlanError(f"partition duration must be positive: {duration!r}")
    events = [
        Partition(at=at, sides=(tuple(side),)),
        # Heal exactly the sides this profile cut (resolved against the
        # group at fire time, like the Partition), so stacked profiles and
        # manual cuts are left alone.
        Heal(at=at + duration, sides=(tuple(side),)),
    ]
    if reconfigure_after is not None:
        if reconfigure_after < 0:
            raise FaultPlanError(
                f"reconfigure_after must be non-negative: {reconfigure_after!r}"
            )
        events.append(ViewChange(at=at + duration + reconfigure_after, pid=trigger_pid))
    return FaultPlan(events)


@fault_profiles.register("lossy-links")
def _lossy_links(
    loss: float = 0.05,
    duplicate: float = 0.0,
    reorder: float = 0.0,
    at: float = 0.0,
    until: Optional[float] = None,
    data_only: bool = True,
) -> FaultPlan:
    """Network-wide probabilistic faults from ``at`` (to ``until``, when
    given).  ``data_only=True`` (default) keeps the control plane reliable;
    set it to False — and a ``viewchange_retry`` on the stack — to degrade
    everything."""
    events = [
        LinkFault(
            at=at, loss=loss, duplicate=duplicate, reorder=reorder,
            data_only=data_only,
        )
    ]
    if until is not None:
        if until <= at:
            raise FaultPlanError(
                f"lossy window must end after it starts: at={at!r} until={until!r}"
            )
        events.append(LinkFault(at=until, data_only=data_only))
    return FaultPlan(events)


@fault_profiles.register("crash-rejoin")
def _crash_rejoin(
    pid: int = 0,
    crash_at: float = 1.0,
    rejoin_at: float = 2.0,
    retry: Optional[float] = 0.5,
    via: Optional[int] = None,
) -> FaultPlan:
    """Crash ``pid`` and bring it back as a fresh incarnation later."""
    if rejoin_at <= crash_at:
        raise FaultPlanError(
            f"rejoin must follow the crash: crash_at={crash_at!r} "
            f"rejoin_at={rejoin_at!r}"
        )
    return FaultPlan(
        [
            Crash(at=crash_at, pid=pid),
            Recover(at=rejoin_at, pid=pid, via=via, retry=retry),
        ]
    )


@fault_profiles.register("partition-churn")
def _partition_churn(
    side: Sequence[int] = (0,),
    at: float = 1.0,
    period: float = 2.0,
    cycles: int = 3,
    closed_fraction: float = 0.5,
    loss: float = 0.0,
    reconfigure_after: float = 0.05,
    trigger_pid: int = 0,
    trigger_during_partition: bool = False,
) -> FaultPlan:
    """Repeated partition-heal churn, the regime of the churn experiment.

    Every ``period`` seconds (``cycles`` times, starting at ``at``) the
    ``side`` processes are cut off for ``closed_fraction`` of the period,
    then healed, then ``trigger_pid`` reconfigures — so each cycle costs
    one view change whose flush repairs the partition's losses.  ``loss``
    optionally adds network-wide data-plane loss for the whole run.

    With ``trigger_during_partition=True`` the view change is triggered
    ``reconfigure_after`` seconds *into* each partition instead: the
    change then stalls (the cut side's PREDs cannot arrive and nobody
    suspects live processes) until the heal lets retransmission complete
    it — which requires a ``viewchange_retry`` on the stack, since the
    original INIT flood died against the cut.
    """
    if period <= 0:
        raise FaultPlanError(f"churn period must be positive: {period!r}")
    if cycles < 1:
        raise FaultPlanError(f"churn needs at least one cycle: {cycles!r}")
    if not 0.0 < closed_fraction < 1.0:
        raise FaultPlanError(
            f"closed_fraction must be in (0, 1): {closed_fraction!r}"
        )
    events = []
    if loss:
        events.append(LinkFault(at=0.0, loss=loss, data_only=True))
    triggers = churn_trigger_times(
        at, period, cycles, closed_fraction, reconfigure_after,
        trigger_during_partition,
    )
    for k in range(cycles):
        start = at + k * period
        heal_at = start + period * closed_fraction
        events.append(Partition(at=start, sides=(tuple(side),)))
        # Named heal: only this profile's cut, not every cut on the net.
        events.append(Heal(at=heal_at, sides=(tuple(side),)))
        events.append(ViewChange(at=triggers[k], pid=trigger_pid))
    return FaultPlan(events)


def churn_trigger_times(
    at: float = 1.0,
    period: float = 2.0,
    cycles: int = 3,
    closed_fraction: float = 0.5,
    reconfigure_after: float = 0.05,
    trigger_during_partition: bool = False,
) -> list:
    """The view-change trigger instants of ``partition-churn`` — used by
    the churn experiment to turn install timestamps into latencies."""
    offset = (
        reconfigure_after
        if trigger_during_partition
        else period * closed_fraction + reconfigure_after
    )
    return [at + k * period + offset for k in range(cycles)]
