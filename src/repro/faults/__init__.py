"""Declarative fault injection: partitions, lossy links, crash-recover churn.

The paper's argument is about how Semantic View Synchrony behaves when the
environment misbehaves; this package makes that misbehaviour a first-class,
declarative, *sweepable* input.  A :class:`FaultPlan` holds typed events —

===============  ========================================================
:class:`Crash`        crash-stop a process (Section 3.1)
:class:`Recover`      revive it and rejoin through the GCS stack
:class:`Partition`    symmetric link cuts between pid groups
:class:`Heal`         undo partitions
:class:`LinkFault`    per-edge probabilistic loss / duplication / reorder
:class:`Perturb`      the paper's transient consumer stall (Section 2)
:class:`ViewChange`   an explicit reconfiguration trigger
===============  ========================================================

— validated up front (:class:`FaultPlanError` on bad times, rates or
pids), installable once per plan, and serializable to plain dicts so whole
fault schedules ride through sweep cells and axes.  Named parameterised
profiles live in :data:`repro.registry.fault_profiles`
(``"partition-heal"``, ``"lossy-links"``, ``"crash-rejoin"``,
``"partition-churn"``; importing this package registers them).

Entry points: ``Scenario().faults(...)`` declaratively,
:meth:`FaultPlan.install` imperatively, ``docs/faults.md`` for the event
taxonomy and the determinism contract.
"""

from repro.faults.plan import (
    Crash,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    Heal,
    LinkFault,
    Partition,
    Perturb,
    Recover,
    ViewChange,
    data_messages_only,
)
from repro.faults import profiles as _profiles  # noqa: F401 (registry side-effects)
from repro.faults.profiles import churn_trigger_times
from repro.registry import fault_profiles

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultEvent",
    "Crash",
    "Recover",
    "Partition",
    "Heal",
    "LinkFault",
    "Perturb",
    "ViewChange",
    "data_messages_only",
    "fault_profiles",
    "churn_trigger_times",
]
