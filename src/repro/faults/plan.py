"""Declarative fault plans: typed, validated, simulator-scheduled events.

A :class:`FaultPlan` is an ordered collection of fault and membership
events — :class:`Crash`, :class:`Recover`, :class:`Partition`,
:class:`Heal`, :class:`LinkFault`, :class:`Perturb`, :class:`ViewChange` —
that is validated up front and installed onto a
:class:`~repro.gcs.stack.GroupStack` in one call.  It subsumes the legacy
:class:`~repro.sim.failure.CrashSchedule` and
:class:`~repro.sim.failure.PerturbationSchedule` (perturbations still run
through the latter's reference-counted pause/resume machinery) and adds
the environment misbehaviour the paper argues about but the repo could not
previously model: symmetric network partitions, per-edge probabilistic
loss/duplication/reordering, and crash-recover churn with state transfer.

Determinism contract
--------------------

Every probabilistic draw a plan causes comes from a dedicated
``faults.<src>.<dst>`` child RNG stream of the simulator seed (see
:meth:`repro.sim.network.Network.set_link_fault`), derived by SHA-256
exactly like every other stream — so a run under any fault plan is
byte-reproducible from its seed, and adding a fault never perturbs the
latency or workload streams.

Events serialize to plain dicts (:meth:`FaultPlan.to_dicts` /
:meth:`FaultPlan.from_dicts`), which is what makes fault plans sweepable:
a sweep cell carries the dict form, and axes can address into it with
dotted paths (``"faults.params.loss"``).

Validation happens in two stages: event constructors reject malformed
fields (negative or NaN times, rates outside ``[0, 1]``), and
:meth:`FaultPlan.install` rejects unknown process ids, perturbations
without a pausable target, and double installation — all with
:class:`FaultPlanError` (a :class:`ValueError`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.core.message import DataMessage, Envelope
from repro.sim.failure import Perturbation, PerturbationSchedule, check_time
from repro.sim.network import LinkFaultPolicy

__all__ = [
    "FaultPlanError",
    "FaultEvent",
    "Crash",
    "Recover",
    "Partition",
    "Heal",
    "LinkFault",
    "Perturb",
    "ViewChange",
    "FaultPlan",
    "data_messages_only",
]


class FaultPlanError(ValueError):
    """An invalid fault plan: bad event fields, unknown pids, double install."""


def _check_time(value: Any, what: str) -> None:
    check_time(value, what, FaultPlanError)


def _check_pid(value: Any, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise FaultPlanError(f"{what} must be a non-negative int pid: {value!r}")


def data_messages_only(payload: Any) -> bool:
    """Payload filter: true only for SVS data traffic.

    Pass as a :class:`LinkFault`'s scope (``data_only=True``) to degrade
    the data plane while keeping control traffic (INIT/PRED/WELCOME,
    consensus, failure detection) reliable — the regime where SVS's own
    repair machinery, not retransmission, must absorb the losses.
    """
    return isinstance(payload, Envelope) and isinstance(payload.body, DataMessage)


@dataclass(frozen=True)
class FaultEvent:
    """Base of every plan event: something that happens at time ``at``."""

    at: float

    def __post_init__(self) -> None:
        _check_time(self.at, f"{type(self).__name__}.at")

    #: Tag used by the dict round trip; set per subclass.
    kind = "event"

    def referenced_pids(self) -> Tuple[int, ...]:
        return ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class Crash(FaultEvent):
    """Crash-stop ``pid`` at time ``at`` (Section 3.1 of the paper)."""

    pid: int = 0
    kind = "crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pid(self.pid, "Crash.pid")

    def referenced_pids(self) -> Tuple[int, ...]:
        return (self.pid,)


@dataclass(frozen=True)
class Recover(FaultEvent):
    """Revive ``pid`` and rejoin it through the GCS stack.

    ``via`` optionally pins the sponsoring member; ``retry`` is the rejoin
    watchdog period (see :meth:`repro.gcs.stack.GroupStack.rejoin`) —
    ``None`` attempts the join exactly once.
    """

    pid: int = 0
    via: Optional[int] = None
    retry: Optional[float] = 0.5
    kind = "recover"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pid(self.pid, "Recover.pid")
        if self.via is not None:
            _check_pid(self.via, "Recover.via")
        if self.retry is not None:
            _check_time(self.retry, "Recover.retry")
            if self.retry == 0:
                raise FaultPlanError("Recover.retry must be positive or None")

    def referenced_pids(self) -> Tuple[int, ...]:
        return (self.pid,) if self.via is None else (self.pid, self.via)


def _normalise_sides(sides: Any, what: str) -> Tuple[Tuple[int, ...], ...]:
    if not isinstance(sides, (list, tuple)) or not sides:
        raise FaultPlanError(f"{what} needs at least one side: {sides!r}")
    out: List[Tuple[int, ...]] = []
    seen: set = set()
    for side in sides:
        if not isinstance(side, (list, tuple)) or not side:
            raise FaultPlanError(f"{what} sides must be non-empty lists: {side!r}")
        for pid in side:
            _check_pid(pid, f"{what} member")
            if pid in seen:
                raise FaultPlanError(f"{what} sides overlap on pid {pid}")
            seen.add(pid)
        out.append(tuple(side))
    return tuple(out)


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Symmetrically cut every link crossing the given sides at ``at``.

    ``sides`` is a sequence of disjoint pid groups.  With a single side,
    the complement (every other stack member) forms the second side at
    install time — convenient for "isolate process 4" profiles that do not
    want to spell out the group size.
    """

    sides: Tuple[Tuple[int, ...], ...] = ()
    kind = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "sides", _normalise_sides(self.sides, "Partition")
        )

    def referenced_pids(self) -> Tuple[int, ...]:
        return tuple(pid for side in self.sides for pid in side)


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Undo partitions at ``at``: the named ``sides``, or every cut link
    (including manual :meth:`~repro.sim.network.Network.cut` calls) when
    ``sides`` is ``None``."""

    sides: Optional[Tuple[Tuple[int, ...], ...]] = None
    kind = "heal"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sides is not None:
            object.__setattr__(
                self, "sides", _normalise_sides(self.sides, "Heal")
            )

    def referenced_pids(self) -> Tuple[int, ...]:
        if self.sides is None:
            return ()
        return tuple(pid for side in self.sides for pid in side)


@dataclass(frozen=True)
class LinkFault(FaultEvent):
    """Install probabilistic loss/duplication/reordering at ``at``.

    ``src``/``dst`` scope the policy exactly as
    :meth:`~repro.sim.network.Network.set_link_fault`: both ``None`` —
    every edge; one given — that end wildcarded; both given — one directed
    edge.  ``data_only=True`` restricts the faults to SVS data messages,
    keeping the control plane reliable.  Installing all-zero rates later
    on the same scope switches the faults off again.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_spread: float = 0.004
    data_only: bool = False
    kind = "link-fault"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.src is not None:
            _check_pid(self.src, "LinkFault.src")
        if self.dst is not None:
            _check_pid(self.dst, "LinkFault.dst")
        # Rates and spread are validated by the policy the network will
        # build from this event — constructing one here reuses exactly the
        # checks that would otherwise fire mid-run at the event's time.
        try:
            LinkFaultPolicy(
                loss=self.loss,
                duplicate=self.duplicate,
                reorder=self.reorder,
                reorder_spread=self.reorder_spread,
            )
        except ValueError as exc:
            raise FaultPlanError(f"LinkFault: {exc}") from None

    def referenced_pids(self) -> Tuple[int, ...]:
        return tuple(p for p in (self.src, self.dst) if p is not None)


@dataclass(frozen=True)
class Perturb(FaultEvent):
    """Stall ``pid``'s consumer for ``[at, at + duration)`` — the paper's
    transient performance perturbation (Section 2)."""

    pid: int = 0
    duration: float = 0.0
    kind = "perturb"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pid(self.pid, "Perturb.pid")
        _check_time(self.duration, "Perturb.duration")
        if self.duration == 0:
            raise FaultPlanError("Perturb.duration must be positive")

    def referenced_pids(self) -> Tuple[int, ...]:
        return (self.pid,)


@dataclass(frozen=True)
class ViewChange(FaultEvent):
    """Have ``pid`` trigger a view change at ``at`` (membership event, not
    a fault — included so churn profiles can pair heals with explicit
    reconfigurations)."""

    pid: int = 0
    leave: Tuple[int, ...] = ()
    kind = "view-change"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pid(self.pid, "ViewChange.pid")
        for pid in self.leave:
            _check_pid(pid, "ViewChange.leave member")
        object.__setattr__(self, "leave", tuple(self.leave))

    def referenced_pids(self) -> Tuple[int, ...]:
        return (self.pid, *self.leave)


_EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (Crash, Recover, Partition, Heal, LinkFault, Perturb, ViewChange)
}


class FaultPlan:
    """An immutable, validated sequence of fault events.

    Build one from events, combine with ``+``, install once onto a stack::

        plan = FaultPlan([
            Partition(at=2.0, sides=[(0, 1, 2), (3, 4)]),
            LinkFault(at=0.0, loss=0.05, data_only=True),
            Heal(at=4.0),
            Crash(at=6.0, pid=4),
            Recover(at=8.0, pid=4),
        ])
        plan.install(stack, consumers=consumers)

    The Scenario builder does all of this behind
    :meth:`~repro.scenario.Scenario.faults`.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        materialised = tuple(events)
        for event in materialised:
            if not isinstance(event, FaultEvent):
                raise FaultPlanError(
                    f"fault plans hold FaultEvent instances, got "
                    f"{type(event).__name__}: {event!r}"
                )
        self.events: Tuple[FaultEvent, ...] = materialised
        self._installed = False

    # ------------------------------------------------------------------
    # Composition and introspection
    # ------------------------------------------------------------------

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.events + other.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def referenced_pids(self) -> Tuple[int, ...]:
        """Every pid any event names, sorted and deduplicated."""
        return tuple(
            sorted({pid for e in self.events for pid in e.referenced_pids()})
        )

    def perturbed_pids(self) -> Tuple[int, ...]:
        return tuple(
            sorted({e.pid for e in self.events if isinstance(e, Perturb)})
        )

    @property
    def installed(self) -> bool:
        return self._installed

    # ------------------------------------------------------------------
    # Dict round trip (the sweepable form)
    # ------------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, dicts: Sequence[Mapping[str, Any]]) -> "FaultPlan":
        events: List[FaultEvent] = []
        for entry in dicts:
            if not isinstance(entry, Mapping):
                raise FaultPlanError(f"fault event dict expected: {entry!r}")
            data = dict(entry)
            kind = data.pop("kind", None)
            event_type = _EVENT_TYPES.get(kind)
            if event_type is None:
                known = ", ".join(sorted(_EVENT_TYPES))
                raise FaultPlanError(
                    f"unknown fault event kind: {kind!r} (known: {known})"
                )
            known_fields = {f.name for f in fields(event_type)}
            unknown = set(data) - known_fields
            if unknown:
                raise FaultPlanError(
                    f"unknown fields for {kind!r} event: "
                    f"{', '.join(sorted(map(repr, unknown)))}"
                )
            # JSON turns tuples into lists; normalisation happens in the
            # event constructors.
            events.append(event_type(**data))
        return cls(events)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(
        self,
        stack: Any,
        consumers: Optional[Mapping[int, Any]] = None,
    ) -> None:
        """Schedule every event on ``stack``'s simulator.

        ``consumers`` maps pid → pausable consumer and is required iff the
        plan contains :class:`Perturb` events.  Raises
        :class:`FaultPlanError` on unknown pids or a second installation.
        """
        if self._installed:
            raise FaultPlanError("fault plan already installed")
        members = set(stack.members)
        for pid in self.referenced_pids():
            if pid not in members:
                raise FaultPlanError(
                    f"fault plan names unknown process {pid} "
                    f"(members: {sorted(members)})"
                )
        for event in self.events:
            # Single-side partitions/heals cut against the complement; the
            # membership is static, so reject a side that covers the whole
            # group here rather than mid-run at fire time.
            sides = getattr(event, "sides", None)
            if sides is not None and len(sides) == 1 and set(sides[0]) >= members:
                raise FaultPlanError(
                    f"{event.kind} side {sorted(sides[0])} covers the whole "
                    f"group; nothing to cut"
                )
        perturbed = self.perturbed_pids()
        if perturbed and consumers is None:
            raise FaultPlanError(
                "plan contains Perturb events but no consumers were given"
            )
        for pid in perturbed:
            if pid not in (consumers or {}):
                raise FaultPlanError(
                    f"Perturb(pid={pid}) requires a pausable consumer on "
                    f"that process"
                )
        self._installed = True
        sim = stack.sim

        # Perturbations first, grouped per pid through the legacy
        # reference-counted schedule — byte-identical scheduling to the
        # pre-FaultPlan Scenario wiring.
        by_pid: Dict[int, List[Perturbation]] = {}
        for event in self.events:
            if isinstance(event, Perturb):
                by_pid.setdefault(event.pid, []).append(
                    Perturbation(event.at, event.duration)
                )
        for pid in sorted(by_pid):
            PerturbationSchedule(sim, consumers[pid], by_pid[pid]).install()

        for event in self.events:
            if isinstance(event, Perturb):
                continue
            if isinstance(event, Crash):
                sim.schedule_at(event.at, stack.processes[event.pid].crash)
            elif isinstance(event, Recover):
                sim.schedule_at(
                    event.at, self._do_recover, stack, consumers, event
                )
            elif isinstance(event, Partition):
                sim.schedule_at(event.at, self._do_partition, stack, event)
            elif isinstance(event, Heal):
                sim.schedule_at(event.at, self._do_heal, stack, event)
            elif isinstance(event, LinkFault):
                sim.schedule_at(event.at, self._do_link_fault, stack, event)
            elif isinstance(event, ViewChange):
                sim.schedule_at(
                    event.at,
                    stack.processes[event.pid].trigger_view_change,
                    tuple(event.leave),
                )
            else:  # pragma: no cover - new event types must be wired here
                raise FaultPlanError(f"unhandled event type: {event!r}")

    # ------------------------------------------------------------------
    # Event executors (run at simulated time)
    # ------------------------------------------------------------------

    @staticmethod
    def _sides_at_install(stack: Any, sides: Tuple[Tuple[int, ...], ...]):
        if len(sides) == 1:
            # The complement is non-empty: install() rejected whole-group
            # sides against the (static) membership up front.
            named = set(sides[0])
            return (sides[0], tuple(p for p in stack.members if p not in named))
        return sides

    def _do_partition(self, stack: Any, event: Partition) -> None:
        sides = self._sides_at_install(stack, event.sides)
        for i, side_a in enumerate(sides):
            for side_b in sides[i + 1:]:
                stack.network.partition(set(side_a), set(side_b))

    def _do_heal(self, stack: Any, event: Heal) -> None:
        if event.sides is None:
            stack.network.heal_all()
            return
        sides = self._sides_at_install(stack, event.sides)
        for i, side_a in enumerate(sides):
            for side_b in sides[i + 1:]:
                for a in side_a:
                    for b in side_b:
                        stack.network.heal(a, b)

    @staticmethod
    def _do_link_fault(stack: Any, event: LinkFault) -> None:
        stack.network.set_link_fault(
            event.src,
            event.dst,
            loss=event.loss,
            duplicate=event.duplicate,
            reorder=event.reorder,
            reorder_spread=event.reorder_spread,
            filter=data_messages_only if event.data_only else None,
        )

    @staticmethod
    def _do_recover(
        stack: Any, consumers: Optional[Mapping[int, Any]], event: Recover
    ) -> None:
        stack.rejoin(event.pid, via=event.via, retry=event.retry)
        consumer = (consumers or {}).get(event.pid)
        if consumer is not None:
            restart = getattr(consumer, "restart", None)
            if restart is not None:
                restart()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(f"{k}×{n}" for k, n in sorted(kinds.items()))
        return f"FaultPlan({summary or 'empty'})"
