"""Markdown and HTML rendering of a :class:`~repro.report.model.ReportBuilder`.

Markdown is the *deterministic* artefact: volatile sections (cache and
dispatch statistics) are skipped, charts are referenced as relative SVG
files, and no timestamps or environment details are emitted — the same
sweep reported from a serial, pooled, or dispatched run produces the same
bytes, which is what the golden report fixture and the CI ``figure-report``
lane pin.

HTML is the *complete* artefact: one self-contained file with inline SVG,
inline CSS and the volatile observability sections included.
"""

from __future__ import annotations

import html
import pathlib
from typing import Any, Dict, List

from repro.report.charts import render_chart_svg
from repro.report.model import (
    ChartSection,
    ReportBuilder,
    Section,
    StatsSection,
    TableSection,
    TextSection,
    ViolationsSection,
    slugify,
)

__all__ = ["render_markdown", "render_html", "write_report"]

_CSS = """
body{font-family:Helvetica,Arial,sans-serif;margin:2em auto;max-width:60em;
 color:#222;line-height:1.45}
h1{border-bottom:2px solid #1f77b4;padding-bottom:.3em}
h2{margin-top:1.6em;color:#1f77b4}
table{border-collapse:collapse;margin:.8em 0}
th,td{border:1px solid #ccc;padding:.3em .7em;text-align:right}
th:first-child,td:first-child{text-align:left}
th{background:#f0f4f8}
.ok{color:#2a7a2a}.bad{color:#c22}
.notes{color:#666;font-style:italic}
.volatile{background:#fbfbf4;border:1px solid #eee;padding:.2em 1em;
 margin:1em 0}
dl.stats dt{font-weight:bold;float:left;clear:left;width:14em}
dl.stats dd{margin-left:15em}
""".strip()


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------


def _md_table(section: TableSection) -> List[str]:
    lines = []
    header = list(section.header)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in section.rows:
        cells = list(row) + [""] * (len(header) - len(row))
        lines.append(
            "| " + " | ".join(c.replace("|", "\\|") for c in cells) + " |"
        )
    if section.notes:
        lines.append("")
        lines.append(f"*{section.notes}*")
    return lines


def render_markdown(report: ReportBuilder) -> str:
    """The deterministic markdown report (volatile sections skipped)."""
    lines: List[str] = [f"# {report.title}", ""]
    if report.subtitle:
        lines += [report.subtitle, ""]
    for section in report.sections:
        if section.volatile:
            continue
        lines.append(f"## {section.heading}")
        lines.append("")
        if isinstance(section, TextSection):
            lines.append(section.body)
        elif isinstance(section, TableSection):
            lines += _md_table(section)
        elif isinstance(section, ChartSection) and section.chart is not None:
            slug = slugify(section.heading)
            lines.append(f"![{section.chart.title}](charts/{slug}.svg)")
        elif isinstance(section, ViolationsSection):
            if not section.checked:
                lines.append("Property checking was disabled for this run.")
            elif not section.violations:
                lines.append(
                    "No violations — every check of the executable "
                    "specification passed."
                )
            else:
                lines.append(
                    f"**{len(section.violations)} violation(s):**"
                )
                lines.append("")
                for violation in section.violations:
                    lines.append(f"- `{violation}`")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------


def _html_table(section: TableSection) -> List[str]:
    out = ["<table>", "<tr>"]
    for h in section.header:
        out.append(f"<th>{html.escape(h)}</th>")
    out.append("</tr>")
    for row in section.rows:
        out.append("<tr>")
        cells = list(row) + [""] * (len(section.header) - len(row))
        for c in cells:
            out.append(f"<td>{html.escape(c)}</td>")
        out.append("</tr>")
    out.append("</table>")
    if section.notes:
        out.append(f'<p class="notes">{html.escape(section.notes)}</p>')
    return out


def render_html(report: ReportBuilder) -> str:
    """The complete self-contained HTML report (volatile sections too)."""
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(report.title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(report.title)}</h1>",
    ]
    if report.subtitle:
        out.append(f"<p>{html.escape(report.subtitle)}</p>")
    for section in report.sections:
        classes = ' class="volatile"' if section.volatile else ""
        out.append(f"<section{classes}>")
        out.append(f"<h2>{html.escape(section.heading)}</h2>")
        if isinstance(section, TextSection):
            out.append(f"<p>{html.escape(section.body)}</p>")
        elif isinstance(section, StatsSection):
            if section.pairs:
                out.append('<dl class="stats">')
                for key, value in section.pairs:
                    out.append(
                        f"<dt>{html.escape(key)}</dt>"
                        f"<dd>{html.escape(value)}</dd>"
                    )
                out.append("</dl>")
            if section.table is not None:
                out += _html_table(section.table)
        elif isinstance(section, TableSection):
            out += _html_table(section)
        elif isinstance(section, ChartSection) and section.chart is not None:
            out.append(render_chart_svg(section.chart))
        elif isinstance(section, ViolationsSection):
            if not section.checked:
                out.append("<p>Property checking was disabled.</p>")
            elif not section.violations:
                out.append(
                    '<p class="ok">No violations — every check of the '
                    "executable specification passed.</p>"
                )
            else:
                out.append(
                    f'<p class="bad">{len(section.violations)} '
                    "violation(s):</p><ul>"
                )
                for violation in section.violations:
                    out.append(f"<li><code>{html.escape(violation)}</code></li>")
                out.append("</ul>")
        out.append("</section>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def write_report(
    report: ReportBuilder, outdir: Any, basename: str = "report"
) -> Dict[str, Any]:
    """Write ``report.md``, ``report.html`` and ``charts/*.svg``.

    Returns ``{"markdown": path, "html": path, "charts": [paths]}``.  The
    markdown file references the SVGs relatively, so the directory is
    self-contained and publishable as a CI artifact.
    """
    root = pathlib.Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    charts: List[pathlib.Path] = []
    chart_dir = root / "charts"
    for section in report.sections:
        if isinstance(section, ChartSection) and section.chart is not None:
            chart_dir.mkdir(parents=True, exist_ok=True)
            path = chart_dir / f"{slugify(section.heading)}.svg"
            path.write_text(render_chart_svg(section.chart), encoding="utf-8")
            charts.append(path)
    md_path = root / f"{basename}.md"
    md_path.write_text(render_markdown(report), encoding="utf-8")
    html_path = root / f"{basename}.html"
    html_path.write_text(render_html(report), encoding="utf-8")
    return {"markdown": md_path, "html": html_path, "charts": charts}
