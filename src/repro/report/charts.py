"""Dependency-free SVG charts for figure-style report sections.

The paper's evaluation figures are small line plots (two series, one per
protocol) and percentage histograms; this module draws both as
self-contained SVG with nothing but the standard library.  Output is
deterministic: tick positions come from a fixed nice-number routine and
every coordinate is formatted with two decimals, so the same data always
produces the same bytes — a requirement for the golden report fixtures.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.report.model import Chart

__all__ = ["render_chart_svg"]

WIDTH = 640
HEIGHT = 360
MARGIN_L = 62
MARGIN_R = 18
MARGIN_T = 34
MARGIN_B = 46

#: Series colors, in assignment order (reliable first, semantic second in
#: the paper figures).
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """~n axis ticks at 1/2/5×10^k steps covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * mag
        if span / step <= n:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _tick_label(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.6g}"


def _bounds(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]]
) -> Tuple[float, float, float, float]:
    xs = [x for _name, pts in series for x, _y in pts]
    ys = [y for _name, pts in series for _x, y in pts]
    if not xs:
        return 0.0, 1.0, 0.0, 1.0
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def render_chart_svg(chart: Chart) -> str:
    """The chart as one self-contained ``<svg>`` document."""
    series = [
        (name, list(points)) for name, points in chart.series if points
    ]
    x_lo, x_hi, y_lo, y_hi = _bounds(series)
    # Widen the y range to the tick grid so lines never clip the frame.
    y_ticks = _nice_ticks(y_lo, y_hi)
    if y_ticks:
        y_lo = min(y_lo, y_ticks[0])
        y_hi = max(y_hi, y_ticks[-1])
    x_ticks = _nice_ticks(x_lo, x_hi)

    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def sx(x: float) -> float:
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} '
        f'{HEIGHT}" width="{WIDTH}" height="{HEIGHT}" role="img">'
    )
    parts.append(
        '<style>text{font-family:Helvetica,Arial,sans-serif;font-size:12px;'
        "fill:#333}.t{font-size:14px;font-weight:bold}.ax{stroke:#333;"
        "stroke-width:1}.gr{stroke:#ddd;stroke-width:1}</style>"
    )
    parts.append(
        f'<rect x="0" y="0" width="{WIDTH}" height="{HEIGHT}" fill="white"/>'
    )
    title = _escape(chart.title)
    parts.append(
        f'<text class="t" x="{WIDTH / 2:.2f}" y="20" '
        f'text-anchor="middle">{title}</text>'
    )
    # Grid + ticks
    for tx in x_ticks:
        if not x_lo <= tx <= x_hi:
            continue
        px = _fmt(sx(tx))
        parts.append(
            f'<line class="gr" x1="{px}" y1="{MARGIN_T}" x2="{px}" '
            f'y2="{MARGIN_T + plot_h}"/>'
        )
        parts.append(
            f'<text x="{px}" y="{MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{_tick_label(tx)}</text>'
        )
    for ty in y_ticks:
        if not y_lo <= ty <= y_hi:
            continue
        py = _fmt(sy(ty))
        parts.append(
            f'<line class="gr" x1="{MARGIN_L}" y1="{py}" '
            f'x2="{MARGIN_L + plot_w}" y2="{py}"/>'
        )
        parts.append(
            f'<text x="{MARGIN_L - 6}" y="{py}" text-anchor="end" '
            f'dominant-baseline="middle">{_tick_label(ty)}</text>'
        )
    # Axes
    parts.append(
        f'<line class="ax" x1="{MARGIN_L}" y1="{MARGIN_T + plot_h}" '
        f'x2="{MARGIN_L + plot_w}" y2="{MARGIN_T + plot_h}"/>'
    )
    parts.append(
        f'<line class="ax" x1="{MARGIN_L}" y1="{MARGIN_T}" '
        f'x2="{MARGIN_L}" y2="{MARGIN_T + plot_h}"/>'
    )
    if chart.x_label:
        parts.append(
            f'<text x="{MARGIN_L + plot_w / 2:.2f}" y="{HEIGHT - 8}" '
            f'text-anchor="middle">{_escape(chart.x_label)}</text>'
        )
    if chart.y_label:
        parts.append(
            f'<text x="14" y="{MARGIN_T + plot_h / 2:.2f}" '
            f'text-anchor="middle" transform="rotate(-90 14 '
            f'{MARGIN_T + plot_h / 2:.2f})">{_escape(chart.y_label)}</text>'
        )
    # Data
    if chart.kind == "bar" and series:
        name, points = series[0]
        color = PALETTE[0]
        bar_w = max(2.0, plot_w / max(1, len(points)) * 0.7)
        for x, y in points:
            px = sx(x) - bar_w / 2
            py = sy(y)
            parts.append(
                f'<rect x="{_fmt(px)}" y="{_fmt(py)}" width="{_fmt(bar_w)}" '
                f'height="{_fmt(MARGIN_T + plot_h - py)}" fill="{color}" '
                f'fill-opacity="0.85"/>'
            )
    else:
        for i, (name, points) in enumerate(series):
            color = PALETTE[i % len(PALETTE)]
            pts = " ".join(
                f"{_fmt(sx(x))},{_fmt(sy(y))}"
                for x, y in sorted(points)
            )
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>'
            )
            for x, y in points:
                parts.append(
                    f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="3" '
                    f'fill="{color}"/>'
                )
    # Legend (line charts with named series)
    if chart.kind != "bar":
        lx = MARGIN_L + 10
        ly = MARGIN_T + 8
        for i, (name, _points) in enumerate(series):
            color = PALETTE[i % len(PALETTE)]
            y = ly + i * 18
            parts.append(
                f'<line x1="{lx}" y1="{y}" x2="{lx + 22}" y2="{y}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{lx + 28}" y="{y + 4}">{_escape(name)}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
