"""``repro-report``: render result artefacts, watch a running dispatch.

Two subcommands (also reachable as ``python -m repro.report``):

``repro-report render FILE... --out DIR``
    Render one report from any mix of result artefacts — sweep dumps
    (``SweepResult.to_dict`` JSON), scenario / fault-run dumps, or plain
    JSON — into ``DIR/report.md`` + ``DIR/report.html`` + chart SVGs.
    ``--cache-dir DIR`` appends the volatile cache/dispatch
    observability sections (HTML only, so the markdown stays
    deterministic).  ``--title`` overrides the heading.

``repro-report watch DIR``
    Terminal dashboard tailing a sweep cache directory while a dispatch
    runs against it: live shard count and completion rate, cache
    counters, the last run's per-worker cells/busy/wall table and the
    steal / re-issue counters.  Curses full-screen on a tty (``q``
    quits); ``--once`` prints a single plain frame and exits, ``--frames
    N`` prints N frames (both tty-free, what CI and tests use).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.report.model import ReportBuilder
    from repro.report.sources import load_payload, payload_sections

    builder = ReportBuilder(
        args.title or "repro result report",
        subtitle="Rendered by `repro-report render`.",
    )
    status = 0
    for name in args.files:
        path = pathlib.Path(name)
        try:
            payload = load_payload(path)
        except (OSError, ValueError) as exc:
            print(f"repro-report: cannot read {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        for section in payload_sections(path.stem, payload):
            builder.sections.append(section)
    if args.cache_dir:
        builder.add_cache_dir(args.cache_dir)
    written = builder.write(args.out, basename=args.basename)
    print(f"wrote {written['markdown']}")
    print(f"wrote {written['html']}")
    for chart in written["charts"]:
        print(f"wrote {chart}")
    return status


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.report.dashboard import watch

    iterations: Optional[int]
    if args.once:
        iterations = 1
    else:
        iterations = args.frames
    return watch(args.dir, interval=args.interval, iterations=iterations)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="render repro result artefacts; watch a running dispatch",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser(
        "render", help="render JSON artefacts to markdown + HTML"
    )
    render.add_argument(
        "files", nargs="+", metavar="FILE",
        help="sweep/scenario/fault JSON dumps (any mix)",
    )
    render.add_argument(
        "--out", required=True, metavar="DIR", help="report output directory"
    )
    render.add_argument(
        "--title", default=None, help="report title (default: generic)"
    )
    render.add_argument(
        "--basename", default="report",
        help="output file stem (default: report)",
    )
    render.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="append volatile cache/dispatch stats sections from this "
        "sweep cache directory (HTML report only)",
    )
    render.set_defaults(func=_cmd_render)

    watch = sub.add_parser(
        "watch", help="terminal dashboard over a sweep cache directory"
    )
    watch.add_argument("dir", help="sweep cache directory to tail")
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print one plain-text frame and exit (no curses)",
    )
    watch.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="print N plain-text frames then exit (no curses)",
    )
    watch.set_defaults(func=_cmd_watch)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
