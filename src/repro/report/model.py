"""Report document model: typed sections assembled by a builder.

A report is a flat list of typed sections — text, tables, charts,
violation summaries, cache/dispatch statistics — that the renderers in
:mod:`repro.report.render` turn into markdown and HTML.  The split
matters because the two outputs have different contracts:

* the **markdown** report contains only *deterministic* sections, so the
  same sweep rendered from a serial, pooled, or dispatched run is
  byte-identical and can be pinned by a golden fixture (CI does exactly
  that, see ``tests/report/``);
* the **HTML** report additionally includes the *volatile* sections —
  cache hit counters, dispatch per-worker wall times — that legitimately
  differ between runs.

Sections carry a ``volatile`` flag; :meth:`ReportBuilder.add_cache_dir`
is the only built-in producer of volatile sections.

Numbers are formatted once, deterministically, at section-build time
(:func:`fmt_value`), so renderers never re-round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "Chart",
    "ChartSection",
    "ReportBuilder",
    "Section",
    "StatsSection",
    "TableSection",
    "TextSection",
    "ViolationsSection",
    "fmt_value",
    "slugify",
]


def fmt_value(value: Any) -> str:
    """One deterministic string per cell value.

    Floats use ``%.6g`` (enough for every figure of the paper, no
    platform-dependent tail digits); bools print as ``yes``/``no`` so
    protocol columns read naturally; everything else is ``str``.
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def slugify(text: str) -> str:
    """Filesystem-safe slug for chart filenames (deterministic)."""
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-") or "section"


@dataclass
class Section:
    """Base section: a heading plus the volatility contract."""

    heading: str
    volatile: bool = False


@dataclass
class TextSection(Section):
    body: str = ""


@dataclass
class TableSection(Section):
    header: Sequence[str] = ()
    rows: List[List[str]] = field(default_factory=list)
    notes: Optional[str] = None


@dataclass
class Chart:
    """One figure-style chart: named series of (x, y) points."""

    title: str
    series: List[Tuple[str, List[Tuple[float, float]]]]
    x_label: str = ""
    y_label: str = ""
    kind: str = "line"  #: ``line`` or ``bar`` (bar uses the first series)


@dataclass
class ChartSection(Section):
    chart: Optional[Chart] = None


@dataclass
class ViolationsSection(Section):
    """Spec-violation summary: the verdicts of the executable spec."""

    violations: List[str] = field(default_factory=list)
    checked: bool = True  #: False when property checking was disabled


@dataclass
class StatsSection(Section):
    """Key/value stats (cache counters, dispatch aggregates) — volatile."""

    pairs: List[Tuple[str, str]] = field(default_factory=list)
    table: Optional[TableSection] = None

    def __post_init__(self) -> None:
        self.volatile = True


class ReportBuilder:
    """Accumulates sections; the entry points in
    :mod:`repro.analysis.experiments` append to one of these when called
    with ``report=builder``, and ``reproduce_figures.py --report DIR``
    hands the same builder to every figure.
    """

    def __init__(self, title: str, subtitle: Optional[str] = None) -> None:
        self.title = title
        self.subtitle = subtitle
        self.sections: List[Section] = []

    # ------------------------------------------------------------------
    # Deterministic sections
    # ------------------------------------------------------------------

    def add_text(self, heading: str, body: str) -> "ReportBuilder":
        self.sections.append(TextSection(heading=heading, body=body))
        return self

    def add_table(
        self,
        heading: str,
        header: Sequence[str],
        rows: Sequence[Sequence[Any]],
        notes: Optional[str] = None,
    ) -> "ReportBuilder":
        self.sections.append(
            TableSection(
                heading=heading,
                header=[str(h) for h in header],
                rows=[[fmt_value(v) for v in row] for row in rows],
                notes=notes,
            )
        )
        return self

    def add_chart(self, heading: str, chart: Chart) -> "ReportBuilder":
        self.sections.append(ChartSection(heading=heading, chart=chart))
        return self

    def add_violations(
        self, heading: str, violations: Optional[Sequence[str]]
    ) -> "ReportBuilder":
        self.sections.append(
            ViolationsSection(
                heading=heading,
                violations=list(violations or []),
                checked=violations is not None,
            )
        )
        return self

    def add_sweep(
        self,
        heading: str,
        sweep: Any,
        metrics: Optional[Sequence[str]] = None,
        x: Optional[str] = None,
        series: Optional[str] = None,
        chart_metric: Optional[str] = None,
        notes: Optional[str] = None,
    ) -> "ReportBuilder":
        """One section per sweep: a CI table, the chart, the violations.

        The CI table quotes ``mean ± ci95_t`` — the Student-t interval of
        :func:`repro.sweep.result.summarise`, correct at the 3–5
        replicates sweeps actually run — with the legacy normal-z
        ``ci95`` available in the raw JSON for comparison.  With ``x``,
        ``series`` and ``chart_metric`` given, a figure-style line chart
        (one line per ``series`` value, e.g. reliable vs semantic) is
        added alongside.
        """
        from repro.report.sources import sweep_ci_table, sweep_chart

        table = sweep_ci_table(sweep, metrics=metrics)
        self.sections.append(
            TableSection(
                heading=heading,
                header=table[0],
                rows=table[1],
                notes=notes,
            )
        )
        if x and series and chart_metric:
            chart = sweep_chart(
                sweep, x=x, series=series, metric=chart_metric,
                title=heading,
            )
            if chart is not None:
                self.sections.append(
                    ChartSection(heading=f"{heading} — chart", chart=chart)
                )
        if not sweep.ok:
            self.add_violations(f"{heading} — spec violations", sweep.violations)
        return self

    def add_golden_delta(
        self,
        heading: str,
        header: Sequence[str],
        golden_rows: Sequence[Sequence[Any]],
        measured_rows: Sequence[Sequence[Any]],
        notes: Optional[str] = None,
    ) -> "ReportBuilder":
        """Before/after table against a golden fixture.

        Rows are matched positionally; numeric columns gain a ``Δ``
        column.  The section states outright whether the measured table
        is identical to the fixture — the sentence CI greps for.
        """
        from repro.report.sources import golden_delta_table

        head, rows, identical = golden_delta_table(
            header, golden_rows, measured_rows
        )
        verdict = (
            "Measured table matches the golden fixture exactly."
            if identical
            else "Measured table DIFFERS from the golden fixture."
        )
        self.sections.append(
            TableSection(
                heading=heading,
                header=head,
                rows=rows,
                notes=f"{verdict}" + (f" {notes}" if notes else ""),
            )
        )
        return self

    # ------------------------------------------------------------------
    # Volatile sections (HTML only)
    # ------------------------------------------------------------------

    def add_stats(
        self,
        heading: str,
        pairs: Sequence[Tuple[str, Any]],
        table: Optional[TableSection] = None,
    ) -> "ReportBuilder":
        self.sections.append(
            StatsSection(
                heading=heading,
                pairs=[(str(k), fmt_value(v)) for k, v in pairs],
                table=table,
            )
        )
        return self

    def add_cache_dir(self, path: Any) -> "ReportBuilder":
        """Cache and dispatch observability sections for one cache dir.

        Reads ``cache-stats.json`` and ``dispatch-stats.json`` (the PR 6/8
        trails).  Volatile by definition — these differ between a serial
        and a dispatched run of the very same sweep — so they render in
        the HTML report only, keeping the markdown deterministic.
        """
        from repro.report.sources import cache_sections

        for section in cache_sections(path):
            self.sections.append(section)
        return self

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_markdown(self) -> str:
        from repro.report.render import render_markdown

        return render_markdown(self)

    def to_html(self) -> str:
        from repro.report.render import render_html

        return render_html(self)

    def write(self, outdir: Any, basename: str = "report") -> dict:
        """Write ``<basename>.md``, ``<basename>.html`` and the chart
        SVGs under ``outdir``; returns the written paths by kind."""
        from repro.report.render import write_report

        return write_report(self, outdir, basename=basename)
