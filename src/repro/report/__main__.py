"""``python -m repro.report`` — see :mod:`repro.report.cli`."""

import sys

from repro.report.cli import main

if __name__ == "__main__":
    sys.exit(main())
