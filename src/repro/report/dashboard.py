"""Terminal dashboard: watch a dispatched sweep fill its cache dir.

``repro-report watch DIR`` (also ``python -m repro.report watch DIR``)
tails a cache directory while a sweep dispatch runs against it:

* the **shard count** is live — the executor streams each completed
  (cell, replicate) into the cache as it arrives, so the count climbing
  is the sweep making progress, and the per-refresh delta is the
  current cell completion rate;
* the **dispatch trail** (``dispatch-stats.json``) contributes the last
  completed run's per-worker cells / busy / wall table and the
  steal / re-issue / duplicate counters;
* the **cache counters** (``cache-stats.json``) show cumulative
  hits / misses / stores.

Everything is rendered by the pure function :func:`render_dashboard`
(state in, list of lines out) so the display is unit-testable on a
recorded stats trail with no pty; :func:`watch` adds the refresh loop —
curses full-screen when stdout is a real terminal (``q`` quits, ``r``
forces an immediate refresh), a plain reprint otherwise.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["read_state", "render_dashboard", "watch"]

#: Characters of the progress bar's filled/empty cells.
_BAR_FILL = "█"
_BAR_EMPTY = "·"


def _count_shards(root: pathlib.Path) -> int:
    """Fast shard count: ``<2-hex>/<key>.json`` files, no parsing.

    ``cache_stats`` opens and validates every shard — far too heavy to
    poll once a second against a 10k-cell cache; a directory scan is
    enough for a progress count.
    """
    count = 0
    try:
        subdirs = [d for d in root.iterdir() if d.is_dir() and len(d.name) == 2]
    except OSError:
        return 0
    for sub in subdirs:
        try:
            count += sum(1 for p in sub.iterdir() if p.suffix == ".json")
        except OSError:
            continue
    return count


def read_state(path: Any) -> Dict[str, Any]:
    """One snapshot of a cache dir: shards, counters, dispatch trail."""
    root = pathlib.Path(path)
    counters = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0, "runs": 0}
    try:
        with open(root / "cache-stats.json", "r", encoding="utf-8") as fh:
            recorded = json.load(fh)
        for name in counters:
            counters[name] = int(recorded.get(name, 0))
    except (OSError, ValueError):
        pass
    from repro.sweep.dispatch import load_dispatch_stats

    return {
        "path": str(root),
        "exists": root.is_dir(),
        "shards": _count_shards(root),
        "counters": counters,
        "runs": load_dispatch_stats(root).get("runs", []),
    }


def _bar(done: int, total: int, width: int) -> str:
    if total <= 0:
        return _BAR_EMPTY * width
    filled = min(width, max(0, round(width * done / total)))
    return _BAR_FILL * filled + _BAR_EMPTY * (width - filled)


def render_dashboard(
    state: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    elapsed_s: Optional[float] = None,
    width: int = 78,
) -> List[str]:
    """The dashboard frame for one state snapshot, as plain lines.

    ``previous``/``elapsed_s`` (the prior snapshot and the seconds
    between them) turn the shard delta into a live cells/s rate.  Pure —
    no clock reads, no terminal I/O — so tests drive it directly on
    recorded trails.
    """
    lines: List[str] = []
    title = f" repro-report watch — {state['path']} "
    lines.append(title[:width])
    lines.append("─" * width)
    if not state.get("exists", True):
        lines.append("(cache directory does not exist yet — waiting)")
        return lines
    shards = state["shards"]
    rate = ""
    if previous is not None and elapsed_s:
        delta = shards - previous.get("shards", 0)
        if delta > 0:
            rate = f"  (+{delta} shards, {delta / elapsed_s:.1f} cells/s)"
        else:
            rate = "  (idle)"
    lines.append(f"shards: {shards}{rate}")
    counters = state["counters"]
    total_lookups = counters["hits"] + counters["misses"]
    hit_rate = (
        f"{counters['hits'] / total_lookups:.1%}" if total_lookups else "n/a"
    )
    lines.append(
        f"cache:  {counters['hits']} hits / {counters['misses']} misses "
        f"({hit_rate}), {counters['stores']} stores, "
        f"{counters['corrupt']} corrupt, {counters['runs']} runs"
    )
    runs = state.get("runs") or []
    if not runs:
        lines.append("")
        lines.append("no dispatch recorded yet in this cache dir")
        return lines
    last = runs[-1]
    total = int(last.get("cells_total", 0))
    cached = int(last.get("cells_cached", 0))
    completed = int(last.get("completed", 0))
    done = cached + completed
    lines.append("")
    lines.append(
        f"last dispatch: {last.get('backend', '?')} × "
        f"{last.get('workers', '?')} workers, "
        f"{last.get('wall_s', 0.0):.2f}s wall"
    )
    bar_width = max(10, width - 24)
    lines.append(
        f"cells  [{_bar(done, total, bar_width)}] {done}/{total or '?'}"
    )
    lines.append(
        f"        {cached} cached, {completed} computed, "
        f"{last.get('stolen', 0)} stolen, {last.get('reissued', 0)} "
        f"re-issued, {last.get('duplicates', 0)} duplicates"
    )
    per_worker = last.get("per_worker") or {}
    if per_worker:
        lines.append("")
        lines.append(
            f"{'worker':<20} {'cells':>7} {'busy (s)':>10} "
            f"{'wall (s)':>10}  state"
        )
        for label, w in sorted(per_worker.items()):
            flag = "CRASHED" if w.get("crashed") else "ok"
            lines.append(
                f"{label[:20]:<20} {w.get('cells', 0):>7} "
                f"{float(w.get('busy_s', 0.0)):>10.2f} "
                f"{float(w.get('wall_s', 0.0)):>10.2f}  {flag}"
            )
    history = runs[:-1]
    if history:
        lines.append("")
        lines.append(f"({len(history)} earlier dispatch runs in the trail)")
    return lines


def watch(
    path: Any,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
    use_curses: Optional[bool] = None,
) -> int:
    """Refresh the dashboard until interrupted (or ``iterations`` frames).

    ``use_curses=None`` auto-detects: full-screen curses on a tty,
    otherwise plain frames to ``stream`` separated by a rule — which is
    also the mode tests and ``--once`` use.
    """
    stream = stream if stream is not None else sys.stdout
    if use_curses is None:
        use_curses = iterations is None and _stream_is_tty(stream)
    if use_curses:
        return _watch_curses(path, interval)
    previous: Optional[Dict[str, Any]] = None
    frame = 0
    while iterations is None or frame < iterations:
        state = read_state(path)
        elapsed = interval if previous is not None else None
        try:
            for line in render_dashboard(state, previous, elapsed):
                stream.write(line + "\n")
            stream.write("\n")
            stream.flush()
        except BrokenPipeError:
            # `watch … | head` closes the pipe mid-frame; that is how the
            # reader says it is done, not an error.
            return 0
        previous = state
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0


def _stream_is_tty(stream: TextIO) -> bool:
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError):
        return False


def _watch_curses(path: Any, interval: float) -> int:  # pragma: no cover
    """Full-screen mode; exercised manually (tests drive the renderer)."""
    import curses

    def loop(screen: "curses.window") -> None:
        curses.curs_set(0)
        screen.timeout(int(interval * 1000))
        previous: Optional[Dict[str, Any]] = None
        last_draw = time.monotonic()
        while True:
            state = read_state(path)
            now = time.monotonic()
            elapsed = (now - last_draw) if previous is not None else None
            last_draw = now
            height, width = screen.getmaxyx()
            screen.erase()
            lines = render_dashboard(
                state, previous, elapsed, width=max(20, width - 1)
            )
            for y, line in enumerate(lines[: height - 1]):
                screen.addnstr(y, 0, line, width - 1)
            screen.addnstr(
                height - 1, 0, " q quit · r refresh ", width - 1,
                curses.A_REVERSE,
            )
            screen.refresh()
            previous = state
            key = screen.getch()
            if key in (ord("q"), ord("Q")):
                return
            # 'r' (or any other key) falls through to an immediate refresh.

    try:
        curses.wrapper(loop)
    except KeyboardInterrupt:
        pass
    return 0
