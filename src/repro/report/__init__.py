"""Self-contained HTML/markdown reports and a live dispatch dashboard.

``python -m repro.report render FILE... --out DIR`` renders any result
artefact the pipeline produces — :class:`~repro.sweep.result.SweepResult`
dumps, :class:`~repro.scenario.result.ScenarioResult` / fault-run dumps,
or plain JSON — into one report directory: ``report.md`` (deterministic,
golden-pinnable), ``report.html`` (complete, self-contained) and
``charts/*.svg``.

``python -m repro.report watch DIR`` tails a sweep cache directory while
a dispatch runs against it — see :mod:`repro.report.dashboard`.

Programmatic use starts at :class:`ReportBuilder`; the entry points in
:mod:`repro.analysis.experiments` accept ``report=builder`` and
``examples/reproduce_figures.py --report DIR`` assembles the full figure
report.
"""

from repro.report.charts import render_chart_svg
from repro.report.dashboard import read_state, render_dashboard, watch
from repro.report.model import (
    Chart,
    ChartSection,
    ReportBuilder,
    Section,
    StatsSection,
    TableSection,
    TextSection,
    ViolationsSection,
    fmt_value,
    slugify,
)
from repro.report.render import render_html, render_markdown, write_report
from repro.report.sources import (
    cache_sections,
    classify_payload,
    golden_delta_table,
    load_payload,
    payload_sections,
    sweep_chart,
    sweep_ci_table,
)

__all__ = [
    "Chart",
    "ChartSection",
    "ReportBuilder",
    "Section",
    "StatsSection",
    "TableSection",
    "TextSection",
    "ViolationsSection",
    "cache_sections",
    "classify_payload",
    "fmt_value",
    "golden_delta_table",
    "load_payload",
    "payload_sections",
    "read_state",
    "render_chart_svg",
    "render_dashboard",
    "render_html",
    "render_markdown",
    "slugify",
    "sweep_chart",
    "sweep_ci_table",
    "watch",
    "write_report",
]
