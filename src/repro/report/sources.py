"""Turning result artefacts into report sections.

Three JSON shapes flow out of the repro pipeline and all of them can be
reported on:

* a :class:`~repro.sweep.result.SweepResult` dump (``cells`` + ``axes``)
  — CI tables use the corrected Student-t intervals (``ci95_t``), charts
  come from cell coordinates;
* a :class:`~repro.scenario.result.ScenarioResult` dump (``histories`` +
  ``metrics``) — a fault run is exactly this shape, with its violations
  and fault config along for the ride;
* anything else JSON — reported as a flat key/value table so ad-hoc
  artefacts (``BENCH_*.json``) still render.

Cache directories contribute the volatile observability sections from
``cache-stats.json`` and ``dispatch-stats.json``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.report.model import (
    Chart,
    Section,
    StatsSection,
    TableSection,
    fmt_value,
)

__all__ = [
    "cache_sections",
    "classify_payload",
    "golden_delta_table",
    "load_payload",
    "payload_sections",
    "sweep_chart",
    "sweep_ci_table",
]


# ----------------------------------------------------------------------
# Sweep sections
# ----------------------------------------------------------------------


def _cell_label(params: Mapping[str, Any], axes: Sequence[str]) -> str:
    """Compact coordinate label: only swept axes, in axis order."""
    shown = [f"{name}={fmt_value(params.get(name))}" for name in axes]
    return ", ".join(shown) if shown else "(single cell)"


def sweep_ci_table(
    sweep: Any, metrics: Optional[Sequence[str]] = None
) -> Tuple[List[str], List[List[str]]]:
    """(header, rows): one row per cell, ``mean ± ci95_t (n)`` per metric.

    ``ci95_t`` is the Student-t 95 % half-width of
    :func:`repro.sweep.result.summarise` — the normal-z ``ci95`` is kept
    in the raw JSON but deliberately not quoted here: at sweep-scale
    replicate counts (3–5) z understates the interval by up to 2×.
    """
    axes = list(sweep.axes)
    if metrics is None:
        # Sorted, not insertion order: the framed dispatch backends
        # round-trip cell metrics through sort_keys JSON, so insertion
        # order differs between a serial and a subprocess run of the same
        # sweep — and the markdown must be byte-identical across both.
        names = set()
        for cell in sweep.cells:
            names.update(cell.metric_names())
        metrics = sorted(names)
    header = ["cell"] + [f"{m} (±95% t)" for m in metrics]
    rows: List[List[str]] = []
    for cell in sweep.cells:
        row = [_cell_label(cell.params, axes)]
        for metric in metrics:
            try:
                stats = cell.stats(metric)
            except KeyError:
                row.append("—")
                continue
            if stats.n > 1:
                row.append(
                    f"{fmt_value(stats.mean)} ± {fmt_value(stats.ci95_t)} "
                    f"(n={stats.n})"
                )
            else:
                row.append(f"{fmt_value(stats.mean)} (n=1)")
        rows.append(row)
    return header, rows


def sweep_chart(
    sweep: Any,
    x: str,
    series: str,
    metric: str,
    title: str = "",
) -> Optional[Chart]:
    """A figure-style line chart: one line per ``series`` value, mean of
    ``metric`` against the ``x`` cell coordinate."""
    series_values = sweep.axes.get(series)
    x_values = sweep.axes.get(x)
    if not series_values or not x_values:
        return None
    lines: List[Tuple[str, List[Tuple[float, float]]]] = []
    for sval in series_values:
        points: List[Tuple[float, float]] = []
        for xval in x_values:
            try:
                cell = sweep.select(**{x: xval, series: sval})
                y = cell.value(metric)
            except KeyError:
                continue
            points.append((float(xval), float(y)))
        label = _series_label(series, sval)
        lines.append((label, points))
    return Chart(
        title=title or metric,
        series=lines,
        x_label=x,
        y_label=metric,
    )


def _series_label(axis: str, value: Any) -> str:
    """Protocol-aware series names: the paper's reliable-vs-semantic."""
    if axis == "semantic" and isinstance(value, bool):
        return "semantic" if value else "reliable"
    return f"{axis}={fmt_value(value)}"


# ----------------------------------------------------------------------
# Payload classification (the `python -m repro.report render` path)
# ----------------------------------------------------------------------


def load_payload(path: Any) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def classify_payload(payload: Mapping[str, Any]) -> str:
    """``"sweep"`` / ``"scenario"`` / ``"json"`` by structural shape."""
    if isinstance(payload.get("cells"), list) and "axes" in payload:
        return "sweep"
    if "histories" in payload and "metrics" in payload:
        return "scenario"
    return "json"


def payload_sections(name: str, payload: Mapping[str, Any]) -> List[Section]:
    """Sections for one loaded artefact, dispatched on its shape."""
    kind = classify_payload(payload)
    if kind == "sweep":
        return _sweep_payload_sections(name, payload)
    if kind == "scenario":
        return _scenario_sections(name, payload)
    return [_generic_json_section(name, payload)]


def _sweep_payload_sections(
    name: str, payload: Mapping[str, Any]
) -> List[Section]:
    from repro.report.model import ViolationsSection
    from repro.sweep.result import SweepResult

    sweep = SweepResult.from_dict(dict(payload))
    header, rows = sweep_ci_table(sweep)
    axes = {k: len(v) for k, v in sweep.axes.items()}
    notes = (
        f"{len(sweep.cells)} cells × {sweep.seeds} replicates "
        f"(axes: {', '.join(f'{k}[{n}]' for k, n in axes.items()) or 'none'};"
        f" base seed {sweep.base_seed})"
    )
    sections: List[Section] = [
        TableSection(
            heading=f"{name} — per-cell statistics",
            header=header,
            rows=rows,
            notes=notes,
        )
    ]
    sections.append(
        ViolationsSection(
            heading=f"{name} — spec violations",
            violations=list(sweep.violations),
        )
    )
    return sections


def _scenario_sections(
    name: str, payload: Mapping[str, Any]
) -> List[Section]:
    from repro.report.model import ViolationsSection
    from repro.sweep.executor import flatten_metrics

    config = payload.get("config") or {}
    pairs = [
        ("seed", payload.get("seed")),
        ("processes", payload.get("n")),
        ("duration (s)", payload.get("duration")),
    ]
    for key in sorted(config):
        value = config[key]
        if isinstance(value, (str, int, float, bool)) or value is None:
            pairs.append((f"config.{key}", value))
    sections: List[Section] = [
        TableSection(
            heading=f"{name} — run configuration",
            header=["field", "value"],
            rows=[[str(k), fmt_value(v)] for k, v in pairs],
        )
    ]
    metrics = flatten_metrics(payload.get("metrics") or {})
    if metrics:
        sections.append(
            TableSection(
                heading=f"{name} — metrics",
                header=["metric", "value"],
                rows=[[k, fmt_value(v)] for k, v in sorted(metrics.items())],
            )
        )
    histories = payload.get("histories") or {}
    if histories:
        sections.append(
            TableSection(
                heading=f"{name} — delivery histories",
                header=["process", "deliveries"],
                rows=[
                    [pid, fmt_value(len(events))]
                    for pid, events in sorted(histories.items())
                ],
            )
        )
    violations = payload.get("violations")
    sections.append(
        ViolationsSection(
            heading=f"{name} — spec violations",
            violations=list(violations or []),
            checked=violations is not None,
        )
    )
    return sections


def _generic_json_section(
    name: str, payload: Mapping[str, Any]
) -> TableSection:
    rows = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, (dict, list)):
            rows.append([key, f"<{type(value).__name__}[{len(value)}]>"])
        else:
            rows.append([key, fmt_value(value)])
    return TableSection(
        heading=f"{name} — document",
        header=["field", "value"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Golden-fixture deltas
# ----------------------------------------------------------------------


def golden_delta_table(
    header: Sequence[str],
    golden_rows: Sequence[Sequence[Any]],
    measured_rows: Sequence[Sequence[Any]],
) -> Tuple[List[str], List[List[str]], bool]:
    """(header, rows, identical): measured vs golden with per-column Δ.

    Rows are aligned positionally (figure tables are ordered by their x
    coordinate).  Numeric cells report ``measured (Δ=…)`` when they
    drifted; non-numeric cells just flag inequality.
    """
    out_header = [str(h) for h in header] + ["vs golden"]
    out_rows: List[List[str]] = []
    identical = True
    count = max(len(golden_rows), len(measured_rows))
    for i in range(count):
        golden = list(golden_rows[i]) if i < len(golden_rows) else None
        measured = list(measured_rows[i]) if i < len(measured_rows) else None
        if golden is None or measured is None:
            identical = False
            row = [fmt_value(v) for v in (measured or golden or [])]
            row += [""] * (len(out_header) - 1 - len(row))
            row.append("missing row" if measured is None else "extra row")
            out_rows.append(row)
            continue
        cells: List[str] = []
        drift: List[str] = []
        for j, m in enumerate(measured):
            g = golden[j] if j < len(golden) else None
            cells.append(fmt_value(m))
            if isinstance(m, (int, float)) and isinstance(g, (int, float)):
                if float(m) != float(g):
                    identical = False
                    drift.append(
                        f"{header[j] if j < len(header) else j}: "
                        f"Δ={fmt_value(float(m) - float(g))}"
                    )
            elif m != g:
                identical = False
                drift.append(f"{header[j] if j < len(header) else j}: ≠")
        cells.append("; ".join(drift) if drift else "=")
        out_rows.append(cells)
    return out_header, out_rows, identical


# ----------------------------------------------------------------------
# Cache-dir observability (volatile sections)
# ----------------------------------------------------------------------


def cache_sections(path: Any) -> List[Section]:
    """Volatile sections for one cache dir: shard inventory + recorded
    hit/miss counters, then per-backend dispatch aggregates and the last
    run's per-worker table (the ``repro-sweep stats`` data, in report
    form)."""
    from repro.sweep.cache import cache_stats
    from repro.sweep.dispatch import load_dispatch_stats

    root = pathlib.Path(path)
    sections: List[Section] = []
    stats = cache_stats(root)
    counters = stats["counters"]
    rate = stats["hit_rate"]
    sections.append(
        StatsSection(
            heading="Sweep cache",
            pairs=[
                ("directory", str(root)),
                ("shards", fmt_value(stats["shards"])),
                ("bytes", fmt_value(stats["bytes"])),
                ("stale shards", fmt_value(stats["stale_shards"])),
                ("recorded runs", fmt_value(counters["runs"])),
                ("hits", fmt_value(counters["hits"])),
                ("misses", fmt_value(counters["misses"])),
                ("stores", fmt_value(counters["stores"])),
                ("corrupt", fmt_value(counters["corrupt"])),
                ("hit rate", f"{rate:.1%}" if rate is not None else "n/a"),
            ],
        )
    )
    runs = load_dispatch_stats(root).get("runs", [])
    if runs:
        by_backend: Dict[str, Dict[str, Any]] = {}
        for run in runs:
            agg = by_backend.setdefault(
                str(run.get("backend", "?")),
                {"runs": 0, "dispatched": 0, "stolen": 0, "reissued": 0,
                 "duplicates": 0, "wall_s": 0.0},
            )
            agg["runs"] += 1
            for key in ("dispatched", "stolen", "reissued", "duplicates"):
                agg[key] += int(run.get(key, 0))
            agg["wall_s"] += float(run.get("wall_s", 0.0))
        table = TableSection(
            heading="Dispatch backends",
            header=["backend", "runs", "dispatched", "stolen", "re-issued",
                    "duplicates", "wall (s)"],
            rows=[
                [
                    backend,
                    fmt_value(agg["runs"]),
                    fmt_value(agg["dispatched"]),
                    fmt_value(agg["stolen"]),
                    fmt_value(agg["reissued"]),
                    fmt_value(agg["duplicates"]),
                    f"{agg['wall_s']:.2f}",
                ]
                for backend, agg in sorted(by_backend.items())
            ],
        )
        last = runs[-1]
        pairs = [
            ("last backend", str(last.get("backend", "?"))),
            ("last wall (s)", f"{float(last.get('wall_s', 0.0)):.2f}"),
            ("cells total", fmt_value(last.get("cells_total", 0))),
            ("cells cached", fmt_value(last.get("cells_cached", 0))),
        ]
        section = StatsSection(
            heading="Dispatch stats", pairs=pairs, table=table
        )
        sections.append(section)
        per_worker = last.get("per_worker") or {}
        if per_worker:
            sections.append(
                StatsSection(
                    heading="Last dispatch — per worker",
                    pairs=[],
                    table=TableSection(
                        heading="per worker",
                        header=["worker", "cells", "busy (s)", "wall (s)",
                                "crashed"],
                        rows=[
                            [
                                label,
                                fmt_value(w.get("cells", 0)),
                                f"{float(w.get('busy_s', 0.0)):.2f}",
                                f"{float(w.get('wall_s', 0.0)):.2f}",
                                "yes" if w.get("crashed") else "no",
                            ]
                            for label, w in sorted(per_worker.items())
                        ],
                    ),
                )
            )
    return sections
