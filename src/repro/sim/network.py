"""Simulated network: a full mesh of point-to-point FIFO channels.

The paper assumes processes are "fully connected by a network of
point-to-point message passing channels" that are *reliable and FIFO
ordered* (Section 3.1), with no bound on transmission time.  The evaluation
additionally models the network as "n x n queues fully connecting all
processes ... configured with unlimited bandwidth" (Section 5.3).

:class:`Network` implements exactly that: one logical queue per ordered pair
of processes.  Latency is pluggable per run; FIFO order is preserved even
under jittery latency by never scheduling a delivery earlier than the
previous delivery on the same channel.

For failure-detector and liveness tests the network also supports *fault
injection* (drops, partitions, extra delay), and for the
:mod:`repro.faults` subsystem a declarative **lossy link layer**: per-edge
(or network-wide) probabilistic loss, duplication and reordering
(:meth:`Network.set_link_fault`), with every draw taken from a dedicated
``faults.<src>.<dst>`` RNG stream so runs stay byte-reproducible and the
fault draws of one edge never perturb another edge (or the latency
streams).  All knobs are off by default so the core protocol runs over the
paper's assumed reliable channels; the fast send path is untouched unless
a link fault is actually configured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.registry import latency_models
from repro.sim.kernel import Simulator
from repro.sim.process import ProcessId, SimProcess

try:  # Optional: the v3 vectorized sampling path; scalar fallback without.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "LinkFaultPolicy",
    "Network",
    "NetworkV3",
    "ChannelStats",
]


#: Minimum batch size for the numpy-vectorized uniform refill: the MT19937
#: state transplant costs roughly a hundred scalar draws, so small batches
#: (v2's default of 64) stay scalar and only v3's large refills vectorize.
VECTOR_MIN_BATCH = 512


def _np_uniform_block(rng, low: float, high: float, n: int) -> List[float]:
    """``[rng.uniform(low, high) for _ in range(n)]``, vectorized, exact.

    Transplants the generator's MT19937 state into a legacy numpy
    ``RandomState`` (same core generator, same 53-bit double construction,
    same ``low + (high - low) * u`` arithmetic), draws the block, and
    transplants the advanced state back — so the Python generator
    continues exactly where the block left off.  Bit-for-bit equality with
    the scalar loop (including stream continuation) is pinned by
    ``tests/sim/test_batch_dispatch.py``.
    """
    version, istate, gauss = rng.getstate()
    rs = _np.random.RandomState()
    rs.set_state(("MT19937", _np.asarray(istate[:624], dtype=_np.uint32), istate[624]))
    out = rs.uniform(low, high, n)
    state = rs.get_state()
    rng.setstate((version, tuple(int(k) for k in state[1]) + (int(state[2]),), gauss))
    return out.tolist()


class LatencyModel:
    """Strategy producing a one-way latency for each message.

    Random models draw from a **per-edge** child generator (stream
    ``"network.<src>.<dst>"`` of the simulator's seed), so the latency
    sequence of one channel is deterministic per seed and independent of
    how sends on *other* channels interleave with it — adding traffic on
    one edge never perturbs the draws of another.

    :meth:`sample_batch` returns ``n`` draws at once (in stream order);
    the network requests draws in batches and hands them out one per send,
    which amortises the per-draw dispatch overhead on the hot path.
    """

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        raise NotImplementedError

    def sample_batch(self, src: ProcessId, dst: ProcessId, n: int) -> List[float]:
        """``n`` consecutive draws for the (src, dst) edge.

        This is the path the network actually uses: draws are requested
        in batches per edge and handed out one per send.  A model whose
        ``sample`` consumes a *shared* stream therefore sees its draws
        grouped by edge rather than interleaved in send order — override
        this (or use per-edge streams, as the built-ins do) if the exact
        draw interleaving matters to you.
        """
        return [self.sample(src, dst) for _ in range(n)]


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``latency`` time units."""

    latency: float = 0.001

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self.latency

    def sample_batch(self, src: ProcessId, dst: ProcessId, n: int) -> List[float]:
        return [self.latency] * n


class _EdgeRandomLatency(LatencyModel):
    """Shared plumbing for randomised models: one RNG stream per edge."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._edge_rngs: Dict[Tuple[ProcessId, ProcessId], Any] = {}

    def _rng_for(self, src: ProcessId, dst: ProcessId):
        key = (src, dst)
        rng = self._edge_rngs.get(key)
        if rng is None:
            rng = self._sim.rng(f"network.{src}.{dst}")
            self._edge_rngs[key] = rng
        return rng


class UniformLatency(_EdgeRandomLatency):
    """Latency drawn uniformly from ``[low, high]`` via the simulator RNG.

    Draws come from per-edge child generators derived from the simulator
    seed, so they are deterministic per seed and independent of other
    random consumers (and of other edges).
    """

    def __init__(self, sim: Simulator, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        super().__init__(sim)
        self.low = low
        self.high = high

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self._rng_for(src, dst).uniform(self.low, self.high)

    def sample_batch(self, src: ProcessId, dst: ProcessId, n: int) -> List[float]:
        rng = self._rng_for(src, dst)
        if _np is not None and n >= VECTOR_MIN_BATCH:
            # Exact numpy replay of the scalar loop (state transplant);
            # reached by the v3 network's large refills only.
            return _np_uniform_block(rng, self.low, self.high, n)
        uniform = rng.uniform
        low, high = self.low, self.high
        return [uniform(low, high) for _ in range(n)]


class LognormalLatency(_EdgeRandomLatency):
    """Heavy-tailed latency: log-normal with a given distribution mean.

    The paper assumes channels with "no bound on transmission time"
    (Section 3.1); a log-normal is the standard heavy-tailed stand-in for
    such links.  ``mean`` is the mean of the *resulting* distribution (so
    swapping ``ConstantLatency(x)`` for ``LognormalLatency(sim, mean=x)``
    keeps the average load identical); ``sigma`` is the shape parameter of
    the underlying normal — larger means a heavier tail.
    """

    def __init__(self, sim: Simulator, mean: float = 0.001, sigma: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean latency must be positive: {mean}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive: {sigma}")
        super().__init__(sim)
        self.mean = mean
        self.sigma = sigma
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean.
        self._mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self._rng_for(src, dst).lognormvariate(self._mu, self.sigma)

    def sample_batch(self, src: ProcessId, dst: ProcessId, n: int) -> List[float]:
        draw = self._rng_for(src, dst).lognormvariate
        mu, sigma = self._mu, self.sigma
        return [draw(mu, sigma) for _ in range(n)]


@latency_models.register("constant")
def _constant_latency(sim: Simulator, latency: float = 0.001) -> ConstantLatency:
    if latency < 0:
        raise ValueError(f"latency must be non-negative: {latency}")
    return ConstantLatency(latency)


@latency_models.register("uniform")
def _uniform_latency(
    sim: Simulator, low: float = 0.0005, high: float = 0.0015
) -> UniformLatency:
    return UniformLatency(sim, low, high)


@latency_models.register("lognormal")
def _lognormal_latency(
    sim: Simulator, mean: float = 0.001, sigma: float = 1.0
) -> LognormalLatency:
    return LognormalLatency(sim, mean, sigma)


@dataclass(frozen=True)
class LinkFaultPolicy:
    """Probabilistic fault rates applied to messages on a link.

    ``loss``, ``duplicate`` and ``reorder`` are independent per-message
    probabilities in ``[0, 1]``.  A reordered message is delivered at
    ``latency + U(0, reorder_spread)`` *without* the FIFO clamp, so later
    sends on the same channel may overtake it.  ``filter`` (optional)
    restricts the policy to payloads it returns true for — e.g. "data
    messages only", keeping the control plane reliable.

    A policy whose rates are all zero is *inert but present*: it shadows a
    broader policy in the resolution order (exact edge > source wildcard >
    destination wildcard > network-wide default) without consuming any
    randomness, so installing it cannot change event order.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_spread: float = 0.004
    filter: Optional[Callable[[Any], bool]] = None

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            rate = getattr(self, name)
            # NaN fails the range check too (all comparisons are false).
            if not (isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0):
                raise ValueError(f"{name} rate must be in [0, 1]: {rate!r}")
        if not (self.reorder_spread > 0) or math.isinf(self.reorder_spread):
            raise ValueError(
                f"reorder_spread must be positive and finite: "
                f"{self.reorder_spread!r}"
            )

    @property
    def inert(self) -> bool:
        return not (self.loss or self.duplicate or self.reorder)


@dataclass
class ChannelStats:
    """Per-channel counters, used by tests and the metrics layer."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0


class Network:
    """Full mesh of reliable FIFO channels over a :class:`Simulator`.

    Processes attach themselves on construction (see
    :class:`~repro.sim.process.SimProcess`).  ``send`` enqueues a delivery
    event; FIFO order per ordered pair is enforced by tracking the last
    scheduled delivery time per channel.
    """

    #: Latency draws requested from the model per (src, dst) edge at a
    #: time.  Purely a performance knob — draw order per edge is identical
    #: for any batch size.
    DRAW_BATCH = 64

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency or ConstantLatency()
        self._procs: Dict[ProcessId, SimProcess] = {}
        self._last_delivery: Dict[Tuple[ProcessId, ProcessId], float] = {}
        self._stats: Dict[Tuple[ProcessId, ProcessId], ChannelStats] = {}
        # Constant models short-circuit sampling entirely; random models
        # are drawn in per-edge batches (consumed in stream order).
        # Exact-type check: a ConstantLatency *subclass* may override
        # sample()/sample_batch() and must keep being consulted.
        self._constant: Optional[float] = (
            self.latency.latency
            if type(self.latency) is ConstantLatency
            else None
        )
        self._draws: Dict[Tuple[ProcessId, ProcessId], List[float]] = {}
        # Fault injection state (all empty/None by default = reliable net).
        self._cut: Set[Tuple[ProcessId, ProcessId]] = set()
        self._drop_filter: Optional[Callable[[ProcessId, ProcessId, Any], bool]] = None
        self._delay_filter: Optional[Callable[[ProcessId, ProcessId, Any], float]] = None
        # Lossy link layer: policies keyed by (src|None, dst|None); the
        # per-channel resolution is cached until a policy changes.  Fault
        # draws come from per-edge "faults.<src>.<dst>" RNG streams.
        self._link_faults: Dict[
            Tuple[Optional[ProcessId], Optional[ProcessId]], LinkFaultPolicy
        ] = {}
        self._policy_cache: Dict[
            Tuple[ProcessId, ProcessId], Optional[LinkFaultPolicy]
        ] = {}
        self._fault_rngs: Dict[Tuple[ProcessId, ProcessId], Any] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, proc: SimProcess) -> None:
        if proc.pid in self._procs:
            raise ValueError(f"pid {proc.pid} already attached")
        self._procs[proc.pid] = proc

    def process(self, pid: ProcessId) -> SimProcess:
        return self._procs[pid]

    @property
    def pids(self) -> List[ProcessId]:
        return sorted(self._procs)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Unknown destinations are ignored (a message to a process that never
        existed just disappears, as on a real network).
        """
        channel = (src, dst)
        stats = self._stats.get(channel)
        if stats is None:
            stats = self._stats[channel] = ChannelStats()
        stats.sent += 1
        self.messages_sent += 1

        if self._cut and channel in self._cut:
            stats.dropped += 1
            self.messages_dropped += 1
            return
        if self._drop_filter is not None and self._drop_filter(src, dst, payload):
            stats.dropped += 1
            self.messages_dropped += 1
            return

        # Lossy link layer (repro.faults).  Policy resolution is a cached
        # dict lookup; draws are only taken for non-zero rates, so an
        # all-zero policy is byte-identical to no policy at all.
        policy = None
        if self._link_faults:
            policy = self._resolve_policy(channel)
            if policy is not None and (
                policy.inert
                or (policy.filter is not None and not policy.filter(payload))
            ):
                policy = None
        if policy is not None and policy.loss:
            if self._fault_rng(channel).random() < policy.loss:
                stats.dropped += 1
                self.messages_dropped += 1
                return

        delay = self._constant
        if delay is None:
            # Batched per-edge draws, consumed in the model's stream order.
            draws = self._draws.get(channel)
            if not draws:
                draws = self.latency.sample_batch(src, dst, self.DRAW_BATCH)
                draws.reverse()
                self._draws[channel] = draws
            delay = draws.pop()
        if self._delay_filter is not None:
            delay += self._delay_filter(src, dst, payload)

        if policy is None:
            # Fast path: reliable FIFO channel, exactly as before faults
            # existed.  Never deliver before the previously scheduled
            # delivery on this channel, regardless of the sampled latency.
            deliver_at = max(
                self.sim.now + delay, self._last_delivery.get(channel, 0.0)
            )
            self._last_delivery[channel] = deliver_at
            self.sim.schedule_at(deliver_at, self._deliver, src, dst, payload)
            return

        rng = self._fault_rng(channel)
        duplicated = bool(policy.duplicate) and rng.random() < policy.duplicate
        reordered = bool(policy.reorder) and rng.random() < policy.reorder
        if reordered:
            # Extra delay *without* the FIFO clamp: later sends on this
            # channel may overtake the straggler, and the straggler does
            # not advance the clamp for them.
            stats.reordered += 1
            self.messages_reordered += 1
            deliver_at = self.sim.now + delay + rng.random() * policy.reorder_spread
        else:
            deliver_at = max(
                self.sim.now + delay, self._last_delivery.get(channel, 0.0)
            )
            self._last_delivery[channel] = deliver_at
        self.sim.schedule_at(deliver_at, self._deliver, src, dst, payload)
        if duplicated:
            # The copy is scheduled at the same instant but with a later
            # sequence number, so it arrives right after the original and
            # never violates FIFO on its own.
            stats.duplicated += 1
            self.messages_duplicated += 1
            self.sim.schedule_at(deliver_at, self._deliver, src, dst, payload)

    def multicast(
        self,
        src: ProcessId,
        dsts: Any,
        payload: Any,
        token: Optional[Any] = None,
    ) -> None:
        """Send ``payload`` from ``src`` to every destination, in order.

        Semantically this *is* ``for dst in dsts: self.send(...)`` — one
        FIFO unicast per destination, in iteration order — and that is the
        v2 implementation verbatim.  :class:`NetworkV3` overrides it with
        a batched fast path that schedules one kernel event per fan-out.

        ``token``, when given, must uniquely identify the ``(src, dsts)``
        pair for the lifetime of the network (the SVS layer passes
        ``(pid, view id)``); it lets v3 memoize per-group state without
        hashing the destination list on every call.
        """
        for dst in dsts:
            self.send(src, dst, payload)

    def _deliver(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        proc = self._procs.get(dst)
        if proc is None:
            return
        self._stats[(src, dst)].delivered += 1
        self.messages_delivered += 1
        proc._deliver(src, payload)

    # ------------------------------------------------------------------
    # Fault injection (used by tests; default off)
    # ------------------------------------------------------------------

    def cut(self, a: ProcessId, b: ProcessId, bidirectional: bool = True) -> None:
        """Drop all future messages on the (a, b) channel(s)."""
        self._cut.add((a, b))
        if bidirectional:
            self._cut.add((b, a))

    def heal(self, a: ProcessId, b: ProcessId, bidirectional: bool = True) -> None:
        """Undo :meth:`cut`."""
        self._cut.discard((a, b))
        if bidirectional:
            self._cut.discard((b, a))

    def partition(self, side_a: Set[ProcessId], side_b: Set[ProcessId]) -> None:
        """Cut every channel crossing the two sides."""
        for a in side_a:
            for b in side_b:
                self.cut(a, b)

    def heal_all(self) -> None:
        self._cut.clear()

    def set_drop_filter(
        self, predicate: Optional[Callable[[ProcessId, ProcessId, Any], bool]]
    ) -> None:
        """Drop messages for which ``predicate(src, dst, payload)`` is true."""
        self._drop_filter = predicate

    def set_link_fault(
        self,
        src: Optional[ProcessId] = None,
        dst: Optional[ProcessId] = None,
        *,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_spread: float = 0.004,
        filter: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        """Install (or replace) a :class:`LinkFaultPolicy`.

        ``src``/``dst`` select the scope: both ``None`` is the network-wide
        default, one of them wildcards that end, both given names one
        directed edge.  Resolution per message is most-specific-first:
        ``(src, dst)`` > ``(src, *)`` > ``(*, dst)`` > default — so an
        explicit all-zero policy on an edge shields it from a lossy
        default.  Every probabilistic draw comes from the edge's own
        ``faults.<src>.<dst>`` RNG stream, independent of latency draws
        and of every other edge.
        """
        self._link_faults[(src, dst)] = LinkFaultPolicy(
            loss=loss,
            duplicate=duplicate,
            reorder=reorder,
            reorder_spread=reorder_spread,
            filter=filter,
        )
        self._policy_cache.clear()

    def clear_link_fault(
        self, src: Optional[ProcessId] = None, dst: Optional[ProcessId] = None
    ) -> None:
        """Remove the policy installed for exactly this scope (idempotent)."""
        self._link_faults.pop((src, dst), None)
        self._policy_cache.clear()

    def clear_link_faults(self) -> None:
        """Remove every link-fault policy; the network is reliable again."""
        self._link_faults.clear()
        self._policy_cache.clear()

    def _resolve_policy(
        self, channel: Tuple[ProcessId, ProcessId]
    ) -> Optional[LinkFaultPolicy]:
        try:
            return self._policy_cache[channel]
        except KeyError:
            pass
        src, dst = channel
        faults = self._link_faults
        policy = (
            faults.get((src, dst))
            or faults.get((src, None))
            or faults.get((None, dst))
            or faults.get((None, None))
        )
        self._policy_cache[channel] = policy
        return policy

    def _fault_rng(self, channel: Tuple[ProcessId, ProcessId]):
        rng = self._fault_rngs.get(channel)
        if rng is None:
            rng = self.sim.rng(f"faults.{channel[0]}.{channel[1]}")
            self._fault_rngs[channel] = rng
        return rng

    def set_delay_filter(
        self, extra: Optional[Callable[[ProcessId, ProcessId, Any], float]]
    ) -> None:
        """Add ``extra(src, dst, payload)`` seconds of latency per message.

        Note: added delay interacts with the FIFO guarantee — a delayed
        message also delays everything behind it on the same channel, which
        is exactly how a slow link behaves.
        """
        self._delay_filter = extra

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def channel_stats(self, src: ProcessId, dst: ProcessId) -> ChannelStats:
        return self._stats.setdefault((src, dst), ChannelStats())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(procs={len(self._procs)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered})"
        )


class _FanoutGroup:
    """Flat per-(src, destination-set) state for the v3 fast path.

    One instance memoizes everything a batched fan-out needs: the
    destination pids, which of them are attached, and one pre-bound
    delivery callable per attached destination (the process's fast
    handler when it provides one, its generic ``_deliver`` otherwise).
    ``sent``/``delivered_runs`` accumulate whole fan-outs and are folded
    into the per-channel :class:`ChannelStats` lazily; ``last_now`` is
    the send time of the latest fast fan-out, from which the exact FIFO
    clamp (``last_now + constant latency``) is reconstructed when the
    network leaves the fast path.
    """

    __slots__ = (
        "src", "dsts", "attached", "handlers",
        "n_total", "n_attached", "sent", "delivered_runs", "last_now",
    )

    def __init__(self, src: ProcessId, dsts: Tuple[ProcessId, ...], procs) -> None:
        self.src = src
        self.dsts = dsts
        attached: List[ProcessId] = []
        handlers: List[Callable[[ProcessId, Any], None]] = []
        for dst in dsts:
            proc = procs.get(dst)
            if proc is not None:
                attached.append(dst)
                fast = proc._fast_handler
                handlers.append(fast if fast is not None else proc._deliver)
        self.attached = tuple(attached)
        self.handlers = handlers
        self.n_total = len(dsts)
        self.n_attached = len(attached)
        self.sent = 0
        self.delivered_runs = 0
        self.last_now: Optional[float] = None


class NetworkV3(Network):
    """Engine-v3 network: batched multicast fan-out over flat group state.

    Correctness argument (pinned by ``tests/sim/test_kernel_diff.py`` and
    ``tests/sim/test_batch_dispatch.py``):

    * The fast path engages only while the network is *pristine* — the
      latency model is exactly :class:`ConstantLatency` and no cut, drop
      filter, delay filter or link-fault policy has ever been installed.
      Under constant latency ``d`` the FIFO clamp provably never binds
      (the previous delivery on a channel was scheduled at
      ``t_prev + d <= now + d``), so all ``n-1`` deliveries of a fan-out
      share ``deliver_at = now + d`` and one kernel event can perform
      them all.
    * v2 schedules the per-destination deliveries back to back, so they
      occupy consecutive sequence numbers: no other event can order
      *between* them, and any event scheduled later (even at the same
      instant) runs after the whole fan-out.  The single v3 batch event
      therefore reproduces v2's total order exactly, provided no
      same-instant event uses a negative priority — nothing in the stack
      does.
    * The first fault-injection call permanently latches the network back
      to the per-event v2 path (PR 4/5 semantics untouched), after first
      materializing the deferred per-channel stats and FIFO clamps.

    Per-channel :class:`ChannelStats` and the clamp table are maintained
    lazily (whole fan-outs are counted per group and folded on demand);
    the global ``messages_sent``/``messages_delivered`` counters stay
    exact at all times.
    """

    #: v3 requests much larger per-edge latency refills: above
    #: ``VECTOR_MIN_BATCH`` the uniform model vectorizes the refill with
    #: numpy (exact, state-transplanted).  Draw order per edge is
    #: invariant under batch size, so this cannot perturb results.
    DRAW_BATCH = 1024

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__(sim, latency)
        self._fast_enabled = self._constant is not None
        self._groups: Dict[Any, _FanoutGroup] = {}
        #: Every group ever built — the lookup cache may be invalidated
        #: (attach) while in-flight batch events still hold references.
        self._all_groups: List[_FanoutGroup] = []

    # -- fast-path bookkeeping -----------------------------------------

    def attach(self, proc: SimProcess) -> None:
        super().attach(proc)
        if self._groups:
            # A new process invalidates memoized attachment/handler lists.
            self._flush_groups()
            self._groups.clear()

    def _flush_groups(self) -> None:
        """Fold deferred group counters into per-channel state.

        Safe to call at any time, any number of times: counters are
        reset after folding and in-flight batch events keep accumulating
        on the (still referenced) group objects.
        """
        d = self._constant
        stats_map = self._stats
        last = self._last_delivery
        for entry in self._all_groups:
            src = entry.src
            sent = entry.sent
            if sent:
                for dst in entry.dsts:
                    ch = (src, dst)
                    stats = stats_map.get(ch)
                    if stats is None:
                        stats = stats_map[ch] = ChannelStats()
                    stats.sent += sent
                entry.sent = 0
            delivered = entry.delivered_runs
            if delivered:
                for dst in entry.attached:
                    ch = (src, dst)
                    stats = stats_map.get(ch)
                    if stats is None:
                        stats = stats_map[ch] = ChannelStats()
                    stats.delivered += delivered
                entry.delivered_runs = 0
            if entry.last_now is not None and d is not None:
                clamp = entry.last_now + d
                for dst in entry.dsts:
                    ch = (src, dst)
                    if clamp > last.get(ch, 0.0):
                        last[ch] = clamp
                entry.last_now = None

    def _leave_fast_path(self) -> None:
        """Permanently fall back to the per-event v2 path.

        Called before the first fault-injection knob takes effect; the
        latch is one-way because a cleared delay filter or healed link
        may have pushed a channel's FIFO clamp beyond ``now + d``, which
        the clamp-free fast path could then violate.
        """
        self._fast_enabled = False
        self._flush_groups()

    # -- fault injection latches ---------------------------------------

    def cut(self, a: ProcessId, b: ProcessId, bidirectional: bool = True) -> None:
        self._leave_fast_path()
        super().cut(a, b, bidirectional)

    def set_drop_filter(self, predicate) -> None:
        self._leave_fast_path()
        super().set_drop_filter(predicate)

    def set_delay_filter(self, extra) -> None:
        self._leave_fast_path()
        super().set_delay_filter(extra)

    def set_link_fault(self, src=None, dst=None, **kwargs) -> None:
        self._leave_fast_path()
        super().set_link_fault(src, dst, **kwargs)

    # -- sending -------------------------------------------------------

    def multicast(
        self,
        src: ProcessId,
        dsts: Any,
        payload: Any,
        token: Optional[Any] = None,
    ) -> None:
        if not self._fast_enabled:
            for dst in dsts:
                self.send(src, dst, payload)
            return
        key = token if token is not None else (src, tuple(dsts))
        entry = self._groups.get(key)
        if entry is None:
            entry = _FanoutGroup(src, tuple(dsts), self._procs)
            self._groups[key] = entry
            self._all_groups.append(entry)
        entry.sent += 1
        self.messages_sent += entry.n_total
        now = self.sim.now
        entry.last_now = now
        self.sim.schedule_at(
            now + self._constant, self._deliver_group, entry, payload
        )

    def _deliver_group(self, entry: _FanoutGroup, payload: Any) -> None:
        # One kernel event delivers the whole fan-out, in v2's order
        # (destination order == consecutive-seq order).  Crash checks
        # happen per destination inside the handlers, exactly where v2's
        # per-event deliveries performed them.
        entry.delivered_runs += 1
        self.messages_delivered += entry.n_attached
        src = entry.src
        for handler in entry.handlers:
            handler(src, payload)

    # -- introspection -------------------------------------------------

    def channel_stats(self, src: ProcessId, dst: ProcessId) -> ChannelStats:
        self._flush_groups()
        return super().channel_stats(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NetworkV3(procs={len(self._procs)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"fast={'on' if self._fast_enabled else 'off'})"
        )
