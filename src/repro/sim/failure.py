"""Fault and perturbation injection (legacy schedules).

The paper distinguishes two phenomena:

* **crash-stop failures** — a process halts permanently (Section 3.1); and
* **performance perturbations** — a process (or its disk, scheduler, VM
  subsystem, ...) transiently slows down or stalls *without* being faulty
  (Sections 1-2).  These are the phenomenon SVS is designed to absorb.

:class:`CrashSchedule` injects the former; :class:`PerturbationSchedule`
injects the latter by pausing/resuming a *rate-limited consumer* (anything
exposing ``pause()``/``resume()``).  Both are driven off the simulator so
experiments are reproducible.

.. deprecated::
    These two classes predate :class:`repro.faults.FaultPlan`, which
    expresses the same events (plus partitions, lossy links, rejoin churn)
    declaratively, validates them up front and is sweepable.  They are kept
    working — :class:`~repro.faults.FaultPlan` installs perturbations
    through :class:`PerturbationSchedule`'s reference-counted pause/resume
    machinery — but new code should build a fault plan instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.sim.kernel import Simulator
from repro.sim.process import SimProcess

__all__ = [
    "Pausable",
    "ScheduleError",
    "check_time",
    "check_positive",
    "CrashSchedule",
    "Perturbation",
    "PerturbationSchedule",
]


class ScheduleError(ValueError, RuntimeError):
    """An invalid fault schedule: bad times, unknown targets, double install.

    Subclasses both :class:`ValueError` (the documented contract shared
    with :class:`repro.faults.FaultPlan`) and :class:`RuntimeError` (what
    the original double-``install()`` raised), so historical ``except``
    clauses keep working.
    """


def check_time(value: float, what: str, exc: type = ScheduleError) -> None:
    """Reject anything but a finite non-negative number (NaN fails the
    ``>= 0`` comparison).  Shared by the legacy schedules and
    :mod:`repro.faults` so the two validation surfaces cannot diverge."""
    if not isinstance(value, (int, float)) or not (value >= 0):
        raise exc(f"{what} must be a non-negative number: {value!r}")
    if math.isinf(value):
        raise exc(f"{what} must be finite: {value!r}")


def check_positive(value: float, what: str, exc: type = ValueError) -> None:
    """Reject anything but a finite strictly-positive number (NaN fails
    the ``> 0`` comparison).  Shared by the retry/interval knobs across
    the stack so their validation cannot diverge either."""
    if (
        not isinstance(value, (int, float))
        or not (value > 0)
        or math.isinf(value)
    ):
        raise exc(f"{what} must be a positive finite number: {value!r}")


class Pausable(Protocol):
    """Anything whose progress can be suspended and resumed."""

    def pause(self) -> None: ...

    def resume(self) -> None: ...


@dataclass
class CrashSchedule:
    """Crash given processes at given simulated times.

    ``crashes`` is a sequence of ``(time, process)`` pairs.  Call
    :meth:`install` once after constructing the processes; the schedule
    validates itself there (negative/NaN times, non-process targets and
    double installation all raise :class:`ScheduleError`).
    """

    sim: Simulator
    crashes: Sequence[Tuple[float, SimProcess]]
    installed: bool = field(default=False, init=False)

    def install(self) -> None:
        if self.installed:
            raise ScheduleError("crash schedule already installed")
        for time, proc in self.crashes:
            check_time(time, "crash time")
            if not callable(getattr(proc, "crash", None)):
                raise ScheduleError(
                    f"crash target has no crash() method: {proc!r}"
                )
        self.installed = True
        for time, proc in self.crashes:
            self.sim.schedule_at(time, proc.crash)


@dataclass(frozen=True)
class Perturbation:
    """A transient stall: the target makes no progress in [start, start+duration)."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class PerturbationSchedule:
    """Apply a sequence of :class:`Perturbation` windows to a pausable target.

    Overlapping perturbations are merged implicitly: pause/resume calls are
    reference-counted so nested windows behave sensibly.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Pausable,
        perturbations: Sequence[Perturbation],
    ) -> None:
        self.sim = sim
        self.target = target
        self.perturbations = list(perturbations)
        self._depth = 0
        self._installed = False

    def install(self) -> None:
        if self._installed:
            raise ScheduleError("perturbation schedule already installed")
        for p in self.perturbations:
            check_time(p.start, "perturbation start")
            check_time(p.duration, "perturbation duration")
        self._installed = True
        for p in self.perturbations:
            self.sim.schedule_at(p.start, self._pause)
            self.sim.schedule_at(p.end, self._resume)

    def _pause(self) -> None:
        self._depth += 1
        if self._depth == 1:
            self.target.pause()

    def _resume(self) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.target.resume()

    @property
    def total_stall_time(self) -> float:
        """Total stalled duration assuming no overlap (diagnostic)."""
        return sum(p.duration for p in self.perturbations)


def periodic_perturbations(
    first_start: float,
    duration: float,
    period: float,
    count: int,
) -> List[Perturbation]:
    """Build ``count`` equally spaced stalls of equal ``duration``.

    Convenience used by the throughput experiments: the paper studies "a
    receiver that completely stops to process messages" for a bounded window
    (Figure 5(b)); sweeping ``duration`` finds the tolerance limit.
    """
    if period <= 0 or count < 0:
        raise ValueError("period must be positive and count non-negative")
    return [
        Perturbation(first_start + i * period, duration) for i in range(count)
    ]
