"""Discrete-event simulation kernel (v2: slotted event queue).

The kernel is the substrate every other subsystem runs on: the network,
failure detectors, consensus, the SVS protocol and the throughput model all
advance by scheduling callbacks on a single :class:`Simulator`.

Determinism is a design requirement — the paper's evaluation compares two
protocols (reliable vs. semantic) on the *same* workload, so a run must be
exactly reproducible from a seed.  Two runs with the same seed and the same
sequence of ``schedule`` calls produce identical event orders:

* events are ordered by ``(time, priority, sequence-number)`` where the
  sequence number is a monotonically increasing tie-breaker, and
* all randomness flows through named child generators whose seeds are
  derived by hashing ``(master seed, name)`` with SHA-256 (see
  :meth:`Simulator.rng`) — stable across processes, platforms and
  ``PYTHONHASHSEED`` values.

Event storage (kernel v2)
-------------------------

The v1 kernel kept one global binary heap of ``(key, Event)`` pairs; every
event paid a frozen-dataclass construction, a nested sort-key tuple and an
O(log n) push/pop against the whole pending set, and cancelled events sat
in the heap as tombstones until their key surfaced.  v2 replaces this with
a *slotted* queue (see ``docs/kernel.md`` for the full design):

* pending events are grouped into **per-tick buckets** — ``tick`` seconds
  of simulated time per slot — so heap traffic is per *bucket*, not per
  event, and each bucket is ordered with one batched ``list.sort``;
* events beyond the bucket horizon (``tick × span`` ahead) wait in an
  **overflow heap** and are re-bucketed in batches when the wheel drains —
  workloads that pre-schedule a whole trace up front (the Scenario
  injector) no longer inflate every near-term heap operation;
* an event is one lightweight ``__slots__`` handle; cancellation stays
  lazy (a flag checked at pop time) and therefore O(1).

The observable semantics are identical to v1 — same ordering contract,
same ``SimulationError`` cases, bit-for-bit identical event orders — which
the golden fixtures in ``tests/fixtures/`` pin.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulatorV3",
    "SimulationError",
    "derive_stream_seed",
    "stream_rng",
]


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


class EventHandle(list):
    """A scheduled callback: its ordering key, payload and cancel flag.

    v1 split this across an immutable ``Event`` record, a cancellable
    handle wrapper and a nested sort-key tuple — three allocations and a
    Python-level ``__init__`` per event.  v2 merges all of it into one
    list subclass with layout ``[time, priority, seq, callback, args,
    cancelled]``: construction is the C list initializer, the object *is*
    its own heap entry (lists compare elementwise exactly like the old key
    tuples — ``seq`` is unique, so comparisons never reach the callback),
    and the named accessors below keep the v1 surface.

    Cancellation is lazy: the handle stays queued with ``cancelled`` set
    and is skipped when its slot drains, keeping :meth:`Simulator.cancel`
    O(1).
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[0]

    @property
    def priority(self) -> int:
        return self[1]

    @property
    def seq(self) -> int:
        return self[2]

    @property
    def callback(self) -> Callable[..., None]:
        return self[3]

    @property
    def args(self) -> Tuple[Any, ...]:
        return self[4]

    @property
    def cancelled(self) -> bool:
        return self[5]

    def sort_key(self) -> Tuple[float, int, int]:
        return (self[0], self[1], self[2])

    def cancel(self) -> None:
        self[5] = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self[5] else ""
        return f"EventHandle(t={self[0]:.6f}, prio={self[1]}{state})"


#: Backwards-compatible alias: v1 exposed a separate immutable ``Event``
#: record; v2's handle carries the same fields.
Event = EventHandle

#: Queue entries *are* the handles (see :class:`EventHandle`).
_Entry = EventHandle


def derive_stream_seed(master_seed: int, name: str) -> int:
    """Child-generator seed for ``(master seed, stream name)``.

    SHA-256 based so streams are independent of ``PYTHONHASHSEED``, the
    platform and the process — byte-identical runs everywhere.
    """
    digest = hashlib.sha256(f"{master_seed}|{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream_rng(
    master_seed: int, name: str, cache: Dict[str, random.Random]
) -> random.Random:
    """The named child generator for ``(master seed, name)``, memoized.

    This is the one shared implementation of the stream contract: every
    clock — the discrete-event :class:`Simulator` and the live
    :class:`~repro.transport.clock.WallClock` — answers ``rng(name)``
    through this helper, so a protocol component draws the *same* stream
    for the same seed and name regardless of which substrate it runs on.
    ``cache`` is the caller's per-instance memo table; a stream is created
    on first use and returned as-is (with its consumed position) after.
    """
    gen = cache.get(name)
    if gen is None:
        gen = random.Random(derive_stream_seed(master_seed, name))
        cache[name] = gen
    return gen


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator(seed=42)
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock unit is arbitrary; the reproduction uses seconds throughout so
    that message rates are expressed in msg/s as in the paper.

    ``tick`` is the slot width of the event queue (simulated seconds per
    bucket) and ``span`` the number of slots covered before events spill to
    the overflow heap.  They are performance knobs only — ordering is
    independent of both.  The 8 ms default clusters the periods that
    dominate this reproduction (consumer service times, heartbeats, game
    rounds: 7–50 ms) a few events per slot, which benchmarked fastest
    across the kernel workloads.
    """

    __slots__ = (
        "now", "_tick", "_inv_tick", "_span", "_active", "_active_idx",
        "_buckets", "_bucket_heap", "_overflow", "_horizon",
        "_seq", "_seed", "_rngs", "_events_processed", "_running",
        "_stopped",
    )

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        tick: float = 0.008,
        span: int = 4096,
    ) -> None:
        if tick <= 0:
            raise SimulationError(f"tick must be positive: {tick!r}")
        if span < 1:
            raise SimulationError(f"span must be at least 1: {span!r}")
        #: Current simulated time.  A plain attribute (reads are hot);
        #: treat as read-only — only event execution advances it.
        self.now = float(start_time)
        self._tick = tick
        self._inv_tick = 1.0 / tick
        self._span = span
        # Slotted queue state: the active (already sorted) slot, the
        # per-tick buckets ahead of it, and the far-future overflow heap.
        self._active: List[_Entry] = []
        self._active_idx = int(self.now * self._inv_tick) - 1
        self._buckets: Dict[int, List[_Entry]] = {}
        self._bucket_heap: List[int] = []
        self._overflow: List[_Entry] = []
        self._horizon = int(self.now * self._inv_tick) + span
        self._seq = 0
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones).

        Computed from the queue tiers on demand — introspection is rare,
        the scheduling path is not, so no counter is maintained there.
        """
        return (
            len(self._active)
            + sum(map(len, self._buckets.values()))
            + len(self._overflow)
        )

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str = "default") -> random.Random:
        """Return the named child generator, creating it on first use.

        Child generators are seeded from ``sha256(master seed | name)`` so
        adding a new consumer of randomness does not perturb the streams of
        existing consumers — essential for paired reliable/semantic
        comparisons — and the same seed reproduces the same streams on any
        machine regardless of ``PYTHONHASHSEED``.
        """
        return stream_rng(self._seed, name, self._rngs)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now.

        ``priority`` breaks ties among events at the same time: lower runs
        first.  Negative delays are rejected.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        # Insertion is inlined (not delegated to schedule_at): this is the
        # hottest kernel entry point and the extra frame is measurable.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        entry = EventHandle((time, priority, seq, callback, args, False))
        idx = int(time * self._inv_tick)
        if idx <= self._active_idx:
            heappush(self._active, entry)
        elif idx < self._horizon:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._bucket_heap, idx)
            else:
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)
        return entry

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, current time is {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = EventHandle((time, priority, seq, callback, args, False))
        idx = int(time * self._inv_tick)
        if idx <= self._active_idx:
            # At or behind the slot being drained (including re-entry after
            # a paused run): merge straight into the active heap.
            heappush(self._active, entry)
        elif idx < self._horizon:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._bucket_heap, idx)
            else:
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)
        return entry

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle[5] = True

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def _next_slot(self) -> Optional[List[_Entry]]:
        """Pop, sort and return the next non-empty slot (None when dry).

        Shared by both engines: v2 merges the slot into its active heap,
        v3 drains it in place by index (see :class:`SimulatorV3`).
        """
        while True:
            if self._bucket_heap:
                idx = heappop(self._bucket_heap)
                entries = self._buckets.pop(idx)
                if len(entries) > 1:
                    entries.sort()
                self._active_idx = idx
                return entries
            if not self._overflow:
                return None
            # Wheel ran dry: advance the horizon to cover the earliest
            # overflow event and re-bucket everything inside it.
            overflow = self._overflow
            inv_tick = self._inv_tick
            horizon = int(overflow[0][0] * inv_tick) + self._span
            self._horizon = horizon
            buckets = self._buckets
            bucket_heap = self._bucket_heap
            while overflow and int(overflow[0][0] * inv_tick) < horizon:
                entry = heappop(overflow)
                idx = int(entry[0] * inv_tick)
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [entry]
                    heappush(bucket_heap, idx)
                else:
                    bucket.append(entry)

    def _refill(self) -> bool:
        """Load the next non-empty slot into the (empty) active heap.

        Returns False when nothing is pending anywhere.  One batched
        ``sort`` orders the whole slot; the sorted list is a valid binary
        heap, so later same-slot arrivals can still be merged by push.
        """
        entries = self._next_slot()
        if entries is None:
            return False
        self._active.extend(entries)
        return True

    def _next_entry(self) -> Optional[_Entry]:
        """The earliest live entry, left in place (cancelled ones pruned)."""
        active = self._active
        while True:
            if active:
                entry = active[0]
                if entry[5]:
                    heappop(active)
                    continue
                return entry
            if not self._refill():
                return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if nothing is pending.
        """
        entry = self._next_entry()
        if entry is None:
            return False
        heappop(self._active)
        self.now = entry[0]
        self._events_processed += 1
        entry[3](*entry[4])
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` are executed; the clock is
        advanced to ``until`` at the end if the simulation ran dry earlier.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        processed = 0
        active = self._active
        unbounded = until is None and max_events is None
        try:
            while not self._stopped:
                # Inlined _next_entry(): this loop runs once per event.
                # ``events_processed`` is accumulated locally and folded
                # back in the finally block — per-event attribute writes
                # are measurable at this call rate.
                if active:
                    entry = active[0]
                    if entry[5]:
                        heappop(active)
                        continue
                elif self._refill():
                    continue
                else:
                    break
                if not unbounded:
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    executed += 1
                heappop(active)
                self.now = entry[0]
                processed += 1
                entry[3](*entry[4])
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._events_processed += processed
            self._running = False

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class SimulatorV3(Simulator):
    """Kernel v3: batch slot dispatch over the v2 slotted queue.

    v2 drains a slot through a binary heap: one ``heappop`` per event even
    though the slot was already fully sorted when it was loaded.  v3 keeps
    the sorted slot as a flat list and walks it by index — the common case
    per event is one bounds check, one list index and the dispatch, no
    heap traffic at all.

    Same-slot *late arrivals* (events scheduled, while the slot drains,
    at a time that falls inside it) still go through the inherited
    ``schedule``/``schedule_at`` fast paths, which push them onto the
    active heap; the drain loop merges that (normally empty) spill heap
    against the slot list entry by entry.  Because entries compare by
    ``(time, priority, seq)`` and seq is unique, the merge reproduces the
    v2 total order bit for bit — the differential suite in
    ``tests/sim/test_kernel_diff.py`` and the property tests in
    ``tests/sim/test_batch_dispatch.py`` pin this.

    Cancellation stays lazy and O(1): cancelled entries are skipped at
    their slot-list position (or pruned from the spill heap) exactly when
    v2 would have skipped them at pop time.
    """

    __slots__ = ("_slot", "_cursor")

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        tick: float = 0.008,
        span: int = 4096,
    ) -> None:
        super().__init__(seed=seed, start_time=start_time, tick=tick, span=span)
        #: The active slot, sorted, drained in place by ``_cursor``.
        self._slot: List[_Entry] = []
        self._cursor = 0

    @property
    def pending_events(self) -> int:
        return (len(self._slot) - self._cursor) + super().pending_events

    def _refill(self) -> bool:
        entries = self._next_slot()
        if entries is None:
            return False
        self._slot.extend(entries)
        return True

    def _pop_next(self) -> Optional[_Entry]:
        """Remove and return the earliest live entry (merge of slot list
        and spill heap), refilling from the buckets as needed."""
        active = self._active
        slot = self._slot
        while True:
            cursor = self._cursor
            if cursor < len(slot):
                entry = slot[cursor]
                if active and active[0] < entry:
                    entry = heappop(active)
                    if entry[5]:
                        continue
                    return entry
                self._cursor = cursor + 1
                if entry[5]:
                    continue
                return entry
            if active:
                entry = heappop(active)
                if entry[5]:
                    continue
                return entry
            if slot:
                slot.clear()
                self._cursor = 0
            if self._next_slot_into(slot) is False:
                return None

    def _next_slot_into(self, slot: List[_Entry]) -> bool:
        entries = self._next_slot()
        if entries is None:
            return False
        slot.extend(entries)
        return True

    def step(self) -> bool:
        entry = self._pop_next()
        if entry is None:
            return False
        self.now = entry[0]
        self._events_processed += 1
        entry[3](*entry[4])
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        processed = 0
        active = self._active
        slot = self._slot
        cursor = self._cursor
        unbounded = until is None and max_events is None
        try:
            while not self._stopped:
                # Batch dispatch: the sorted slot is consumed by index;
                # the spill heap (same-slot late arrivals) is merged in
                # by comparison and is empty in the common case.
                from_heap = False
                if cursor < len(slot):
                    entry = slot[cursor]
                    if active:
                        head = active[0]
                        if head < entry:
                            if head[5]:
                                heappop(active)
                                continue
                            entry = head
                            from_heap = True
                    if not from_heap and entry[5]:
                        cursor += 1
                        continue
                elif active:
                    entry = active[0]
                    if entry[5]:
                        heappop(active)
                        continue
                    from_heap = True
                else:
                    if slot:
                        slot.clear()
                    cursor = 0
                    self._cursor = 0
                    if self._next_slot_into(slot):
                        continue
                    break
                if not unbounded:
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    executed += 1
                if from_heap:
                    heappop(active)
                else:
                    cursor += 1
                self.now = entry[0]
                processed += 1
                entry[3](*entry[4])
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._cursor = cursor
            self._events_processed += processed
            self._running = False


@dataclass
class PeriodicTimer:
    """Repeatedly invoke a callback at a fixed period.

    The timer re-arms itself after each tick; :meth:`stop` halts it.  Used
    by heartbeat failure detectors and rate-limited consumers.
    """

    sim: Simulator
    period: float
    callback: Callable[[], None]
    priority: int = 0
    _handle: Optional[EventHandle] = field(default=None, repr=False)
    _active: bool = field(default=False, repr=False)

    def start(self, initial_delay: Optional[float] = None) -> None:
        if self.period <= 0:
            raise SimulationError(f"period must be positive: {self.period!r}")
        if self._active:
            return
        self._active = True
        delay = self.period if initial_delay is None else initial_delay
        self._handle = self.sim.schedule(delay, self._tick, priority=self.priority)

    def stop(self) -> None:
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        return self._active

    def _tick(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._handle = self.sim.schedule(
                self.period, self._tick, priority=self.priority
            )
