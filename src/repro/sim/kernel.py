"""Discrete-event simulation kernel.

The kernel is the substrate every other subsystem runs on: the network,
failure detectors, consensus, the SVS protocol and the throughput model all
advance by scheduling callbacks on a single :class:`Simulator`.

Determinism is a design requirement — the paper's evaluation compares two
protocols (reliable vs. semantic) on the *same* workload, so a run must be
exactly reproducible from a seed.  Two runs with the same seed and the same
sequence of ``schedule`` calls produce identical event orders:

* events are ordered by ``(time, priority, sequence-number)`` where the
  sequence number is a monotonically increasing tie-breaker, and
* all randomness flows through named child generators derived from the
  simulator's master seed (see :meth:`Simulator.rng`).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


@dataclass(frozen=True)
class Event:
    """An immutable record of a scheduled callback.

    Events are internal to the kernel; user code holds
    :class:`EventHandle` objects, which add cancellation.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None]
    args: Tuple[Any, ...] = ()

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventHandle:
    """Cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps :meth:`Simulator.cancel` O(1).
    """

    __slots__ = ("event", "_cancelled")

    def __init__(self, event: Event) -> None:
        self.event = event
        self._cancelled = False

    @property
    def time(self) -> float:
        return self.event.time

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator(seed=42)
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock unit is arbitrary; the reproduction uses seconds throughout so
    that message rates are expressed in msg/s as in the paper.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[Tuple[float, int, int], EventHandle]] = []
        self._seq = itertools.count()
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str = "default") -> random.Random:
        """Return the named child generator, creating it on first use.

        Child generators are seeded from ``(master seed, name)`` so adding a
        new consumer of randomness does not perturb the streams of existing
        consumers — essential for paired reliable/semantic comparisons.
        """
        gen = self._rngs.get(name)
        if gen is None:
            gen = random.Random((self._seed, name).__hash__() & 0x7FFFFFFF)
            self._rngs[name] = gen
        return gen

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now.

        ``priority`` breaks ties among events at the same time: lower runs
        first.  Negative delays are rejected.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, current time is {self._now!r}"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        handle = EventHandle(event)
        heapq.heappush(self._heap, (event.sort_key(), handle))
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            event = handle.event
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` are executed; the clock is
        advanced to ``until`` at the end if the simulation ran dry earlier.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                key, handle = self._heap[0]
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and key[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._heap)
                event = handle.event
                self._now = event.time
                self._events_processed += 1
                executed += 1
                event.callback(*event.args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


@dataclass
class PeriodicTimer:
    """Repeatedly invoke a callback at a fixed period.

    The timer re-arms itself after each tick; :meth:`stop` halts it.  Used
    by heartbeat failure detectors and rate-limited consumers.
    """

    sim: Simulator
    period: float
    callback: Callable[[], None]
    priority: int = 0
    _handle: Optional[EventHandle] = field(default=None, repr=False)
    _active: bool = field(default=False, repr=False)

    def start(self, initial_delay: Optional[float] = None) -> None:
        if self.period <= 0:
            raise SimulationError(f"period must be positive: {self.period!r}")
        if self._active:
            return
        self._active = True
        delay = self.period if initial_delay is None else initial_delay
        self._handle = self.sim.schedule(delay, self._tick, priority=self.priority)

    def stop(self) -> None:
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        return self._active

    def _tick(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._handle = self.sim.schedule(
                self.period, self._tick, priority=self.priority
            )
