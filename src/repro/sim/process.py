"""Simulated processes.

The paper's system model (Section 3.1) is a set of sequential processes
that can send a message, receive a message, perform local computation, and
crash (crash-stop).  :class:`SimProcess` is that model: a single-threaded
event handler attached to a :class:`~repro.sim.kernel.Simulator`, reachable
through a :class:`~repro.sim.network.Network`.

Crash semantics: once :meth:`SimProcess.crash` is called the process silently
drops every subsequent delivery and timer tick.  Nothing is un-sent — messages
already in channels may still be delivered to others, exactly as in an
asynchronous network.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.kernel import EventHandle, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = ["ProcessId", "SimProcess", "ProcessRegistry"]

#: Process identifiers are small integers throughout the reproduction; the
#: alias documents intent at call sites.
ProcessId = int


class SimProcess:
    """Base class for protocol participants.

    Subclasses override :meth:`on_message` (and optionally :meth:`on_start`)
    and use :meth:`send`, :meth:`set_timer` and :meth:`cancel_timer` to
    interact with the world.  All interaction is mediated by the simulator,
    so a process is fully deterministic given its inputs.
    """

    #: Optional batched-delivery shortcut used by the v3 network: a
    #: callable with the exact semantics of :meth:`_deliver` (crash check
    #: included) that a subclass may bind per instance to skip its own
    #: message-routing dispatch on the hot path.  ``None`` means "use
    #: :meth:`_deliver`"; v2 never consults it.
    _fast_handler: Optional[Callable[[ProcessId, Any], None]] = None

    def __init__(self, pid: ProcessId, sim: Simulator, network: "Network") -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.crashed = False
        self.crash_time: Optional[float] = None
        self._timers: Dict[str, EventHandle] = {}
        network.attach(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule :meth:`on_start` at the current simulated time."""
        self.sim.schedule(0.0, self._run_start)

    def _run_start(self) -> None:
        if not self.crashed:
            self.on_start()

    def crash(self) -> None:
        """Crash-stop this process: cancel timers, ignore future events."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_time = self.sim.now
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.on_crash()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the process starts.  Default: nothing."""

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        """Called for each message delivered by the network."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called once when the process crashes.  Default: nothing."""

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def send(self, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` to ``dst`` over the network.

        Sending to ``self.pid`` is allowed and goes through the network like
        any other message (the SVS protocol instead short-circuits
        self-delivery explicitly, as in Figure 1 t2).
        """
        if self.crashed:
            return
        self.network.send(self.pid, dst, payload)

    def send_multicast(
        self, dsts: Any, payload: Any, token: Optional[Any] = None
    ) -> None:
        """Send ``payload`` to every destination, in iteration order.

        Exactly a loop of :meth:`send` (one crash check up front — the
        flag cannot change mid-call), but routed through
        :meth:`Network.multicast <repro.sim.network.Network.multicast>`
        so the v3 engine can batch the whole fan-out into one event.
        ``token`` is the optional memoization token forwarded to the
        network (see ``Network.multicast``).
        """
        if self.crashed:
            return
        self.network.multicast(self.pid, dsts, payload, token)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        """(Re-)arm the named timer; a previous timer of that name is
        cancelled first."""
        if self.crashed:
            return
        self.cancel_timer(name)

        def fire() -> None:
            if self.crashed:
                return
            self._timers.pop(name, None)
            callback()

        self._timers[name] = self.sim.schedule(delay, fire)

    def cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def has_timer(self, name: str) -> bool:
        return name in self._timers

    # ------------------------------------------------------------------
    # Network entry point
    # ------------------------------------------------------------------

    def _deliver(self, sender: ProcessId, payload: Any) -> None:
        """Entry point used by the network; drops deliveries after crash."""
        if self.crashed:
            return
        self.on_message(sender, payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}(pid={self.pid}, {state})"


class ProcessRegistry:
    """A container of processes keyed by pid, with bulk operations.

    Convenience for tests and experiment harnesses that create groups of
    identical processes.
    """

    def __init__(self) -> None:
        self._procs: Dict[ProcessId, SimProcess] = {}

    def add(self, proc: SimProcess) -> SimProcess:
        if proc.pid in self._procs:
            raise ValueError(f"duplicate pid {proc.pid}")
        self._procs[proc.pid] = proc
        return proc

    def __getitem__(self, pid: ProcessId) -> SimProcess:
        return self._procs[pid]

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._procs

    def __iter__(self):
        return iter(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> List[ProcessId]:
        return sorted(self._procs)

    def start_all(self) -> None:
        for proc in self._procs.values():
            proc.start()

    def alive(self) -> List[SimProcess]:
        return [p for p in self._procs.values() if not p.crashed]
