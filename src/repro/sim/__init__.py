"""Discrete-event simulation substrate.

Everything in the reproduction executes on this substrate: a deterministic
event-driven :class:`~repro.sim.kernel.Simulator`, crash-stop
:class:`~repro.sim.process.SimProcess` participants, a reliable-FIFO
:class:`~repro.sim.network.Network`, and fault/perturbation injection in
:mod:`repro.sim.failure`.
"""

from repro.sim.kernel import Event, EventHandle, PeriodicTimer, SimulationError, Simulator
from repro.sim.network import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.process import ProcessId, ProcessRegistry, SimProcess
from repro.sim.failure import (
    CrashSchedule,
    Perturbation,
    PerturbationSchedule,
    periodic_perturbations,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "ProcessId",
    "SimProcess",
    "ProcessRegistry",
    "CrashSchedule",
    "Perturbation",
    "PerturbationSchedule",
    "periodic_perturbations",
]
