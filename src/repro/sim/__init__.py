"""Discrete-event simulation substrate.

Everything in the reproduction executes on this substrate: a deterministic
event-driven :class:`~repro.sim.kernel.Simulator`, crash-stop
:class:`~repro.sim.process.SimProcess` participants, a reliable-FIFO
:class:`~repro.sim.network.Network` with an optional lossy/partitionable
link layer, and the legacy fault/perturbation schedules in
:mod:`repro.sim.failure` (superseded by the declarative plans of
:mod:`repro.faults`).
"""

from repro.sim.kernel import Event, EventHandle, PeriodicTimer, SimulationError, Simulator
from repro.sim.network import (
    ConstantLatency,
    LatencyModel,
    LinkFaultPolicy,
    LognormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.process import ProcessId, ProcessRegistry, SimProcess
from repro.sim.failure import (
    CrashSchedule,
    Perturbation,
    PerturbationSchedule,
    ScheduleError,
    periodic_perturbations,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "Network",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "ProcessId",
    "SimProcess",
    "ProcessRegistry",
    "LinkFaultPolicy",
    "CrashSchedule",
    "Perturbation",
    "PerturbationSchedule",
    "ScheduleError",
    "periodic_perturbations",
]
