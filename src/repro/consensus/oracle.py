"""Instant consensus oracle for tests and fast experiments.

Decides the *first* proposal made for each key and announces the decision
to every registered instance after a configurable delay.  Satisfies the
consensus contract (agreement, validity, termination for all registered
instances) by construction, with zero protocol messages — useful to test
SVS logic in isolation from consensus latency, and as the fast path in
large experiment sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.consensus.interface import (
    ConsensusFactory,
    ConsensusInstance,
    DecisionCallback,
)
from repro.registry import consensus_protocols as _consensus_registry
from repro.sim.kernel import Simulator
from repro.sim.process import ProcessId, SimProcess

__all__ = ["OracleConsensusHub", "OracleConsensusInstance"]


class OracleConsensusInstance(ConsensusInstance):
    """Per-process endpoint of the oracle; see :class:`OracleConsensusHub`."""

    def __init__(
        self,
        hub: "OracleConsensusHub",
        owner: SimProcess,
        key: Hashable,
        participants: Sequence[ProcessId],
        on_decide: DecisionCallback,
    ) -> None:
        super().__init__(key, participants, on_decide)
        self.hub = hub
        self.owner = owner
        hub._register(self)

    def propose(self, value: Any) -> None:
        self.hub._propose(self.key, value)

    def on_message(self, sender: ProcessId, body: Any) -> None:
        # The oracle never sends network messages.
        raise AssertionError("oracle consensus uses no protocol messages")

    def _announce(self, value: Any) -> None:
        if not self.owner.crashed:
            self._decide(value)


class OracleConsensusHub:
    """Shared decision authority keyed by consensus instance.

    ``decision_delay`` models the latency of a real consensus round so that
    experiments using the oracle still exhibit a non-zero view-change
    window.
    """

    def __init__(self, sim: Simulator, decision_delay: float = 0.0) -> None:
        if decision_delay < 0:
            raise ValueError(f"negative decision delay: {decision_delay}")
        self.sim = sim
        self.decision_delay = decision_delay
        self._instances: Dict[Hashable, List[OracleConsensusInstance]] = {}
        self._decisions: Dict[Hashable, Any] = {}

    def instance(
        self,
        owner: SimProcess,
        key: Hashable,
        participants: Sequence[ProcessId],
        on_decide: DecisionCallback,
    ) -> OracleConsensusInstance:
        """Factory with the :data:`ConsensusFactory` signature (bound)."""
        return OracleConsensusInstance(self, owner, key, participants, on_decide)

    # ------------------------------------------------------------------
    # Hub internals
    # ------------------------------------------------------------------

    def _register(self, instance: OracleConsensusInstance) -> None:
        self._instances.setdefault(instance.key, []).append(instance)
        if instance.key in self._decisions:
            value = self._decisions[instance.key]
            self.sim.schedule(self.decision_delay, instance._announce, value)

    def _propose(self, key: Hashable, value: Any) -> None:
        if key in self._decisions:
            return
        self._decisions[key] = value
        for instance in self._instances.get(key, []):
            self.sim.schedule(self.decision_delay, instance._announce, value)

    def decision_for(self, key: Hashable) -> Optional[Any]:
        return self._decisions.get(key)


@_consensus_registry.register("oracle")
def _oracle_protocol(stack) -> "ConsensusFactory":
    """Registry plugin: instant (optionally delayed) shared decisions.

    Stashes the hub on the stack as ``stack.oracle_hub`` so tests and
    experiments can reach the shared decision authority.
    """
    hub = OracleConsensusHub(stack.sim, decision_delay=stack.config.consensus_delay)
    stack.oracle_hub = hub
    return hub.instance
