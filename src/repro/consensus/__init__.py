"""Consensus building block: interface, ◇S implementation, oracle."""

from repro.consensus.interface import (
    CONSENSUS_STREAM,
    ConsensusFactory,
    ConsensusInstance,
)
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.oracle import OracleConsensusHub, OracleConsensusInstance

__all__ = [
    "ConsensusInstance",
    "ConsensusFactory",
    "CONSENSUS_STREAM",
    "ChandraTouegConsensus",
    "OracleConsensusHub",
    "OracleConsensusInstance",
]
