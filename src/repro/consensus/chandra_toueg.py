"""Chandra–Toueg ◇S consensus with a rotating coordinator.

This is the consensus building block assumed by the paper (Section 3.1,
citing Chandra & Toueg 1996 and the Guerraoui–Schiper generic consensus
service).  It solves uniform consensus in the asynchronous model with
reliable channels, crash-stop failures of a minority of participants, and
an eventually strong (◇S) failure detector.

Protocol sketch (per round ``r``, coordinator ``c = participants[r mod n]``):

1. every participant sends ``ESTIMATE(r, estimate, ts)`` to ``c``;
2. ``c`` collects a majority of estimates, adopts the one with the highest
   timestamp, and sends ``PROPOSE(r, v)`` to all;
3. each participant waits for the proposal *or* for its failure detector to
   suspect ``c``; it answers ``ACK(r)`` (locking ``v`` with ``ts = r``) or
   ``NACK(r)`` and immediately moves to round ``r + 1``;
4. if ``c`` collects a majority of ACKs it reliably broadcasts
   ``DECIDE(v)``; any NACK sends it to the next round instead.

``DECIDE`` is delivered via the classic flood: on first receipt, forward to
all participants and decide — this makes decision uniform despite crashes.

The locking mechanism (highest-timestamp adoption + majority intersection)
gives agreement; validity holds because estimates only ever hold proposals;
termination holds once the detector stops wrongly suspecting the
coordinator (◇S), since rounds rotate through all participants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.consensus.interface import (
    CONSENSUS_STREAM,
    ConsensusFactory,
    ConsensusInstance,
    DecisionCallback,
)
from repro.core.message import Envelope
from repro.fd.detector import FailureDetector
from repro.registry import consensus_protocols as _consensus_registry
from repro.sim.process import ProcessId, SimProcess

__all__ = [
    "Estimate",
    "Proposal",
    "Ack",
    "Nack",
    "Decide",
    "ChandraTouegConsensus",
]


@dataclass(frozen=True)
class Estimate:
    round: int
    value: Any
    ts: int


@dataclass(frozen=True)
class Proposal:
    round: int
    value: Any


@dataclass(frozen=True)
class Ack:
    round: int


@dataclass(frozen=True)
class Nack:
    round: int


@dataclass(frozen=True)
class Decide:
    value: Any


class ChandraTouegConsensus(ConsensusInstance):
    """One ◇S consensus instance embedded in a simulated process.

    The owner process must route ``Envelope(stream="consensus",
    instance=key)`` messages into :meth:`on_message`.  The instance
    subscribes to the failure detector to unblock phase 3 when the
    coordinator is suspected.
    """

    def __init__(
        self,
        owner: SimProcess,
        key: Hashable,
        participants: Sequence[ProcessId],
        on_decide: DecisionCallback,
        fd: FailureDetector,
    ) -> None:
        super().__init__(key, participants, on_decide)
        self.owner = owner
        self.fd = fd
        self._proposed = False
        self._estimate: Any = None
        self._ts = -1  # round in which the estimate was last locked
        self._round = 0
        self._waiting_proposal = False  # in phase 3 of self._round
        self._answered_rounds: Set[int] = set()
        # Out-of-order buffers, keyed by round.
        self._estimates: Dict[int, Dict[ProcessId, Estimate]] = {}
        self._proposals: Dict[int, Proposal] = {}
        self._replies: Dict[int, Dict[ProcessId, bool]] = {}  # True=ACK
        self._proposal_sent_rounds: Set[int] = set()
        self._decide_forwarded = False
        fd.subscribe(self._on_suspicion_change)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def propose(self, value: Any) -> None:
        if self._proposed:
            return
        self._proposed = True
        self._estimate = value
        self._ts = -1
        self._start_round(0)

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------

    def _coordinator(self, rnd: int) -> ProcessId:
        return self.participants[rnd % len(self.participants)]

    def _start_round(self, rnd: int) -> None:
        if self.decided or self.owner.crashed:
            return
        self._round = rnd
        self._waiting_proposal = True
        coordinator = self._coordinator(rnd)
        self._send(coordinator, Estimate(rnd, self._estimate, self._ts))
        # Phase 2 may already be satisfiable from buffered estimates.
        self._maybe_coordinate(rnd)
        # Phase 3 may already be satisfiable (buffered proposal/suspicion).
        self._maybe_answer(rnd)

    def _maybe_coordinate(self, rnd: int) -> None:
        """Phase 2: as coordinator, propose once a majority of estimates is in."""
        if self.decided or self._coordinator(rnd) != self.owner.pid:
            return
        if rnd in self._proposal_sent_rounds:
            return
        estimates = self._estimates.get(rnd, {})
        if len(estimates) < self.majority:
            return
        best = max(estimates.values(), key=lambda e: e.ts)
        self._proposal_sent_rounds.add(rnd)
        proposal = Proposal(rnd, best.value)
        for p in self.participants:
            self._send(p, proposal)

    def _maybe_answer(self, rnd: int) -> None:
        """Phase 3: answer the coordinator's proposal, or NACK on suspicion."""
        if self.decided or not self._waiting_proposal or rnd != self._round:
            return
        if rnd in self._answered_rounds:
            return
        coordinator = self._coordinator(rnd)
        proposal = self._proposals.get(rnd)
        if proposal is not None:
            self._estimate = proposal.value
            self._ts = rnd
            self._answered_rounds.add(rnd)
            self._waiting_proposal = False
            self._send(coordinator, Ack(rnd))
            self._start_round(rnd + 1)
        elif self.fd.suspects(coordinator):
            self._answered_rounds.add(rnd)
            self._waiting_proposal = False
            self._send(coordinator, Nack(rnd))
            self._start_round(rnd + 1)

    def _maybe_decide(self, rnd: int) -> None:
        """Phase 4: as coordinator, decide on a majority of ACKs."""
        if self.decided or self._coordinator(rnd) != self.owner.pid:
            return
        if rnd not in self._proposal_sent_rounds:
            return
        replies = self._replies.get(rnd, {})
        acks = sum(1 for is_ack in replies.values() if is_ack)
        if acks >= self.majority:
            self._broadcast_decide(self._proposals[rnd].value)

    def _broadcast_decide(self, value: Any) -> None:
        if self._decide_forwarded:
            return
        self._decide_forwarded = True
        decide = Decide(value)
        for p in self.participants:
            if p != self.owner.pid:
                self._send(p, decide)
        self._decide(value)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, body: Any) -> None:
        if self.owner.crashed:
            return
        if isinstance(body, Decide):
            # Reliable broadcast: forward before deciding.
            self._broadcast_decide(body.value)
            return
        if self.decided:
            return
        if isinstance(body, Estimate):
            self._estimates.setdefault(body.round, {})[sender] = body
            if self._proposed:
                self._maybe_coordinate(body.round)
        elif isinstance(body, Proposal):
            # Only the genuine coordinator's proposal counts.
            if sender == self._coordinator(body.round):
                self._proposals[body.round] = body
                if self._proposed:
                    self._maybe_answer(body.round)
        elif isinstance(body, Ack):
            self._replies.setdefault(body.round, {})[sender] = True
            if self._proposed:
                self._maybe_decide(body.round)
        elif isinstance(body, Nack):
            self._replies.setdefault(body.round, {})[sender] = False
            # A NACK can never complete a decision; nothing else to do —
            # the coordinator has itself moved on via its own phase 3.

    def _on_suspicion_change(self, pid: ProcessId, suspected: bool) -> None:
        if suspected and self._proposed and not self.decided:
            self._maybe_answer(self._round)

    def _send(self, dst: ProcessId, body: Any) -> None:
        envelope = Envelope(stream=CONSENSUS_STREAM, body=body, instance=self.key)
        if dst == self.owner.pid:
            # Loop back locally at the next event boundary to keep the
            # handler reentrancy-free.
            self.owner.sim.schedule(0.0, self.on_message, self.owner.pid, body)
        else:
            self.owner.send(dst, envelope)


@_consensus_registry.register("chandra-toueg")
def _chandra_toueg_protocol(stack) -> "ConsensusFactory":
    """Registry plugin: the real ◇S protocol, reading the detector off the
    owning process (see :mod:`repro.registry` for the plugin contract)."""

    def factory(owner, key, participants, on_decide):
        return ChandraTouegConsensus(owner, key, participants, on_decide, owner.fd)

    return factory
