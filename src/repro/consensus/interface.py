"""Consensus building-block interface.

The SVS protocol (Figure 1, t7) treats consensus as "a procedure which
takes as an input parameter a proposed value and returns a decided value"
(Section 3.1): all correct participants decide the same value, and the
decided value is one of the proposed values.

In an event-driven simulation the procedure becomes an *instance* object:
``propose(value)`` starts participation and the decision arrives through a
callback.  Instances are multiplexed over the owning process's network
channel using :class:`~repro.core.message.Envelope` with stream
``"consensus"`` and the instance key (the closing view id, for SVS).

Two interchangeable implementations exist:

* :class:`~repro.consensus.chandra_toueg.ChandraTouegConsensus` — the real
  ◇S rotating-coordinator protocol, message-by-message;
* :class:`~repro.consensus.oracle.OracleConsensusHub` — an instant oracle
  that decides the first proposal, for fast unit tests.

The SVS safety tests pass with either, demonstrating the modularity the
paper claims ("SVS can easily be obtained by adapting an existing view
synchronous protocol").
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fd.detector import FailureDetector
    from repro.sim.process import ProcessId, SimProcess

__all__ = ["ConsensusInstance", "ConsensusFactory", "CONSENSUS_STREAM"]

CONSENSUS_STREAM = "consensus"

#: Invoked exactly once per instance with the decided value.
DecisionCallback = Callable[[Any], None]


class ConsensusInstance:
    """One consensus instance at one participant."""

    def __init__(
        self,
        key: Hashable,
        participants: Sequence["ProcessId"],
        on_decide: DecisionCallback,
    ) -> None:
        if not participants:
            raise ValueError("consensus needs at least one participant")
        self.key = key
        self.participants = tuple(sorted(participants))
        self._on_decide = on_decide
        self.decided = False
        self.decision: Optional[Any] = None

    def propose(self, value: Any) -> None:
        """Start participating with ``value`` as this process's proposal."""
        raise NotImplementedError

    def on_message(self, sender: "ProcessId", body: Any) -> None:
        """Feed a consensus protocol message routed by the owner."""
        raise NotImplementedError

    def _decide(self, value: Any) -> None:
        """Record the decision and fire the callback (idempotent)."""
        if self.decided:
            return
        self.decided = True
        self.decision = value
        self._on_decide(value)

    @property
    def majority(self) -> int:
        return len(self.participants) // 2 + 1


#: factory(owner, key, participants, on_decide) -> ConsensusInstance
ConsensusFactory = Callable[
    ["SimProcess", Hashable, Sequence["ProcessId"], DecisionCallback],
    ConsensusInstance,
]
