"""Calibrated multi-player-game trace generator.

The paper instrumented the server of Quake during a 5-player, ~6-minute
session (11696 rounds at ~30 fps) and reported these aggregates
(Section 5.2):

========================================  =========
mean messages ≈ modified items per round  1.39
mean active items per round               42.33
share of messages never made obsolete     41.88 %
distance between related messages         mostly < 10
top-ranked item modified in               ≈ 22 % of rounds
========================================  =========

We cannot re-run their session, so :class:`GameTraceGenerator` synthesises
traces with the same structure, built from the mechanisms the paper
describes observing in the game:

* a pool of persistent *world items* (players, doors, platforms) whose
  update popularity is Zipf-skewed — a few items are touched in a large
  share of rounds, many are never touched (Figure 3(a));
* movement *episodes*: once an item starts moving it is updated in
  consecutive rounds, which concentrates related messages close together
  in the stream (Figure 3(b));
* short-lived *projectiles* that are created, updated in a burst, and
  destroyed — creations and destructions are never obsolete;
* one-shot *events* (sounds, hits) that are also never obsolete.

The default :class:`GameConfig` is calibrated so the generated statistics
land on the paper's numbers (verified by ``tests/workload/``); every knob
is exposed so the player-count scaling discussion at the end of Section
5.2 can be reproduced (see ``scaled_for_players``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.registry import workloads as _workload_registry
from repro.workload.trace import MessageKind, Trace, TraceMessage

__all__ = ["GameConfig", "GameTraceGenerator", "generate_game_trace"]


@dataclass(frozen=True)
class GameConfig:
    """Generator parameters; defaults reproduce the paper's 5-player session."""

    rounds: int = 11696
    fps: float = 30.0
    players: int = 5
    seed: int = 2002

    # World (persistent) items.
    world_items: int = 30
    zipf_exponent: float = 1.25
    episode_start_rate: float = 0.175
    """Expected movement episodes starting per round."""
    episode_mean_length: float = 3.2
    """Mean episode duration in rounds (geometric)."""

    # Projectiles.
    projectile_spawn_rate: float = 0.105
    """Expected projectile creations per round."""
    projectile_lifetime_mean: float = 88.0
    """Mean projectile lifetime in rounds (geometric, min 2)."""
    projectile_burst_mean: float = 1.8
    """Mean number of update rounds right after creation (geometric)."""

    # One-shot events.
    event_rate: float = 0.123
    """Expected never-obsolete event messages per round."""

    # Firefights: short periods of highly correlated activity (several
    # players fighting) that make the traffic bursty — the burstiness is
    # what pushes the reliable protocol's tolerable consumer rate well
    # above the mean input rate (Section 5.4's discussion of Figure 5(a)).
    firefight_rate: float = 0.012
    """Expected firefights starting per round."""
    firefight_mean_length: float = 8.0
    """Mean firefight duration in rounds (geometric)."""
    firefight_intensity: float = 5.0
    """Activity multiplier (episodes, projectiles, events) during one."""

    def __post_init__(self) -> None:
        if self.rounds <= 0 or self.fps <= 0:
            raise ValueError("rounds and fps must be positive")
        if self.world_items <= 0:
            raise ValueError("need at least one world item")
        if self.players <= 0:
            raise ValueError("need at least one player")

    def scaled_for_players(self, players: int) -> "GameConfig":
        """Scale activity with player count (Section 5.2, last paragraph).

        More players mean more movement, more projectiles and a somewhat
        larger world; per-player event traffic grows sub-linearly (shared
        sounds).  The paper observes: higher message rate, lower
        never-obsolete share, larger obsolescence distances.
        """
        factor = players / self.players
        return replace(
            self,
            players=players,
            world_items=int(round(self.world_items * (0.6 + 0.4 * factor))),
            episode_start_rate=self.episode_start_rate * factor,
            projectile_spawn_rate=self.projectile_spawn_rate * factor,
            event_rate=self.event_rate * math.sqrt(factor),
        )


@dataclass
class _Projectile:
    item: int
    remaining_life: int
    remaining_burst: int


class GameTraceGenerator:
    """Synthesises a :class:`~repro.workload.trace.Trace` from a config."""

    def __init__(self, config: Optional[GameConfig] = None) -> None:
        self.config = config or GameConfig()
        self._rng = random.Random(self.config.seed)
        weights = [
            1.0 / (i + 1) ** self.config.zipf_exponent
            for i in range(self.config.world_items)
        ]
        total = sum(weights)
        self._world_weights = [w / total for w in weights]

    # ------------------------------------------------------------------
    # Sampling helpers
    # ------------------------------------------------------------------

    def _poisson_count(self, rate: float) -> int:
        """Number of events this round at the given per-round rate."""
        if rate <= 0:
            return 0
        # Knuth's method; rates here are well below 10.
        threshold = math.exp(-rate)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def _geometric(self, mean: float, minimum: int = 1) -> int:
        """Geometric length with the given mean, at least ``minimum``."""
        if mean <= minimum:
            return minimum
        p = 1.0 / (mean - minimum + 1)
        length = minimum
        while self._rng.random() > p:
            length += 1
        return length

    def _sample_world_item(self) -> int:
        x = self._rng.random()
        acc = 0.0
        for item, weight in enumerate(self._world_weights):
            acc += weight
            if x < acc:
                return item
        return self.config.world_items - 1

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(self) -> Trace:
        cfg = self.config
        messages: List[TraceMessage] = []
        active_per_round: List[int] = []
        episodes: Dict[int, int] = {}  # world item -> rounds remaining
        projectiles: List[_Projectile] = []
        next_dynamic_item = cfg.world_items
        index = 0

        def emit(rnd: int, item: int, kind: MessageKind) -> None:
            nonlocal index
            messages.append(
                TraceMessage(
                    index=index,
                    round=rnd,
                    time=rnd / cfg.fps,
                    item=item,
                    kind=kind,
                )
            )
            index += 1

        firefight_rounds_left = 0
        for rnd in range(cfg.rounds):
            # Firefights multiply all activity for a short stretch.
            if firefight_rounds_left > 0:
                firefight_rounds_left -= 1
                boost = cfg.firefight_intensity
            else:
                boost = 1.0
                if self._poisson_count(cfg.firefight_rate) > 0:
                    firefight_rounds_left = self._geometric(
                        cfg.firefight_mean_length
                    )

            # World item movement episodes: active episodes update their
            # item every round; new episodes start at the configured rate.
            for item in list(episodes):
                emit(rnd, item, MessageKind.UPDATE)
                episodes[item] -= 1
                if episodes[item] <= 0:
                    del episodes[item]
            for _ in range(self._poisson_count(cfg.episode_start_rate * boost)):
                item = self._sample_world_item()
                length = self._geometric(cfg.episode_mean_length)
                if item in episodes:
                    # The item is already moving: the new impulse extends
                    # the episode (keeps update volume proportional to
                    # activity even when popular items saturate).
                    episodes[item] += length
                else:
                    episodes[item] = length

            # Projectiles: spawn, burst-update, expire.
            for _ in range(self._poisson_count(cfg.projectile_spawn_rate * boost)):
                proj = _Projectile(
                    item=next_dynamic_item,
                    remaining_life=self._geometric(
                        cfg.projectile_lifetime_mean, minimum=2
                    ),
                    remaining_burst=self._geometric(cfg.projectile_burst_mean),
                )
                next_dynamic_item += 1
                projectiles.append(proj)
                emit(rnd, proj.item, MessageKind.CREATE)

            survivors: List[_Projectile] = []
            for proj in projectiles:
                if proj.remaining_burst > 0:
                    emit(rnd, proj.item, MessageKind.UPDATE)
                    proj.remaining_burst -= 1
                proj.remaining_life -= 1
                if proj.remaining_life <= 0:
                    emit(rnd, proj.item, MessageKind.DESTROY)
                else:
                    survivors.append(proj)
            projectiles = survivors

            # One-shot events (never obsolete).
            for _ in range(self._poisson_count(cfg.event_rate * boost)):
                emit(rnd, next_dynamic_item, MessageKind.EVENT)
                next_dynamic_item += 1

            active_per_round.append(cfg.world_items + len(projectiles))

        return Trace(
            messages=messages,
            rounds=cfg.rounds,
            fps=cfg.fps,
            active_per_round=active_per_round,
            label=f"game-{cfg.players}p-seed{cfg.seed}",
        )


def generate_game_trace(config: Optional[GameConfig] = None) -> Trace:
    """One-call convenience: generate a trace with the given (or default)
    configuration."""
    return GameTraceGenerator(config).generate()


@_workload_registry.register("game", aliases=("quake",))
def _game_workload(**params) -> Trace:
    """The calibrated game session; any :class:`GameConfig` field is a
    keyword (``workloads.create("game", rounds=600, seed=9)``)."""
    return generate_game_trace(GameConfig(**params))
