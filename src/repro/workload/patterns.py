"""Synthetic non-game traffic patterns.

Simple generators with analytically known obsolescence structure, used by
unit tests to validate the throughput model against closed-form
expectations, and by examples as easily understood workloads:

* :func:`periodic_updates` — round-robin updates over ``items`` data items
  at a constant rate (the "periodic traffic" the paper contrasts with the
  bursty game traffic in Section 5.4);
* :func:`single_item_stream` — every message updates the same item, the
  extreme case where purging keeps exactly one message buffered;
* :func:`mixed_stream` — a tunable blend of obsolescible updates and
  reliable events, for sweeping the never-obsolete share.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.registry import workloads as _workload_registry
from repro.workload.trace import MessageKind, Trace, TraceMessage

__all__ = ["periodic_updates", "single_item_stream", "mixed_stream"]


def periodic_updates(
    items: int,
    messages: int,
    rate: float,
) -> Trace:
    """Round-robin item updates at ``rate`` messages per second.

    Item ``i`` is updated every ``items`` messages, so the obsolescence
    distance is exactly ``items`` for every related pair.
    """
    if items <= 0 or messages < 0 or rate <= 0:
        raise ValueError("items/rate must be positive, messages non-negative")
    out: List[TraceMessage] = []
    for i in range(messages):
        time = i / rate
        out.append(
            TraceMessage(
                index=i,
                round=i,
                time=time,
                item=i % items,
                kind=MessageKind.UPDATE,
            )
        )
    rounds = max(messages, 1)
    return Trace(
        messages=out,
        rounds=rounds,
        fps=rate,
        active_per_round=[items] * rounds,
        label=f"periodic-{items}items",
    )


def single_item_stream(messages: int, rate: float) -> Trace:
    """Every message updates item 0 — maximal obsolescence."""
    return periodic_updates(items=1, messages=messages, rate=rate)


def mixed_stream(
    messages: int,
    rate: float,
    items: int = 10,
    reliable_share: float = 0.4,
    seed: int = 0,
) -> Trace:
    """Blend of round-robin updates and never-obsolete events.

    ``reliable_share`` is the expected fraction of EVENT messages — the
    knob that sweeps the never-obsolete share, the primary determinant of
    how much purging can help (Section 2.3: "the traffic pattern must
    exhibit some obsolescence").
    """
    if not 0.0 <= reliable_share <= 1.0:
        raise ValueError(f"reliable_share out of range: {reliable_share}")
    rng = random.Random(seed)
    out: List[TraceMessage] = []
    next_event_item = items
    update_cursor = 0
    for i in range(messages):
        time = i / rate
        if rng.random() < reliable_share:
            out.append(
                TraceMessage(
                    index=i,
                    round=i,
                    time=time,
                    item=next_event_item,
                    kind=MessageKind.EVENT,
                )
            )
            next_event_item += 1
        else:
            out.append(
                TraceMessage(
                    index=i,
                    round=i,
                    time=time,
                    item=update_cursor % items,
                    kind=MessageKind.UPDATE,
                )
            )
            update_cursor += 1
    rounds = max(messages, 1)
    return Trace(
        messages=out,
        rounds=rounds,
        fps=rate,
        active_per_round=[items] * rounds,
        label=f"mixed-{reliable_share:.2f}",
    )


_workload_registry.register("periodic-updates", periodic_updates)
_workload_registry.register("single-item", single_item_stream)
_workload_registry.register("mixed", mixed_stream)
