"""Workloads: the calibrated game-trace generator and trace tooling."""

from typing import Any

from repro.workload.game import GameConfig, GameTraceGenerator, generate_game_trace
from repro.workload.patterns import mixed_stream, periodic_updates, single_item_stream
from repro.workload.trace import (
    MessageKind,
    Trace,
    TraceMessage,
    TraceStats,
    compute_stats,
    item_rank_profile,
    obsolescence_distances,
    to_data_messages,
)

def portable_workload(name: str, **params: Any) -> Trace:
    """Create a registered workload trace stamped with its worker recipe.

    The returned :class:`Trace` carries ``recipe = {"kind": "workload",
    "name": ..., "params": ...}``, so it can serve as a sweep context for
    the framed dispatch backends (``subprocess``/``ssh``): workers rebuild
    the identical trace locally instead of receiving megabytes of messages
    over the wire.  Generation is deterministic in ``params``, so the
    rebuilt trace is byte-identical to this one.
    """
    from repro.registry import workloads

    trace = workloads.create(name, **params)
    trace.recipe = {"kind": "workload", "name": name, "params": dict(params)}
    return trace


__all__ = [
    "GameConfig",
    "portable_workload",
    "GameTraceGenerator",
    "generate_game_trace",
    "MessageKind",
    "Trace",
    "TraceMessage",
    "TraceStats",
    "compute_stats",
    "item_rank_profile",
    "obsolescence_distances",
    "to_data_messages",
    "periodic_updates",
    "single_item_stream",
    "mixed_stream",
]
