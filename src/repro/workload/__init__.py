"""Workloads: the calibrated game-trace generator and trace tooling."""

from repro.workload.game import GameConfig, GameTraceGenerator, generate_game_trace
from repro.workload.patterns import mixed_stream, periodic_updates, single_item_stream
from repro.workload.trace import (
    MessageKind,
    Trace,
    TraceMessage,
    TraceStats,
    compute_stats,
    item_rank_profile,
    obsolescence_distances,
    to_data_messages,
)

__all__ = [
    "GameConfig",
    "GameTraceGenerator",
    "generate_game_trace",
    "MessageKind",
    "Trace",
    "TraceMessage",
    "TraceStats",
    "compute_stats",
    "item_rank_profile",
    "obsolescence_distances",
    "to_data_messages",
    "periodic_updates",
    "single_item_stream",
    "mixed_stream",
]
