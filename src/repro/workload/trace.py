"""Traces: the message streams the evaluation feeds to the protocols.

A :class:`Trace` is an ordered sequence of :class:`TraceMessage` records —
one per multicast the (simulated) game server performs — plus per-round
bookkeeping (active item counts).  This mirrors what the paper extracted
by instrumenting the Quake server (Section 5.2).

The module also provides:

* the statistics the paper reports — never-obsolete share, mean modified
  items per round, mean active items, the item-rank profile of Figure 3(a)
  and the obsolescence-distance profile of Figure 3(b);
* :func:`to_data_messages` — turning a trace into annotated protocol
  messages under any of the three obsolescence representations, which is
  how the throughput simulations consume traces.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.message import DataMessage, MessageId
from repro.core.obsolescence import (
    EnumerationEncoder,
    ItemTagging,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    ObsolescenceRelation,
)
from repro.metrics.collectors import Histogram

__all__ = [
    "MessageKind",
    "TraceMessage",
    "Trace",
    "TraceStats",
    "compute_stats",
    "item_rank_profile",
    "obsolescence_distances",
    "to_data_messages",
]


class MessageKind(enum.Enum):
    """What a trace message does to the game state.

    Only UPDATE messages participate in obsolescence; creations,
    destructions and one-shot events "must be reliably delivered in order
    to ensure that items are kept consistent" (Section 5.2).
    """

    UPDATE = "update"
    CREATE = "create"
    DESTROY = "destroy"
    EVENT = "event"

    @property
    def obsolescible(self) -> bool:
        return self is MessageKind.UPDATE


@dataclass(frozen=True, slots=True)
class TraceMessage:
    """One multicast in the recorded stream."""

    index: int
    round: int
    time: float
    item: int
    kind: MessageKind


@dataclass
class Trace:
    """A full recorded session."""

    messages: List[TraceMessage]
    rounds: int
    fps: float
    active_per_round: List[int] = field(default_factory=list)
    label: str = ""
    #: How to rebuild this trace on another host (a context spec dict,
    #: see :mod:`repro.sweep.worker`) — stamped by
    #: :func:`repro.workload.portable_workload`; ``None`` means the trace
    #: cannot cross a dispatch-worker boundary.  Not part of identity:
    #: excluded from equality and from :meth:`cache_token`.
    recipe: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def duration(self) -> float:
        return self.rounds / self.fps

    @property
    def message_rate(self) -> float:
        """Mean messages per second."""
        if self.duration == 0:
            return 0.0
        return len(self.messages) / self.duration

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def cache_token(self) -> str:
        """Content fingerprint of the whole trace.

        Hashes every message's identity plus the session shape — the
        token :mod:`repro.sweep.cache` folds into cell keys when a trace
        is the sweep's shared context, so reproducing a figure on a
        different trace (``--fast``, another workload pack) can never hit
        shards computed from this one.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.rounds}|{self.fps!r}|{self.label}\n".encode())
        for m in self.messages:
            digest.update(
                f"{m.index}|{m.round}|{m.time!r}|{m.item}|{m.kind.value}\n".encode()
            )
        return digest.hexdigest()

    def worker_recipe(self) -> Optional[Dict[str, Any]]:
        """The context spec dispatch workers rebuild this trace from."""
        return self.recipe


@dataclass(frozen=True)
class TraceStats:
    """The aggregate numbers Section 5.2 reports for the Quake session."""

    rounds: int
    total_messages: int
    message_rate: float
    mean_modified_per_round: float
    mean_active_items: float
    never_obsolete_share: float
    mean_obsolescence_distance: float
    distance_p90: int


def _next_update_distance(trace: Trace) -> Dict[int, int]:
    """Map message index -> stream distance to the next update of the same
    item, for every UPDATE message that has one (i.e. becomes obsolete)."""
    last_seen: Dict[int, int] = {}
    distances: Dict[int, int] = {}
    for msg in trace.messages:
        if msg.kind is not MessageKind.UPDATE:
            continue
        prev = last_seen.get(msg.item)
        if prev is not None:
            distances[prev] = msg.index - prev
        last_seen[msg.item] = msg.index
    return distances


def compute_stats(trace: Trace) -> TraceStats:
    """Compute the Section 5.2 aggregates for a trace."""
    # "Modified" counts every state change: "besides being updated, items
    # can be created and destroyed" (Section 5.2) — so creations,
    # destructions and events count alongside updates.
    modified_by_round: Dict[int, set] = {}
    for m in trace.messages:
        modified_by_round.setdefault(m.round, set()).add(m.item)
    total_modified = sum(len(items) for items in modified_by_round.values())
    mean_modified = total_modified / trace.rounds if trace.rounds else 0.0

    mean_active = (
        sum(trace.active_per_round) / len(trace.active_per_round)
        if trace.active_per_round
        else 0.0
    )

    distances = _next_update_distance(trace)
    obsolete_count = len(distances)
    total = len(trace.messages)
    never_share = 1.0 - obsolete_count / total if total else 1.0

    hist = Histogram("distance")
    for d in distances.values():
        hist.observe(d)

    return TraceStats(
        rounds=trace.rounds,
        total_messages=total,
        message_rate=trace.message_rate,
        mean_modified_per_round=mean_modified,
        mean_active_items=mean_active,
        never_obsolete_share=never_share,
        mean_obsolescence_distance=hist.mean(),
        distance_p90=hist.quantile(0.90),
    )


def item_rank_profile(trace: Trace, top: int = 50) -> List[Tuple[int, float]]:
    """Figure 3(a): % of rounds in which the rank-i item was modified.

    Items are ranked by how many distinct rounds they were updated in;
    the result lists ``(rank, percentage_of_rounds)`` for ranks 1..top.
    """
    rounds_touched: Dict[int, set] = {}
    for m in trace.messages:
        if m.kind is MessageKind.UPDATE:
            rounds_touched.setdefault(m.item, set()).add(m.round)
    counts = sorted((len(r) for r in rounds_touched.values()), reverse=True)
    out: List[Tuple[int, float]] = []
    for rank in range(1, top + 1):
        touched = counts[rank - 1] if rank <= len(counts) else 0
        pct = 100.0 * touched / trace.rounds if trace.rounds else 0.0
        out.append((rank, pct))
    return out


def obsolescence_distances(trace: Trace, max_distance: int = 20) -> Histogram:
    """Figure 3(b): distribution of distance to the closest related message.

    The histogram is over the messages that *do* become obsolete (the
    paper's 58.12 %); distances above ``max_distance`` are clamped into the
    ``max_distance`` bucket so percentage rows match the figure's x-range.
    """
    hist = Histogram("obsolescence-distance")
    for d in _next_update_distance(trace).values():
        hist.observe(min(d, max_distance))
    return hist


# ----------------------------------------------------------------------
# Trace -> annotated protocol messages
# ----------------------------------------------------------------------


def to_data_messages(
    trace: Trace,
    representation: str = "k-enumeration",
    k: int = 30,
    sender: int = 0,
    window: Optional[int] = None,
    view_id: int = 0,
) -> Tuple[List[DataMessage], ObsolescenceRelation]:
    """Annotate a trace under one of the paper's three representations.

    Returns ``(messages, relation)`` ready to feed the protocol or the
    throughput model.  For the k-enumeration the paper's choice is
    ``k = 2 × buffer size`` (Section 5.2).
    """
    if representation in ("k-enumeration", "k-enum", "k"):
        return _annotate_k(trace, k, sender, view_id)
    if representation in ("tagging", "item-tagging"):
        return _annotate_tagging(trace, sender, view_id)
    if representation in ("enumeration", "message-enumeration"):
        return _annotate_enumeration(trace, sender, window, view_id)
    raise ValueError(f"unknown representation: {representation!r}")


def _annotate_k(
    trace: Trace, k: int, sender: int, view_id: int
) -> Tuple[List[DataMessage], ObsolescenceRelation]:
    encoder = KEnumerationEncoder(sender, k)
    last_update_sn: Dict[int, int] = {}
    out: List[DataMessage] = []
    for msg in trace.messages:
        mid = encoder.next_mid()
        if msg.kind is MessageKind.UPDATE:
            prev = last_update_sn.get(msg.item)
            direct = [prev] if prev is not None else []
            bitmap = encoder.annotate(mid.sn, direct)
            last_update_sn[msg.item] = mid.sn
        else:
            bitmap = encoder.annotate(mid.sn, [])
        out.append(
            DataMessage(mid=mid, view_id=view_id, payload=msg, annotation=bitmap)
        )
    return out, KEnumeration(k)


def _annotate_tagging(
    trace: Trace, sender: int, view_id: int
) -> Tuple[List[DataMessage], ObsolescenceRelation]:
    out: List[DataMessage] = []
    for msg in trace.messages:
        mid = MessageId(sender, msg.index)
        tag = msg.item if msg.kind is MessageKind.UPDATE else None
        out.append(DataMessage(mid=mid, view_id=view_id, payload=msg, annotation=tag))
    return out, ItemTagging()


def _annotate_enumeration(
    trace: Trace, sender: int, window: Optional[int], view_id: int
) -> Tuple[List[DataMessage], ObsolescenceRelation]:
    encoder = EnumerationEncoder(sender, window=window)
    last_update_mid: Dict[int, MessageId] = {}
    out: List[DataMessage] = []
    for msg in trace.messages:
        mid = encoder.next_mid()
        if msg.kind is MessageKind.UPDATE:
            prev = last_update_mid.get(msg.item)
            direct = [prev] if prev is not None else []
            annotation = encoder.annotate(mid, direct)
            last_update_mid[msg.item] = mid
        else:
            annotation = encoder.annotate(mid, [])
        out.append(
            DataMessage(mid=mid, view_id=view_id, payload=msg, annotation=annotation)
        )
    return out, MessageEnumeration()
