"""Evaluation: the slow-receiver throughput model, the loaded view-change
experiment, and the per-figure harness."""

from repro.analysis.experiments import (
    ablation_k,
    ablation_players,
    ablation_representation,
    default_trace,
    figure_3a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_5a,
    figure_5b,
    view_change_latency_table,
    workload_stats,
)
from repro.analysis.throughput import (
    SlowReceiverSimulation,
    ThroughputConfig,
    ThroughputResult,
    perturbation_tolerance,
    run_slow_receiver,
    threshold_rate,
)
from repro.analysis.viewchange import (
    ViewChangeLatencyResult,
    measure_view_change_latency,
)

__all__ = [
    "ThroughputConfig",
    "ThroughputResult",
    "SlowReceiverSimulation",
    "run_slow_receiver",
    "threshold_rate",
    "perturbation_tolerance",
    "ViewChangeLatencyResult",
    "measure_view_change_latency",
    "default_trace",
    "workload_stats",
    "figure_3a",
    "figure_3b",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "view_change_latency_table",
    "ablation_k",
    "ablation_representation",
    "ablation_players",
]
