"""View-change latency under load (Section 5.4, Figure 4(b) discussion).

The paper's claim: "the amount of used buffer space impacts on the latency
of the view change protocol, which must wait for all pending messages to be
stable" — so by purging obsolete messages instead of accumulating them,
SVS keeps view changes fast *without* shrinking buffers.

This experiment runs the **full protocol stack** (not the reduced
throughput model): a group multicasts game traffic, one member consumes
slowly and builds a delivery-queue backlog, and a view change is triggered.
The application perceives the view change only when the VIEW notification
comes out of its delivery queue — behind the backlog — so the measured
app-level latency directly exposes the buffered-message cost the paper
describes.  The flush size (messages added at installation) is reported
too.

The session is assembled with the declarative :class:`~repro.scenario.Scenario`
builder; only the mid-run trigger (which snapshots the backlog at the
instant of the view change) is scheduled imperatively on the live session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.message import View
from repro.scenario import Scenario
from repro.workload.trace import Trace

__all__ = ["ViewChangeLatencyResult", "measure_view_change_latency"]


@dataclass(frozen=True)
class ViewChangeLatencyResult:
    """Measurements of one loaded view change."""

    semantic: bool
    slow_rate: float
    backlog_at_trigger: int
    """Slow member's delivery-queue length when the change was triggered."""
    flush_added: Dict[int, int]
    """pid -> messages added by the installation flush."""
    protocol_latency: float
    """Trigger to protocol-level installation (consensus completed)."""
    app_latency: Dict[int, float]
    """pid -> trigger to the application delivering the VIEW notification."""
    purged_at_slow: int

    @property
    def slow_app_latency(self) -> float:
        return max(self.app_latency.values())


def measure_view_change_latency(
    trace: Trace,
    semantic: bool,
    slow_rate: float = 30.0,
    n: int = 3,
    slow_pid: int = 1,
    load_time: float = 30.0,
    k: int = 64,
    fast_rate: float = 10_000.0,
    seed: int = 0,
    engine: str = "v2",
) -> ViewChangeLatencyResult:
    """Load the group for ``load_time`` seconds, then change views.

    Process 0 multicasts the trace; ``slow_pid`` consumes at ``slow_rate``
    messages per second while everyone else keeps up.  At ``load_time`` a
    view change (with no membership change) is triggered and its latency
    measured at every member.
    """
    flush_added: Dict[int, int] = {}
    install_time: Dict[int, float] = {}
    app_view_time: Dict[int, float] = {}

    # The hooks close over ``sim``, which is bound right after build().
    def on_flush(pid: int, flush_size: int, added: int) -> None:
        flush_added[pid] = added

    def on_install(pid: int, view: View) -> None:
        if view.vid == 1:
            install_time[pid] = sim.now

    def on_view(pid: int, view: View) -> None:
        if view.vid == 1:
            app_view_time[pid] = sim.now

    scenario = (
        Scenario()
        .engine(engine)
        .group(n=n, seed=seed, consensus="chandra-toueg", fd="oracle")
        .workload(trace, sender=0, representation="k-enumeration", k=k)
        .consumers(rate=fast_rate)
        .consumers(rate=slow_rate, pids=[slow_pid])
        .listeners(on_flush=on_flush, on_install=on_install)
        .on_view(on_view)
        .check(False)
    )
    if not semantic:
        scenario.group(relation="empty")

    live = scenario.build()
    sim = live.sim
    stack = live.stack

    backlog = {"value": 0, "purged": 0}
    trigger_time = load_time

    def trigger() -> None:
        backlog["value"] = stack.processes[slow_pid].pending
        backlog["purged"] = stack.processes[slow_pid].to_deliver.stats.purged
        stack.processes[0].trigger_view_change()

    sim.schedule_at(trigger_time, trigger)
    # Run long enough for the slow consumer to drain its backlog.
    sim.run(until=trigger_time + 60.0)

    protocol_latency = (
        max(install_time.values()) - trigger_time if install_time else float("nan")
    )
    app_latency = {
        pid: t - trigger_time for pid, t in app_view_time.items()
    }
    return ViewChangeLatencyResult(
        semantic=semantic,
        slow_rate=slow_rate,
        backlog_at_trigger=backlog["value"],
        flush_added=dict(flush_added),
        protocol_latency=protocol_latency,
        app_latency=app_latency,
        purged_at_slow=backlog["purged"],
    )
