"""The slow-receiver throughput model (Section 5.3 of the paper).

"The use of simulation instead of a real protocol allows us to isolate
performance degradation due to a slower receiver from other aspects of
group performance."  The model:

* a **producer** injects the trace at its recorded timestamps.  All group
  members except one consume instantly, so the system reduces to the
  producer, a **bounded buffer** (the protocol buffering on the path to the
  slow member — capacity is the paper's "buffer size" parameter), and one
  **slow consumer** that takes ``1/rate`` seconds per message;
* when the buffer is full the producer **blocks** (flow control back-
  pressure: the delivery queue fills, the node stops accepting from the
  network, the sender's outgoing buffers fill, the application stalls);
  every blocked interval delays the rest of the trace, exactly like a
  stalled game server delays subsequent rounds;
* under the **semantic** protocol a new message may purge queued obsolete
  messages (freeing its own slot even when the buffer is full); under the
  **reliable** protocol (empty relation) nothing is ever purged.

Outputs map to the paper's figures:

* producer idle % (Figure 4(a)) = 100 × (1 − blocked fraction);
* buffer occupancy (Figure 4(b)) = time-weighted mean queue length;
* :func:`threshold_rate` (Figure 5(a)) = the lowest consumer rate keeping
  the producer ≥ 95 % idle (the paper's "less than 5 % impact");
* :func:`perturbation_tolerance` (Figure 5(b)) = how long a complete
  consumer stall is absorbed before the producer first blocks.

Following the paper, the semantic runs use the k-enumeration
representation with ``k = 2 × buffer size`` (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.buffers import DeliveryQueue
from repro.core.message import DataMessage
from repro.core.obsolescence import EmptyRelation, ObsolescenceRelation
from repro.metrics.collectors import BusyTracker
from repro.sim.kernel import Simulator
from repro.workload.trace import Trace, to_data_messages

__all__ = [
    "ThroughputConfig",
    "ThroughputResult",
    "SlowReceiverSimulation",
    "run_slow_receiver",
    "threshold_rate",
    "perturbation_tolerance",
    "annotated_messages",
]


@dataclass(frozen=True)
class ThroughputConfig:
    """Parameters of one slow-receiver run."""

    buffer_size: int = 15
    consumer_rate: float = 60.0
    semantic: bool = True
    representation: str = "k-enumeration"
    k: Optional[int] = None
    """k-enumeration window; defaults to 2 × buffer size (paper's choice)."""
    stall_at: Optional[float] = None
    """If set, the consumer stops permanently at this time (Figure 5(b))."""
    stop_on_first_block: bool = False
    """End the run the first time the producer blocks (tolerance probes)."""
    engine: str = "v2"
    """Kernel engine: ``"v2"`` (default) or ``"v3"`` (batch dispatch) —
    byte-identical outputs, pinned by the differential harness."""

    def effective_k(self) -> int:
        return self.k if self.k is not None else 2 * self.buffer_size

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError("buffer size must be positive")
        if self.consumer_rate <= 0:
            raise ValueError("consumer rate must be positive")
        if self.engine not in ("v2", "v3"):
            raise ValueError(f"engine must be 'v2' or 'v3': {self.engine!r}")


@dataclass(frozen=True)
class ThroughputResult:
    """Measurements of one run."""

    config: ThroughputConfig
    duration: float
    """Time from start until the last message left the producer."""
    blocked_fraction: float
    mean_occupancy: float
    max_occupancy: int
    offered: int
    delivered: int
    purged: int
    first_block_time: Optional[float]
    completed: bool
    """False when the run stopped early (stop_on_first_block)."""

    @property
    def producer_idle_pct(self) -> float:
        """Figure 4(a)'s y-axis."""
        return 100.0 * (1.0 - self.blocked_fraction)

    @property
    def purge_ratio(self) -> float:
        return self.purged / self.offered if self.offered else 0.0


# ----------------------------------------------------------------------
# Annotation cache: re-annotating 16k messages per sweep point is the
# dominant cost, and the annotation depends only on (trace, repr, k).
# ----------------------------------------------------------------------

_annotation_cache: Dict[Tuple[int, str, int], Tuple[List[DataMessage], ObsolescenceRelation]] = {}


def annotated_messages(
    trace: Trace, representation: str, k: int
) -> Tuple[List[DataMessage], ObsolescenceRelation]:
    """Annotate (with memoisation) a trace under the given representation."""
    key = (id(trace), representation, k)
    cached = _annotation_cache.get(key)
    if cached is None:
        cached = to_data_messages(trace, representation=representation, k=k)
        _annotation_cache[key] = cached
    return cached


class SlowReceiverSimulation:
    """One producer / bounded buffer / one slow consumer, event-driven."""

    __slots__ = (
        "messages", "config", "sim", "queue", "_service_time", "_schedule",
        "_n_messages", "_cursor", "_offset", "_blocked_since",
        "_consumer_busy", "_consumer_paused", "_stopped", "blocked",
        "_occ_last", "_occ_val", "_occ_sum", "_occ_max",
        "first_block_time", "delivered", "finish_time",
    )

    def __init__(
        self,
        messages: Sequence[DataMessage],
        relation: ObsolescenceRelation,
        config: ThroughputConfig,
    ) -> None:
        self.messages = messages
        self.config = config
        if config.engine == "v3":
            from repro.sim.kernel import SimulatorV3

            self.sim = SimulatorV3()
        else:
            self.sim = Simulator()
        self.queue = DeliveryQueue(relation, capacity=config.buffer_size)
        # Hot-path caches: the service period, the kernel's schedule entry
        # point and the occupancy recorder are looked up once, not per event.
        self._service_time = 1.0 / config.consumer_rate
        self._schedule = self.sim.schedule
        self._n_messages = len(messages)

        self._cursor = 0  # next message index to inject
        self._offset = 0.0  # cumulative producer stall
        self._blocked_since: Optional[float] = None
        self._consumer_busy = False
        self._consumer_paused = False
        self._stopped = False

        self.blocked = BusyTracker()
        # Time-weighted occupancy, accumulated inline (the TimeWeightedStat
        # call per queue transition was measurable; same math, no calls).
        self._occ_last = 0.0
        self._occ_val = 0.0
        self._occ_sum = 0.0
        self._occ_max = 0.0
        self.first_block_time: Optional[float] = None
        self.delivered = 0
        self.finish_time = 0.0

    # ------------------------------------------------------------------
    # Producer
    # ------------------------------------------------------------------

    def _schedule_next_injection(self) -> None:
        if self._cursor >= len(self.messages) or self._stopped:
            return
        msg = self.messages[self._cursor]
        due = msg.payload.time + self._offset
        delay = due - self.sim.now
        self._schedule(delay if delay > 0.0 else 0.0, self._inject)

    def _inject(self) -> None:
        if self._stopped:
            return
        msg = self.messages[self._cursor]
        # Inlined DeliveryQueue.try_append (the queue method remains the
        # reference implementation; the golden fixtures pin equivalence).
        # One offered message per call — this is the model's hottest path.
        queue = self.queue
        index = queue._live_index
        if index is not None:
            candidates = index.obsoleted_by(msg)
            if candidates:
                queue._remove_msgs(candidates, exclude=msg.mid)
        elif not queue._inert:
            queue.purge_by(msg)
        stats = queue.stats
        if queue._size < self.config.buffer_size:
            if queue._doomed and msg.mid in queue._doomed:
                queue._compact()
            queue._items.append(msg)
            queue._mids.add(msg.mid)
            if index is not None:
                index.add(msg)
            queue._size += 1
            stats.appended += 1
            if queue._size > stats.max_len:
                stats.max_len = queue._size
            accepted = True
        else:
            stats.rejected += 1
            accepted = False
        if accepted:
            now = self.sim.now
            self._occ_sum += self._occ_val * (now - self._occ_last)
            self._occ_last = now
            value = self._occ_val = self.queue._size
            if value > self._occ_max:
                self._occ_max = value
            cursor = self._cursor = self._cursor + 1
            self.finish_time = now
            if not self._consumer_busy and not self._consumer_paused and self.queue._size:
                self._consumer_busy = True
                self._schedule(self._service_time, self._complete_service)
            # Inlined _schedule_next_injection (one call per offered message).
            if cursor < self._n_messages:
                delay = self.messages[cursor].payload.time + self._offset - now
                self._schedule(delay if delay > 0.0 else 0.0, self._inject)
        else:
            # Flow control: block until the consumer frees a slot.
            self._blocked_since = self.sim.now
            self.blocked.enter(self.sim.now)
            watch_from = self.config.stall_at or 0.0
            if self.first_block_time is None and self.sim.now >= watch_from:
                self.first_block_time = self.sim.now
                if self.config.stop_on_first_block:
                    self._stopped = True
                    self.sim.stop()

    def _unblock(self) -> None:
        """Called after a consumer pop while the producer is blocked."""
        if self._blocked_since is None or self._stopped:
            return
        stall = self.sim.now - self._blocked_since
        self._offset += stall
        self.blocked.leave(self.sim.now)
        self._blocked_since = None
        self._inject()

    # ------------------------------------------------------------------
    # Consumer: a server taking 1/rate per message; the message occupies
    # its buffer slot until service completes.
    # ------------------------------------------------------------------

    def _kick_consumer(self) -> None:
        if self._consumer_busy or self._consumer_paused:
            return
        if not self.queue:
            return
        self._consumer_busy = True
        self._schedule(self._service_time, self._complete_service)

    def _complete_service(self) -> None:
        if self._consumer_paused:
            # A stall hit mid-service: the message completes only after
            # resume (permanent stalls never resume in this model).
            self._consumer_busy = False
            return
        queue = self.queue
        if queue._size:
            # Inlined DeliveryQueue.pop (head is live unless tombstoned).
            if queue._doomed:
                queue._reclaim_head()
            head = queue._items.pop(0)
            queue._mids.discard(head.mid)
            if queue._live_index is not None:
                queue._live_index.discard(head)
            queue._size -= 1
            queue.stats.popped += 1
            self.delivered += 1
            now = self.sim.now
            self._occ_sum += self._occ_val * (now - self._occ_last)
            self._occ_last = now
            self._occ_val = queue._size
        self._consumer_busy = False
        if self._blocked_since is not None:
            self._unblock()
        if not self._consumer_busy and not self._consumer_paused and queue._size:
            self._consumer_busy = True
            self._schedule(self._service_time, self._complete_service)

    def _pause_consumer(self) -> None:
        self._consumer_paused = True

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ThroughputResult:
        if self.config.stall_at is not None:
            self.sim.schedule_at(self.config.stall_at, self._pause_consumer)
        self._schedule_next_injection()
        self.sim.run()

        end = max(self.sim.now, self.finish_time)
        self.blocked.finish(end)
        # Close the occupancy integral at the end time.
        self._occ_sum += self._occ_val * (end - self._occ_last)
        self._occ_last = end
        injected_all = self._cursor >= len(self.messages)
        duration = self.finish_time if injected_all else end
        blocked_fraction = (
            self.blocked.total_busy / duration if duration > 0 else 0.0
        )
        return ThroughputResult(
            config=self.config,
            duration=duration,
            blocked_fraction=blocked_fraction,
            mean_occupancy=(self._occ_sum / end) if end > 0 else 0.0,
            max_occupancy=int(self._occ_max),
            offered=self._cursor,
            delivered=self.delivered,
            purged=self.queue.stats.purged,
            first_block_time=self.first_block_time,
            completed=injected_all,
        )




def run_slow_receiver(trace: Trace, config: ThroughputConfig) -> ThroughputResult:
    """Run the Section 5.3 model for one parameter point."""
    if config.semantic:
        messages, relation = annotated_messages(
            trace, config.representation, config.effective_k()
        )
    else:
        messages, relation = annotated_messages(
            trace, config.representation, config.effective_k()
        )
        relation = EmptyRelation()
    return SlowReceiverSimulation(messages, relation, config).run()


def threshold_rate(
    trace: Trace,
    buffer_size: int,
    semantic: bool,
    disturbance: float = 0.05,
    lo: int = 1,
    hi: int = 200,
    representation: str = "k-enumeration",
    engine: str = "v2",
) -> int:
    """Figure 5(a): lowest integer consumer rate with ≤ ``disturbance``
    producer blocking, by bisection (blocking is monotone in the rate)."""
    def disturbed(rate: int) -> bool:
        result = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size,
                consumer_rate=float(rate),
                semantic=semantic,
                representation=representation,
                engine=engine,
            ),
        )
        return result.blocked_fraction > disturbance

    if disturbed(hi):
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        if disturbed(mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def perturbation_tolerance(
    trace: Trace,
    buffer_size: int,
    semantic: bool,
    probes: int = 8,
    fast_rate: float = 5_000.0,
    warmup: float = 20.0,
    representation: str = "k-enumeration",
    engine: str = "v2",
) -> float:
    """Figure 5(b): mean time a *complete* consumer stall is tolerated.

    The consumer runs fast (the stable case) until a probe time, then stops
    for good; the tolerance is the time until the producer first blocks.
    Probes are spread through the trace and averaged, because tolerance
    depends on the burst phase the stall lands in.
    """
    horizon = trace.duration
    if probes <= 0 or horizon <= warmup:
        raise ValueError("need probes > 0 and a trace longer than the warmup")
    tolerances: List[float] = []
    for i in range(probes):
        stall_at = warmup + (horizon - 2 * warmup) * i / max(1, probes - 1)
        result = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size,
                consumer_rate=fast_rate,
                semantic=semantic,
                representation=representation,
                stall_at=stall_at,
                stop_on_first_block=True,
                engine=engine,
            ),
        )
        if result.first_block_time is not None:
            tolerances.append(result.first_block_time - stall_at)
        else:
            # Never blocked: the whole remaining trace was absorbed.
            tolerances.append(horizon - stall_at)
    return sum(tolerances) / len(tolerances)
