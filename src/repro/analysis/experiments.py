"""Per-figure experiment harness.

One entry point per table/figure of the paper's evaluation (Section 5).
Each function returns structured rows and can print them in the shape the
paper reports, with the paper's own numbers alongside for comparison.
``EXPERIMENTS.md`` at the repository root records a full run.

All experiments run on the calibrated synthetic game trace (see
:mod:`repro.workload.game` for the substitution rationale), resolved
through the workload registry so any registered generator can stand in;
pass your own :class:`~repro.workload.trace.Trace` to reproduce them on
other workloads.  The full-stack experiments (the view-change table) are
assembled with the declarative :class:`~repro.scenario.Scenario` builder.

Every grid-shaped experiment (Figures 4 and 5, the view-change table, the
ablations) is expressed as a :class:`~repro.sweep.Sweep` over a
module-level cell function, so each accepts ``workers=N`` to farm its
cells out to a process pool — ``figure_5a(workers=4)`` reproduces the
paper's buffer sweep in a quarter of the serial wall-clock, with the trace
shipped to each worker once.  The cell functions double as reusable sweep
runners: ``Sweep(...).run(_figure_4_cell, context=trace)`` is the raw form
of :func:`figure_4a`.  Results are identical for any worker count.

Every grid experiment also accepts ``cache=`` — a directory path or
:class:`~repro.sweep.cache.SweepCache` — to memoise (cell, replicate)
runs by content address: ``figure_4a(cache=".sweep-cache")`` computes
nothing the second time, and one cache serves all figures of a
``reproduce_figures.py --cache DIR`` run (Figures 4(a) and 4(b) share
their grid outright).  The trace context is folded into the keys via
:meth:`~repro.workload.trace.Trace.cache_token`, so a ``--fast`` trace
can never hit full-trace shards.

Every entry point also accepts ``report=`` — a
:class:`repro.report.ReportBuilder` — and appends its tables (with
Student-t ``ci95_t`` confidence intervals for the sweep-backed figures)
and figure-style charts to it; ``examples/reproduce_figures.py --report
DIR`` threads one builder through every figure and writes the combined
markdown + HTML report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.throughput import (
    ThroughputConfig,
    perturbation_tolerance,
    run_slow_receiver,
    threshold_rate,
)
from repro.analysis.viewchange import (
    ViewChangeLatencyResult,
    measure_view_change_latency,
)
from repro.registry import workloads
from repro.sweep import Sweep, SweepResult
from repro.workload.game import GameConfig, generate_game_trace
from repro.workload.trace import (
    Trace,
    compute_stats,
    item_rank_profile,
    obsolescence_distances,
    to_data_messages,
)

__all__ = [
    "default_trace",
    "TraceContext",
    "workload_stats",
    "figure_3a",
    "figure_3b",
    "figure_4_sweep",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "view_change_latency_table",
    "churn_table",
    "ablation_k",
    "ablation_representation",
    "ablation_players",
]

_default_trace: Optional[Trace] = None

#: The paper's reported aggregates for the 5-player Quake session.
PAPER_WORKLOAD = {
    "rounds": 11696,
    "message_rate": 42.0,  # ≈ 1.39 items/round × 30 fps
    "mean_modified_per_round": 1.39,
    "mean_active_items": 42.33,
    "never_obsolete_pct": 41.88,
}

#: Paper data points read off Figure 5 for the comparison columns.
PAPER_FIG5A = {15: (73, 28)}  # buffer -> (reliable, semantic) threshold
PAPER_FIG5B = {24: (342.0, 857.0)}  # buffer -> (reliable, semantic) ms


def default_trace() -> Trace:
    """The calibrated 5-player session trace (generated once, cached).

    Built through :func:`repro.workload.portable_workload`, so the trace
    carries its rebuild recipe and can serve as the shared context of a
    dispatched sweep (``dispatch="subprocess"``/``"ssh"``): workers
    regenerate it deterministically instead of receiving it over the wire.
    """
    global _default_trace
    if _default_trace is None:
        from repro.workload import portable_workload

        _default_trace = portable_workload("game")
    return _default_trace


@dataclass(frozen=True)
class TraceContext:
    """A sweep context pairing the shared trace with the kernel engine.

    The engine must *not* travel in cell params — seeds are derived from
    the params dict, so adding a key would change every replicate seed and
    break the golden byte-identity.  It rides in the context instead.  For
    ``engine="v2"`` the entry points keep passing the bare trace (token
    and shards unchanged); a ``TraceContext`` appears only for ``"v3"``,
    whose cache token is deliberately distinct — the engines are proven
    byte-identical by the differential harness, but shards stay
    attributable to the engine that computed them.
    """

    trace: Trace
    engine: str = "v2"

    def cache_token(self) -> str:
        token = self.trace.cache_token()
        if self.engine == "v2":
            return token
        return f"{token}|engine={self.engine}"

    def worker_recipe(self) -> Optional[Dict[str, Any]]:
        inner = self.trace.worker_recipe()
        if inner is None:
            return None
        return {
            "kind": "factory",
            "path": "repro.analysis.experiments:_rebuild_trace_context",
            "params": {"workload": inner, "engine": self.engine},
        }


def _rebuild_trace_context(
    workload: Dict[str, Any], engine: str = "v2"
) -> "TraceContext":
    """Worker-side factory behind :meth:`TraceContext.worker_recipe`."""
    from repro.sweep.worker import build_context

    return TraceContext(trace=build_context(workload), engine=engine)


def _trace_engine(context: Any) -> Tuple[Trace, str]:
    """(trace, engine) from a cell context that may be either form."""
    if isinstance(context, TraceContext):
        return context.trace, context.engine
    return context, "v2"


def _sweep_context(trace: Trace, engine: str) -> Any:
    return trace if engine == "v2" else TraceContext(trace=trace, engine=engine)


def _report_rows(
    report: Any,
    heading: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Optional[str] = None,
    series: Optional[Sequence[Tuple[str, int]]] = None,
    x_label: Optional[str] = None,
    y_label: Optional[str] = None,
    kind: str = "line",
) -> None:
    """Append one figure's table — and optionally a chart — to a builder.

    ``series`` maps chart series names to row column indexes; column 0 is
    the x axis.  NaN points are dropped from charts (they still show in
    the table).  No-op when ``report`` is ``None`` so entry points can
    thread the argument unconditionally.
    """
    if report is None:
        return
    report.add_table(heading, header, rows, notes=notes)
    if series:
        from repro.report.model import Chart

        chart_series = []
        for name, col in series:
            points = [
                (float(row[0]), float(row[col]))
                for row in rows
                if float(row[col]) == float(row[col])
            ]
            chart_series.append((name, points))
        report.add_chart(
            f"{heading} — chart",
            Chart(
                title=heading,
                series=chart_series,
                x_label=x_label or str(header[0]),
                y_label=y_label or "",
                kind=kind,
            ),
        )


def _report_sweep(
    report: Any,
    heading: str,
    sweep: SweepResult,
    metrics: Optional[Sequence[str]] = None,
    x: Optional[str] = None,
    series: Optional[str] = None,
    chart_metric: Optional[str] = None,
    notes: Optional[str] = None,
) -> None:
    """Append a sweep's Student-t CI table (and chart) to a builder."""
    if report is None:
        return
    report.add_sweep(
        heading,
        sweep,
        metrics=metrics,
        x=x,
        series=series,
        chart_metric=chart_metric,
        notes=notes,
    )


def _print_rows(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print("  ".join(f"{h:>14}" for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.2f}")
            else:
                cells.append(f"{value!s:>14}")
        print("  ".join(cells))


# ----------------------------------------------------------------------
# Section 5.2 — workload characterisation
# ----------------------------------------------------------------------


def workload_stats(
    trace: Optional[Trace] = None,
    show: bool = False,
    report: Any = None,
):
    """In-text numbers of Section 5.2: paper vs. this reproduction."""
    trace = trace or default_trace()
    stats = compute_stats(trace)
    rows = [
        ("rounds", PAPER_WORKLOAD["rounds"], stats.rounds),
        ("messages/s", PAPER_WORKLOAD["message_rate"], round(stats.message_rate, 2)),
        (
            "modified items/round",
            PAPER_WORKLOAD["mean_modified_per_round"],
            round(stats.mean_modified_per_round, 2),
        ),
        (
            "active items",
            PAPER_WORKLOAD["mean_active_items"],
            round(stats.mean_active_items, 2),
        ),
        (
            "never obsolete (%)",
            PAPER_WORKLOAD["never_obsolete_pct"],
            round(100 * stats.never_obsolete_share, 2),
        ),
    ]
    if show:
        _print_rows(
            "Section 5.2 workload characterisation",
            ("metric", "paper", "measured"),
            rows,
        )
    _report_rows(
        report,
        "Section 5.2 — workload characterisation",
        ("metric", "paper", "measured"),
        rows,
        notes="Paper values are the 5-player Quake session aggregates.",
    )
    return rows


def figure_3a(
    trace: Optional[Trace] = None,
    top: int = 50,
    show: bool = False,
    report: Any = None,
) -> List[Tuple[int, float]]:
    """Figure 3(a): frequency of item modifications by rank."""
    trace = trace or default_trace()
    rows = item_rank_profile(trace, top=top)
    if show:
        _print_rows(
            "Figure 3(a) — item rank vs % of rounds modified",
            ("rank", "% of rounds"),
            rows,
        )
    _report_rows(
        report,
        "Figure 3(a) — item rank vs % of rounds modified",
        ("rank", "% of rounds"),
        rows,
        series=[("% of rounds modified", 1)],
        x_label="item rank",
        y_label="% of rounds",
    )
    return rows


def figure_3b(
    trace: Optional[Trace] = None,
    max_distance: int = 20,
    show: bool = False,
    report: Any = None,
) -> List[Tuple[int, float]]:
    """Figure 3(b): obsolescence distance distribution."""
    trace = trace or default_trace()
    hist = obsolescence_distances(trace, max_distance=max_distance)
    rows = [(d, round(p, 2)) for d, p in hist.percentages()]
    if show:
        _print_rows(
            "Figure 3(b) — distance to closest related message",
            ("distance", "% of messages"),
            rows,
        )
    _report_rows(
        report,
        "Figure 3(b) — distance to closest related message",
        ("distance", "% of messages"),
        rows,
        series=[("% of messages", 1)],
        x_label="distance (messages)",
        y_label="% of messages",
        kind="bar",
    )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — Figure 4: sample runs at one buffer size
# ----------------------------------------------------------------------

DEFAULT_RATES = (140, 120, 100, 80, 73, 60, 50, 40, 30, 28, 20)


def _figure_4_cell(
    params: Mapping[str, Any], seed: int, context: Any
) -> Dict[str, float]:
    """One (consumer rate × protocol) point of the Figure 4 grid."""
    trace, engine = _trace_engine(context)
    result = run_slow_receiver(
        trace,
        ThroughputConfig(
            buffer_size=params["buffer_size"],
            consumer_rate=float(params["consumer_rate"]),
            semantic=params["semantic"],
            engine=engine,
        ),
    )
    return {
        "producer_idle_pct": result.producer_idle_pct,
        "mean_occupancy": result.mean_occupancy,
        "max_occupancy": result.max_occupancy,
        "purge_ratio": result.purge_ratio,
    }


def figure_4_sweep(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    rates: Sequence[int] = DEFAULT_RATES,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """The full Figure 4 grid (both panels read from it)."""
    trace = trace or default_trace()
    return (
        Sweep(base={"buffer_size": buffer_size})
        .axis("consumer_rate", list(rates))
        .axis("semantic", [False, True])
        .run(
            _figure_4_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )


def _figure_4_rows(
    sweep: SweepResult, rates: Sequence[int], metric: str
) -> List[Tuple[int, float, float]]:
    return [
        (
            rate,
            round(sweep.select(consumer_rate=rate, semantic=False).value(metric), 2),
            round(sweep.select(consumer_rate=rate, semantic=True).value(metric), 2),
        )
        for rate in rates
    ]


def figure_4a(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    rates: Sequence[int] = DEFAULT_RATES,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, float, float]]:
    """Figure 4(a): producer idle % vs consumer rate, reliable vs semantic."""
    sweep = figure_4_sweep(
        trace, buffer_size, rates, workers, cache, engine, dispatch,
        dispatch_params,
    )
    rows = _figure_4_rows(sweep, rates, "producer_idle_pct")
    if show:
        _print_rows(
            f"Figure 4(a) — producer idle % (buffer={buffer_size})",
            ("consumer msg/s", "reliable", "semantic"),
            rows,
        )
    _report_sweep(
        report,
        f"Figure 4(a) — producer idle % (buffer={buffer_size})",
        sweep,
        metrics=["producer_idle_pct"],
        x="consumer_rate",
        series="semantic",
        chart_metric="producer_idle_pct",
    )
    return rows


def figure_4b(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    rates: Sequence[int] = DEFAULT_RATES,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, float, float]]:
    """Figure 4(b): mean buffer occupancy vs consumer rate."""
    sweep = figure_4_sweep(
        trace, buffer_size, rates, workers, cache, engine, dispatch,
        dispatch_params,
    )
    rows = _figure_4_rows(sweep, rates, "mean_occupancy")
    if show:
        _print_rows(
            f"Figure 4(b) — buffer occupancy in messages (buffer={buffer_size})",
            ("consumer msg/s", "reliable", "semantic"),
            rows,
        )
    _report_sweep(
        report,
        f"Figure 4(b) — buffer occupancy in messages (buffer={buffer_size})",
        sweep,
        metrics=["mean_occupancy"],
        x="consumer_rate",
        series="semantic",
        chart_metric="mean_occupancy",
    )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — Figure 5: sweeps over buffer size
# ----------------------------------------------------------------------

DEFAULT_BUFFERS = (4, 8, 12, 16, 20, 24, 28)


def _figure_5a_cell(
    params: Mapping[str, Any], seed: int, context: Any
) -> Dict[str, float]:
    """One buffer-size point: a whole threshold-rate bisection."""
    trace, engine = _trace_engine(context)
    return {
        "threshold_rate": threshold_rate(
            trace, params["buffer_size"], semantic=params["semantic"],
            engine=engine,
        )
    }


def figure_5a(
    trace: Optional[Trace] = None,
    buffers: Sequence[int] = DEFAULT_BUFFERS,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, int, int]]:
    """Figure 5(a): minimum tolerable consumer rate vs buffer size."""
    trace = trace or default_trace()
    sweep = (
        Sweep()
        .axis("buffer_size", list(buffers))
        .axis("semantic", [False, True])
        .run(
            _figure_5a_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = [
        (
            buffer_size,
            int(sweep.select(buffer_size=buffer_size, semantic=False).value("threshold_rate")),
            int(sweep.select(buffer_size=buffer_size, semantic=True).value("threshold_rate")),
        )
        for buffer_size in buffers
    ]
    if show:
        mean_rate = trace.message_rate
        _print_rows(
            f"Figure 5(a) — threshold consumer rate (mean input "
            f"{mean_rate:.1f} msg/s; paper at B=15: reliable 73, semantic 28)",
            ("buffer (msg)", "reliable", "semantic"),
            rows,
        )
    _report_sweep(
        report,
        "Figure 5(a) — threshold consumer rate vs buffer size",
        sweep,
        metrics=["threshold_rate"],
        x="buffer_size",
        series="semantic",
        chart_metric="threshold_rate",
        notes="Paper at B=15: reliable 73 msg/s, semantic 28 msg/s.",
    )
    return rows


def _figure_5b_cell(
    params: Mapping[str, Any], seed: int, context: Any
) -> Dict[str, float]:
    """One buffer-size point: all perturbation probes for one protocol."""
    trace, engine = _trace_engine(context)
    return {
        "tolerance_s": perturbation_tolerance(
            trace,
            params["buffer_size"],
            semantic=params["semantic"],
            probes=params["probes"],
            engine=engine,
        )
    }


def figure_5b(
    trace: Optional[Trace] = None,
    buffers: Sequence[int] = DEFAULT_BUFFERS,
    probes: int = 8,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, float, float]]:
    """Figure 5(b): tolerated full-stop perturbation length vs buffer size."""
    trace = trace or default_trace()
    sweep = (
        Sweep(base={"probes": probes})
        .axis("buffer_size", list(buffers))
        .axis("semantic", [False, True])
        .run(
            _figure_5b_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = [
        (
            buffer_size,
            round(sweep.select(buffer_size=buffer_size, semantic=False).value("tolerance_s") * 1000, 1),
            round(sweep.select(buffer_size=buffer_size, semantic=True).value("tolerance_s") * 1000, 1),
        )
        for buffer_size in buffers
    ]
    if show:
        _print_rows(
            "Figure 5(b) — tolerated perturbation in ms "
            "(paper at B=24: reliable 342, semantic 857)",
            ("buffer (msg)", "reliable (ms)", "semantic (ms)"),
            rows,
        )
    _report_sweep(
        report,
        "Figure 5(b) — tolerated perturbation vs buffer size",
        sweep,
        metrics=["tolerance_s"],
        x="buffer_size",
        series="semantic",
        chart_metric="tolerance_s",
        notes="Paper at B=24: reliable 342 ms, semantic 857 ms.",
    )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — view change latency claim
# ----------------------------------------------------------------------


def _view_change_cell(
    params: Mapping[str, Any], seed: int, context: Any
) -> Dict[str, float]:
    """One protocol's full-stack view-change measurement (Scenario-based,
    so the run is invariant-checked inside the measurement harness)."""
    trace, engine = _trace_engine(context)
    result = measure_view_change_latency(
        trace,
        semantic=params["semantic"],
        slow_rate=params["slow_rate"],
        load_time=params["load_time"],
        engine=engine,
    )
    return {
        "backlog_at_trigger": result.backlog_at_trigger,
        "purged_at_slow": result.purged_at_slow,
        "slow_app_latency": result.slow_app_latency,
    }


def view_change_latency_table(
    trace: Optional[Trace] = None,
    slow_rate: float = 25.0,
    load_time: float = 30.0,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[str, int, int, float]]:
    """View change under load: backlog, purges, app-perceived latency."""
    trace = trace or default_trace()
    sweep = (
        Sweep(base={"slow_rate": slow_rate, "load_time": load_time})
        .axis("semantic", [False, True])
        .run(
            _view_change_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = []
    for semantic in (False, True):
        cell = sweep.select(semantic=semantic)
        rows.append(
            (
                "semantic" if semantic else "reliable",
                int(cell.value("backlog_at_trigger")),
                int(cell.value("purged_at_slow")),
                round(cell.value("slow_app_latency"), 3),
            )
        )
    if show:
        _print_rows(
            f"View change under load (slow consumer at {slow_rate} msg/s)",
            ("protocol", "backlog (msg)", "purged", "app latency (s)"),
            rows,
        )
    _report_sweep(
        report,
        f"View change under load (slow consumer at "
        f"{slow_rate:g} msg/s)",
        sweep,
    )
    return rows


# ----------------------------------------------------------------------
# Churn (ours): throughput and view-change latency under partition-heal
# churn — the fault regime repro.faults opens up
# ----------------------------------------------------------------------

#: Fixed shape of the churn cells (kept module-level so the golden
#: fixture pins one unambiguous configuration).
CHURN_DEFAULTS = {
    "n": 5,
    "side": (4,),
    "at": 1.0,
    "cycles": 3,
    "closed_fraction": 0.5,
    "rounds": 360,
    "consumer_rate": 150.0,
    "until": 10.0,
    "viewchange_retry": 0.1,
}


def _churn_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """One full-stack churn run: partition-heal cycles with the view
    change triggered *during* each partition, so its latency measures how
    long the cut stalls the reconfiguration plus the flush repair after
    the heal.  Invariant-checked with the lossy-regime subset (loss and
    partitions legitimately break per-sender total order; see
    :data:`repro.core.spec.LOSSY_CHECKS`)."""
    from repro.core.spec import LOSSY_CHECKS
    from repro.faults import churn_trigger_times
    from repro.scenario import Scenario

    d = CHURN_DEFAULTS
    semantic = bool(params["semantic"])
    # Engine rides in the (JSON, hence dispatch-portable) context so the
    # cell params — and with them the derived seeds — never change.
    engine = (context or {}).get("engine", "v2")
    result = (
        Scenario()
        .engine(engine)
        .group(
            n=d["n"],
            relation="item-tagging" if semantic else "empty",
            consensus="oracle",
            seed=seed,
            viewchange_retry=d["viewchange_retry"],
        )
        .workload("game", rounds=d["rounds"])
        .consumers(rate=d["consumer_rate"])
        .faults(
            "partition-churn",
            side=list(d["side"]),
            at=d["at"],
            period=float(params["period"]),
            cycles=d["cycles"],
            closed_fraction=d["closed_fraction"],
            loss=float(params["loss"]),
            trigger_during_partition=True,
        )
        .check(checks=LOSSY_CHECKS)
        .collect("throughput", "view_changes", "network", "purges")
        .run(until=d["until"])
    )
    if not result.ok:
        raise AssertionError(
            f"churn cell violated the executable spec: {result.violations}"
        )
    triggers = churn_trigger_times(
        d["at"],
        float(params["period"]),
        d["cycles"],
        d["closed_fraction"],
        trigger_during_partition=True,
    )
    installs = result.metrics["view_changes"]["installs"]
    latencies = []
    for k, trigger in enumerate(triggers):
        vid = k + 1
        times = [
            time
            for per_pid in installs.values()
            for v, time in per_pid
            if v == vid
        ]
        if times:
            latencies.append(max(times) - trigger)
    delivered = result.metrics["throughput"]["delivered"]
    return {
        "delivered_total": float(sum(delivered.values())),
        "delivered_min": float(min(delivered.values())),
        "view_changes": float(len(latencies)),
        "vc_latency_mean_ms": (
            1000.0 * sum(latencies) / len(latencies) if latencies else float("nan")
        ),
        "purged": float(result.metrics["purges"]["total"]),
        "net_dropped": float(result.metrics["network"]["dropped"]),
    }


def churn_table(
    periods: Sequence[float] = (1.0, 2.0),
    losses: Sequence[float] = (0.0, 0.05),
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[float, float, int, int, float, float, int]]:
    """SVS under partition-heal churn: reliable vs semantic, per cell.

    For each (churn period, data loss) the partitioned member is cut off
    for half the period, three times, with the view change triggered
    mid-partition; columns report delivered messages at the slowest member
    and the mean trigger-to-full-installation latency for both protocols,
    plus the semantic run's purge count.  The latency scales with the
    partition length (the change cannot complete before the heal), and the
    semantic relation keeps the slow member's delivery count lower-but-
    fresher exactly as in the paper's perturbation experiments.
    """
    sweep = (
        Sweep()
        .axis("period", list(periods))
        .axis("loss", list(losses))
        .axis("semantic", [False, True])
        .run(
            _churn_cell,
            workers=workers,
            context=None if engine == "v2" else {"engine": engine},
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = []
    for period in periods:
        for loss in losses:
            reliable = sweep.select(period=period, loss=loss, semantic=False)
            semantic = sweep.select(period=period, loss=loss, semantic=True)
            rows.append(
                (
                    period,
                    loss,
                    int(reliable.value("delivered_min")),
                    int(semantic.value("delivered_min")),
                    round(reliable.value("vc_latency_mean_ms"), 1),
                    round(semantic.value("vc_latency_mean_ms"), 1),
                    int(semantic.value("purged")),
                )
            )
    if show:
        _print_rows(
            "Churn — partition-heal cycles, view change triggered "
            "mid-partition (3 cycles, half-period cuts)",
            (
                "period (s)",
                "loss",
                "rel dlvd/min",
                "sem dlvd/min",
                "rel vc (ms)",
                "sem vc (ms)",
                "sem purged",
            ),
            rows,
        )
    _report_rows(
        report,
        "Churn — partition-heal cycles, view change mid-partition",
        (
            "period (s)",
            "loss",
            "rel dlvd/min",
            "sem dlvd/min",
            "rel vc (ms)",
            "sem vc (ms)",
            "sem purged",
        ),
        rows,
        notes="3 cycles, half-period cuts; latency is trigger to full "
        "installation.",
    )
    return rows


# ----------------------------------------------------------------------
# Ablations (ours)
# ----------------------------------------------------------------------


def _ablation_cell(
    params: Mapping[str, Any], seed: int, context: Any
) -> Dict[str, float]:
    """Shared slow-receiver cell for the k and representation ablations."""
    trace, engine = _trace_engine(context)
    result = run_slow_receiver(
        trace,
        ThroughputConfig(
            buffer_size=params["buffer_size"],
            consumer_rate=float(params["consumer_rate"]),
            semantic=True,
            representation=params.get("representation", "k-enumeration"),
            k=params.get("k"),
            engine=engine,
        ),
    )
    return {
        "purge_ratio": result.purge_ratio,
        "producer_idle_pct": result.producer_idle_pct,
    }


def ablation_k(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    ks: Sequence[int] = (2, 5, 10, 15, 30, 60, 120),
    consumer_rate: int = 30,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, float, float]]:
    """Sensitivity to the k-enumeration window (paper picks k = 2×buffer).

    Too-small k cannot express the obsolescence of distant pairs, so the
    purge ratio — and with it the idle percentage — collapses.
    """
    trace = trace or default_trace()
    sweep = (
        Sweep(base={"buffer_size": buffer_size, "consumer_rate": consumer_rate})
        .axis("k", list(ks))
        .run(
            _ablation_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = [
        (
            k,
            round(sweep.select(k=k).value("purge_ratio"), 3),
            round(sweep.select(k=k).value("producer_idle_pct"), 2),
        )
        for k in ks
    ]
    if show:
        _print_rows(
            f"Ablation — k-enumeration window (buffer={buffer_size}, "
            f"consumer={consumer_rate} msg/s; paper's k = {2 * buffer_size})",
            ("k", "purge ratio", "producer idle %"),
            rows,
        )
    _report_sweep(
        report,
        f"Ablation — k-enumeration window (buffer={buffer_size})",
        sweep,
        notes=f"Paper's choice is k = 2×buffer = {2 * buffer_size}.",
    )
    return rows


def ablation_representation(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    consumer_rate: int = 30,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    engine: str = "v2",
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[str, float, float]]:
    """Compare the three obsolescence representations of Section 4.2.

    Item tagging and message enumeration express unbounded-distance
    relations; k-enumeration trades a little purging power for O(k) state.
    """
    trace = trace or default_trace()
    representations = ("tagging", "enumeration", "k-enumeration")
    sweep = (
        Sweep(base={"buffer_size": buffer_size, "consumer_rate": consumer_rate})
        .axis("representation", list(representations))
        .run(
            _ablation_cell,
            workers=workers,
            context=_sweep_context(trace, engine),
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = [
        (
            representation,
            round(sweep.select(representation=representation).value("purge_ratio"), 3),
            round(sweep.select(representation=representation).value("producer_idle_pct"), 2),
        )
        for representation in representations
    ]
    if show:
        _print_rows(
            f"Ablation — representation (buffer={buffer_size}, "
            f"consumer={consumer_rate} msg/s)",
            ("representation", "purge ratio", "producer idle %"),
            rows,
        )
    _report_sweep(
        report,
        f"Ablation — obsolescence representation (buffer={buffer_size})",
        sweep,
    )
    return rows


def _players_cell(
    params: Mapping[str, Any], seed: int, context: Any = None
) -> Dict[str, float]:
    """Generate and characterise one player-count trace (self-contained:
    workers regenerate the trace deterministically from the cell params)."""
    config = GameConfig(rounds=params["rounds"]).scaled_for_players(
        params["players"]
    )
    stats = compute_stats(generate_game_trace(config))
    return {
        "message_rate": stats.message_rate,
        "never_obsolete_pct": 100 * stats.never_obsolete_share,
        "mean_obsolescence_distance": stats.mean_obsolescence_distance,
    }


def ablation_players(
    players: Sequence[int] = (2, 5, 10, 16),
    rounds: int = 6000,
    show: bool = False,
    workers: Optional[int] = None,
    cache: Any = None,
    dispatch: Any = None,
    dispatch_params: Optional[Mapping[str, Any]] = None,
    report: Any = None,
) -> List[Tuple[int, float, float, float]]:
    """Player-count scaling (Section 5.2, last paragraph).

    The paper observes: with more players the message rate increases, the
    never-obsolete share decreases, and the distance between related
    messages increases.  (No ``engine`` knob: the cell is pure trace
    statistics — no kernel runs.)
    """
    sweep = (
        Sweep(base={"rounds": rounds})
        .axis("players", list(players))
        .run(
            _players_cell,
            workers=workers,
            cache=cache,
            dispatch=dispatch,
            dispatch_params=dispatch_params,
        )
    )
    rows = [
        (
            count,
            round(sweep.select(players=count).value("message_rate"), 1),
            round(sweep.select(players=count).value("never_obsolete_pct"), 1),
            round(sweep.select(players=count).value("mean_obsolescence_distance"), 1),
        )
        for count in players
    ]
    if show:
        _print_rows(
            "Ablation — player-count scaling",
            ("players", "msg/s", "never-obs %", "mean distance"),
            rows,
        )
    _report_sweep(report, "Ablation — player-count scaling", sweep)
    return rows
