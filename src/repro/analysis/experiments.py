"""Per-figure experiment harness.

One entry point per table/figure of the paper's evaluation (Section 5).
Each function returns structured rows and can print them in the shape the
paper reports, with the paper's own numbers alongside for comparison.
``EXPERIMENTS.md`` at the repository root records a full run.

All experiments run on the calibrated synthetic game trace (see
:mod:`repro.workload.game` for the substitution rationale), resolved
through the workload registry so any registered generator can stand in;
pass your own :class:`~repro.workload.trace.Trace` to reproduce them on
other workloads.  The full-stack experiments (the view-change table) are
assembled with the declarative :class:`~repro.scenario.Scenario` builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.throughput import (
    ThroughputConfig,
    perturbation_tolerance,
    run_slow_receiver,
    threshold_rate,
)
from repro.analysis.viewchange import (
    ViewChangeLatencyResult,
    measure_view_change_latency,
)
from repro.registry import workloads
from repro.workload.game import GameConfig, generate_game_trace
from repro.workload.trace import (
    Trace,
    compute_stats,
    item_rank_profile,
    obsolescence_distances,
    to_data_messages,
)

__all__ = [
    "default_trace",
    "workload_stats",
    "figure_3a",
    "figure_3b",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "view_change_latency_table",
    "ablation_k",
    "ablation_representation",
    "ablation_players",
]

_default_trace: Optional[Trace] = None

#: The paper's reported aggregates for the 5-player Quake session.
PAPER_WORKLOAD = {
    "rounds": 11696,
    "message_rate": 42.0,  # ≈ 1.39 items/round × 30 fps
    "mean_modified_per_round": 1.39,
    "mean_active_items": 42.33,
    "never_obsolete_pct": 41.88,
}

#: Paper data points read off Figure 5 for the comparison columns.
PAPER_FIG5A = {15: (73, 28)}  # buffer -> (reliable, semantic) threshold
PAPER_FIG5B = {24: (342.0, 857.0)}  # buffer -> (reliable, semantic) ms


def default_trace() -> Trace:
    """The calibrated 5-player session trace (generated once, cached)."""
    global _default_trace
    if _default_trace is None:
        _default_trace = workloads.create("game")
    return _default_trace


def _print_rows(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print("  ".join(f"{h:>14}" for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.2f}")
            else:
                cells.append(f"{value!s:>14}")
        print("  ".join(cells))


# ----------------------------------------------------------------------
# Section 5.2 — workload characterisation
# ----------------------------------------------------------------------


def workload_stats(trace: Optional[Trace] = None, show: bool = False):
    """In-text numbers of Section 5.2: paper vs. this reproduction."""
    trace = trace or default_trace()
    stats = compute_stats(trace)
    rows = [
        ("rounds", PAPER_WORKLOAD["rounds"], stats.rounds),
        ("messages/s", PAPER_WORKLOAD["message_rate"], round(stats.message_rate, 2)),
        (
            "modified items/round",
            PAPER_WORKLOAD["mean_modified_per_round"],
            round(stats.mean_modified_per_round, 2),
        ),
        (
            "active items",
            PAPER_WORKLOAD["mean_active_items"],
            round(stats.mean_active_items, 2),
        ),
        (
            "never obsolete (%)",
            PAPER_WORKLOAD["never_obsolete_pct"],
            round(100 * stats.never_obsolete_share, 2),
        ),
    ]
    if show:
        _print_rows(
            "Section 5.2 workload characterisation",
            ("metric", "paper", "measured"),
            rows,
        )
    return rows


def figure_3a(
    trace: Optional[Trace] = None, top: int = 50, show: bool = False
) -> List[Tuple[int, float]]:
    """Figure 3(a): frequency of item modifications by rank."""
    trace = trace or default_trace()
    rows = item_rank_profile(trace, top=top)
    if show:
        _print_rows(
            "Figure 3(a) — item rank vs % of rounds modified",
            ("rank", "% of rounds"),
            rows,
        )
    return rows


def figure_3b(
    trace: Optional[Trace] = None, max_distance: int = 20, show: bool = False
) -> List[Tuple[int, float]]:
    """Figure 3(b): obsolescence distance distribution."""
    trace = trace or default_trace()
    hist = obsolescence_distances(trace, max_distance=max_distance)
    rows = [(d, round(p, 2)) for d, p in hist.percentages()]
    if show:
        _print_rows(
            "Figure 3(b) — distance to closest related message",
            ("distance", "% of messages"),
            rows,
        )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — Figure 4: sample runs at one buffer size
# ----------------------------------------------------------------------

DEFAULT_RATES = (140, 120, 100, 80, 73, 60, 50, 40, 30, 28, 20)


def figure_4a(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    rates: Sequence[int] = DEFAULT_RATES,
    show: bool = False,
) -> List[Tuple[int, float, float]]:
    """Figure 4(a): producer idle % vs consumer rate, reliable vs semantic."""
    trace = trace or default_trace()
    rows = []
    for rate in rates:
        rel = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size, consumer_rate=rate, semantic=False
            ),
        )
        sem = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size, consumer_rate=rate, semantic=True
            ),
        )
        rows.append(
            (rate, round(rel.producer_idle_pct, 2), round(sem.producer_idle_pct, 2))
        )
    if show:
        _print_rows(
            f"Figure 4(a) — producer idle % (buffer={buffer_size})",
            ("consumer msg/s", "reliable", "semantic"),
            rows,
        )
    return rows


def figure_4b(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    rates: Sequence[int] = DEFAULT_RATES,
    show: bool = False,
) -> List[Tuple[int, float, float]]:
    """Figure 4(b): mean buffer occupancy vs consumer rate."""
    trace = trace or default_trace()
    rows = []
    for rate in rates:
        rel = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size, consumer_rate=rate, semantic=False
            ),
        )
        sem = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size, consumer_rate=rate, semantic=True
            ),
        )
        rows.append(
            (rate, round(rel.mean_occupancy, 2), round(sem.mean_occupancy, 2))
        )
    if show:
        _print_rows(
            f"Figure 4(b) — buffer occupancy in messages (buffer={buffer_size})",
            ("consumer msg/s", "reliable", "semantic"),
            rows,
        )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — Figure 5: sweeps over buffer size
# ----------------------------------------------------------------------

DEFAULT_BUFFERS = (4, 8, 12, 16, 20, 24, 28)


def figure_5a(
    trace: Optional[Trace] = None,
    buffers: Sequence[int] = DEFAULT_BUFFERS,
    show: bool = False,
) -> List[Tuple[int, int, int]]:
    """Figure 5(a): minimum tolerable consumer rate vs buffer size."""
    trace = trace or default_trace()
    rows = []
    for buffer_size in buffers:
        rel = threshold_rate(trace, buffer_size, semantic=False)
        sem = threshold_rate(trace, buffer_size, semantic=True)
        rows.append((buffer_size, rel, sem))
    if show:
        mean_rate = trace.message_rate
        _print_rows(
            f"Figure 5(a) — threshold consumer rate (mean input "
            f"{mean_rate:.1f} msg/s; paper at B=15: reliable 73, semantic 28)",
            ("buffer (msg)", "reliable", "semantic"),
            rows,
        )
    return rows


def figure_5b(
    trace: Optional[Trace] = None,
    buffers: Sequence[int] = DEFAULT_BUFFERS,
    probes: int = 8,
    show: bool = False,
) -> List[Tuple[int, float, float]]:
    """Figure 5(b): tolerated full-stop perturbation length vs buffer size."""
    trace = trace or default_trace()
    rows = []
    for buffer_size in buffers:
        rel = perturbation_tolerance(trace, buffer_size, semantic=False, probes=probes)
        sem = perturbation_tolerance(trace, buffer_size, semantic=True, probes=probes)
        rows.append((buffer_size, round(rel * 1000, 1), round(sem * 1000, 1)))
    if show:
        _print_rows(
            "Figure 5(b) — tolerated perturbation in ms "
            "(paper at B=24: reliable 342, semantic 857)",
            ("buffer (msg)", "reliable (ms)", "semantic (ms)"),
            rows,
        )
    return rows


# ----------------------------------------------------------------------
# Section 5.4 — view change latency claim
# ----------------------------------------------------------------------


def view_change_latency_table(
    trace: Optional[Trace] = None,
    slow_rate: float = 25.0,
    load_time: float = 30.0,
    show: bool = False,
) -> List[Tuple[str, int, int, float]]:
    """View change under load: backlog, purges, app-perceived latency."""
    trace = trace or default_trace()
    rows = []
    for semantic in (False, True):
        result = measure_view_change_latency(
            trace, semantic=semantic, slow_rate=slow_rate, load_time=load_time
        )
        rows.append(
            (
                "semantic" if semantic else "reliable",
                result.backlog_at_trigger,
                result.purged_at_slow,
                round(result.slow_app_latency, 3),
            )
        )
    if show:
        _print_rows(
            f"View change under load (slow consumer at {slow_rate} msg/s)",
            ("protocol", "backlog (msg)", "purged", "app latency (s)"),
            rows,
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (ours)
# ----------------------------------------------------------------------


def ablation_k(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    ks: Sequence[int] = (2, 5, 10, 15, 30, 60, 120),
    consumer_rate: int = 30,
    show: bool = False,
) -> List[Tuple[int, float, float]]:
    """Sensitivity to the k-enumeration window (paper picks k = 2×buffer).

    Too-small k cannot express the obsolescence of distant pairs, so the
    purge ratio — and with it the idle percentage — collapses.
    """
    trace = trace or default_trace()
    rows = []
    for k in ks:
        result = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size,
                consumer_rate=consumer_rate,
                semantic=True,
                k=k,
            ),
        )
        rows.append(
            (k, round(result.purge_ratio, 3), round(result.producer_idle_pct, 2))
        )
    if show:
        _print_rows(
            f"Ablation — k-enumeration window (buffer={buffer_size}, "
            f"consumer={consumer_rate} msg/s; paper's k = {2 * buffer_size})",
            ("k", "purge ratio", "producer idle %"),
            rows,
        )
    return rows


def ablation_representation(
    trace: Optional[Trace] = None,
    buffer_size: int = 15,
    consumer_rate: int = 30,
    show: bool = False,
) -> List[Tuple[str, float, float]]:
    """Compare the three obsolescence representations of Section 4.2.

    Item tagging and message enumeration express unbounded-distance
    relations; k-enumeration trades a little purging power for O(k) state.
    """
    trace = trace or default_trace()
    rows = []
    for representation in ("tagging", "enumeration", "k-enumeration"):
        result = run_slow_receiver(
            trace,
            ThroughputConfig(
                buffer_size=buffer_size,
                consumer_rate=consumer_rate,
                semantic=True,
                representation=representation,
            ),
        )
        rows.append(
            (
                representation,
                round(result.purge_ratio, 3),
                round(result.producer_idle_pct, 2),
            )
        )
    if show:
        _print_rows(
            f"Ablation — representation (buffer={buffer_size}, "
            f"consumer={consumer_rate} msg/s)",
            ("representation", "purge ratio", "producer idle %"),
            rows,
        )
    return rows


def ablation_players(
    players: Sequence[int] = (2, 5, 10, 16),
    rounds: int = 6000,
    show: bool = False,
) -> List[Tuple[int, float, float, float]]:
    """Player-count scaling (Section 5.2, last paragraph).

    The paper observes: with more players the message rate increases, the
    never-obsolete share decreases, and the distance between related
    messages increases.
    """
    base = GameConfig(rounds=rounds)
    rows = []
    for count in players:
        trace = generate_game_trace(base.scaled_for_players(count))
        stats = compute_stats(trace)
        rows.append(
            (
                count,
                round(stats.message_rate, 1),
                round(100 * stats.never_obsolete_share, 1),
                round(stats.mean_obsolescence_distance, 1),
            )
        )
    if show:
        _print_rows(
            "Ablation — player-count scaling",
            ("players", "msg/s", "never-obs %", "mean distance"),
            rows,
        )
    return rows
