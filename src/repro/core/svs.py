"""The Semantic View Synchrony protocol — Figure 1 of the paper.

Each :class:`SVSProcess` keeps the state prescribed by the algorithm:

* ``cv`` — the current view;
* ``blocked`` — true while a view change is in progress;
* ``to_deliver`` — the FIFO queue the application consumes from
  (:class:`~repro.core.buffers.DeliveryQueue`, with semantic purging);
* ``delivered`` — messages already consumed, kept per view because the
  view-change protocol needs the current view's delivered set
  (``local-pred``) and nothing older;
* per closing view: ``global-pred``, ``pred-received`` and ``leave``.

Transitions (names follow Figure 1):

* **t1** ``deliver()`` — the application pulls the queue head;
* **t2** ``multicast()`` — tag with the current view, self-append, send to
  the other members, purge;
* **t3** data reception — accept only messages of the current view while
  unblocked and not already ⊑-covered; append and purge;
* **t4** ``trigger_view_change()`` — flood INIT;
* **t5** first INIT — forward the flood, block, compute and broadcast the
  local predicate (all data accepted for delivery in this view);
* **t6** PRED accumulation;
* **t7** when every unsuspected member's PRED arrived and they form a
  majority — run consensus on ``(next view, flush set)``; on decision,
  flush missing messages, enqueue the VIEW notification, purge, unblock.

Two deliberate, documented deviations from the paper's pseudo-code:

1. The t7 flush guard uses ⊑-*coverage* against ``to-deliver ∪ delivered``
   rather than plain set membership.  With plain membership a process that
   purged ``m`` (covered by an ``m'`` it has already delivered) would
   re-accept ``m`` from the flush set and deliver it *after* ``m'``,
   violating the protocol's own FIFO clause.  Coverage is what t3 uses and
   is clearly the intent.
2. Flushed messages are appended in ``(sender, sn)`` order so that
   per-sender FIFO holds among messages a process had not seen before the
   flush.  The pseudo-code's ``OrderedSetOfMessages`` leaves this implicit.

Both deviations are exercised by regression tests in
``tests/core/test_svs_protocol.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.consensus.interface import CONSENSUS_STREAM, ConsensusFactory, ConsensusInstance
from repro.core.buffers import DeliveryQueue
from repro.core.message import (
    DataMessage,
    Envelope,
    InitMessage,
    MessageId,
    PredMessage,
    View,
    ViewDelivery,
    WelcomeMessage,
)
from repro.core.obsolescence import ObsolescenceRelation
from repro.fd.detector import FD_STREAM, FailureDetector
from repro.sim.failure import check_positive
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import ProcessId, SimProcess

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gcs.context import RunContext

__all__ = ["SVS_STREAM", "SVSListeners", "SVSProcess"]

SVS_STREAM = "svs"

QueueEntry = Union[DataMessage, ViewDelivery]


@dataclass
class SVSListeners:
    """Observer hooks, used by the spec recorder and the metrics layer.

    All are optional; the protocol never depends on them.
    """

    on_multicast: Optional[Callable[[ProcessId, DataMessage], None]] = None
    on_deliver: Optional[Callable[[ProcessId, QueueEntry], None]] = None
    on_install: Optional[Callable[[ProcessId, View], None]] = None
    on_exclude: Optional[Callable[[ProcessId, View], None]] = None
    on_flush: Optional[Callable[[ProcessId, int, int], None]] = None
    """on_flush(pid, flush_set_size, messages_actually_added)."""

    on_pred: Optional[Callable[[ProcessId, int], None]] = None
    """on_pred(pid, local_pred_size) — fired at t5; measures the view-change
    payload (the stability-tracking ablation compares these)."""


class SVSProcess(SimProcess):
    """One group member running the Figure 1 protocol.

    Parameters
    ----------
    initial_view:
        The first view; every member must be constructed with the same one.
    relation:
        The obsolescence relation.  Pass
        :class:`~repro.core.obsolescence.EmptyRelation` to obtain classic
        View Synchrony — the protocol then never purges (the paper's
        reduction of VS to SVS).
    consensus_factory:
        ``factory(owner, key, participants, on_decide)`` returning a
        :class:`~repro.consensus.interface.ConsensusInstance`; the key is
        the id of the view being closed.
    fd:
        Failure detector consulted by the t7 guard.  May be given either as
        an instance (shared oracle) or as a one-argument factory called
        with this process (heartbeat detectors need their owner).
    stability_interval:
        When set, enables stability tracking (see
        :mod:`repro.gcs.stability`): watermark gossip every
        ``stability_interval`` seconds, pruning of group-stable messages
        from the delivered map and from the t5 local predicate.  ``None``
        (default) reproduces the paper's Figure 1 exactly.
    viewchange_retry:
        When set, a blocked process re-sends its INIT and PRED for the
        closing view every ``viewchange_retry`` seconds until the change
        completes.  ``None`` (default) reproduces Figure 1 exactly — the
        paper assumes reliable channels, where one transmission suffices.
        Enable it when running over the lossy links of
        :mod:`repro.faults`, where a dropped PRED would otherwise stall
        the view change forever.  Receivers treat retransmissions
        idempotently, so this never changes outcomes on reliable links.
    ctx:
        Optional pre-validated :class:`~repro.gcs.context.RunContext`.
        When a stack builds its members from a context, per-process
        parameter validation is skipped — the context validated the shared
        configuration once for the whole run (and for every replicate
        reusing it).
    """

    def __init__(
        self,
        pid: ProcessId,
        sim: Simulator,
        network: Network,
        initial_view: View,
        relation: ObsolescenceRelation,
        consensus_factory: ConsensusFactory,
        fd: Union[FailureDetector, Callable[[SimProcess], FailureDetector]],
        listeners: Optional[SVSListeners] = None,
        stability_interval: Optional[float] = None,
        viewchange_retry: Optional[float] = None,
        ctx: Optional["RunContext"] = None,
    ) -> None:
        super().__init__(pid, sim, network)
        self.ctx = ctx
        if not isinstance(fd, FailureDetector):
            fd = fd(self)
        self.relation = relation
        self.fd = fd
        self.listeners = listeners or SVSListeners()
        self._consensus_factory = consensus_factory

        self.cv: View = initial_view
        self.blocked = False
        self.excluded = False
        # True between recover() and the WELCOME that installs the joined
        # view; while joining, every stream except WELCOME is ignored.
        self.joining = False
        self.to_deliver = DeliveryQueue(relation)
        # Data messages already delivered, keyed by the view they belong to.
        self._delivered: Dict[int, Dict[MessageId, DataMessage]] = {}
        self._next_sn = 0

        # Per-closing-view protocol state (Figure 1 declares one instance
        # of each "for each view").
        self._global_pred: Dict[int, Dict[MessageId, DataMessage]] = {}
        self._pred_received: Dict[int, Set[ProcessId]] = {}
        self._leave: Dict[int, FrozenSet[ProcessId]] = {}
        self._join: Dict[int, FrozenSet[ProcessId]] = {}
        self._proposed: Set[int] = set()
        self._consensus: Dict[int, ConsensusInstance] = {}
        self._pending_consensus: Dict[int, List[Tuple[ProcessId, Any]]] = {}

        # Optional INIT/PRED retransmission for lossy links (see class
        # doc).  Checked unconditionally — unlike the heavier shared-config
        # validation a RunContext amortises, this is one comparison, and a
        # NaN slipping through would poison set_timer.
        if viewchange_retry is not None:
            check_positive(viewchange_retry, "viewchange_retry")
        self.viewchange_retry = viewchange_retry
        self._active_init: Optional[InitMessage] = None
        self._active_pred: Optional[PredMessage] = None

        # Whether the relation can relate messages of different senders —
        # decides whether t3 needs the full coverage scan (same-sender
        # relations cannot have a coverer arrive before the covered message
        # on FIFO channels, so id checks suffice).
        self._cross_sender = not relation.same_sender_only

        # Optional stability tracking (see repro.gcs.stability).
        self.stability_interval = stability_interval
        self._stability: Optional["StabilityState"] = None
        if stability_interval is not None:
            from repro.gcs.stability import StabilityState, WatermarkTracker

            # A context already validated the shared configuration once.
            if ctx is None and stability_interval <= 0:
                raise ValueError("stability_interval must be positive")
            self._stability = StabilityState(pid, WatermarkTracker())
            self.set_timer(
                "stability", stability_interval, self._broadcast_stability
            )

        fd.subscribe(self._on_suspicion_change)
        # The application observes membership through the queue, so the
        # initial view is announced like any other.
        self.to_deliver.append(ViewDelivery(initial_view))

        # t2 fan-out cache: the peer list in the current view, in the
        # exact member-iteration order the per-peer send loop used.
        # Built on first multicast and rebuilt when the view id changes —
        # never eagerly, so a 10k-process group that mostly listens does
        # not hold 10k copies of the member list.  The batched-delivery
        # shortcut for the v3 network is only installed when message
        # routing is not overridden — a subclass with its own on_message
        # keeps the generic per-event dispatch.
        self._peers: Optional[List[ProcessId]] = None
        self._peers_vid: Optional[int] = None
        if type(self).on_message is SVSProcess.on_message:
            self._fast_handler = self._fast_deliver

    # ------------------------------------------------------------------
    # t1 — application delivery (down-call)
    # ------------------------------------------------------------------

    def deliver(self) -> Optional[QueueEntry]:
        """Pop and return the next deliverable entry, or None if empty.

        Data messages move to the per-view delivered set; view messages
        mark the application-level view installation.
        """
        if not self.to_deliver:
            return None
        entry = self.to_deliver.pop()
        if isinstance(entry, DataMessage):
            self._delivered.setdefault(entry.view_id, {})[entry.mid] = entry
        if self.listeners.on_deliver is not None:
            self.listeners.on_deliver(self.pid, entry)
        return entry

    def drain(self) -> List[QueueEntry]:
        """Deliver everything currently queued (test convenience)."""
        out: List[QueueEntry] = []
        while self.to_deliver:
            entry = self.deliver()
            assert entry is not None
            out.append(entry)
        return out

    @property
    def pending(self) -> int:
        """Entries waiting in the delivery queue."""
        return len(self.to_deliver)

    # ------------------------------------------------------------------
    # t2 — multicast
    # ------------------------------------------------------------------

    def multicast(self, payload: Any, annotation: Any = None) -> Optional[DataMessage]:
        """Multicast ``payload`` in the current view.

        Returns the sent message, or None when the guard fails (blocked,
        excluded, crashed, or not a member) — callers may retry after the
        next view installation.
        """
        if self.crashed or self.blocked or self.excluded or self.pid not in self.cv:
            return None
        if self.joining:
            return None
        mid = MessageId(self.pid, self._next_sn)
        self._next_sn += 1
        msg = DataMessage(
            mid=mid, view_id=self.cv.vid, payload=payload, annotation=annotation
        )
        self.to_deliver.append(msg)
        envelope = Envelope(stream=SVS_STREAM, body=msg)
        cv = self.cv
        if self._peers_vid != cv.vid:
            self._peers = [m for m in cv.members if m != self.pid]
            self._peers_vid = cv.vid
        # One network call for the whole fan-out (peer order == the old
        # per-member send order); (pid, vid) uniquely identifies the
        # destination set, so the v3 network can memoize the group.
        self.send_multicast(self._peers, envelope, token=(self.pid, cv.vid))
        self.to_deliver.purge_by(msg)
        self._note_processed(msg)
        if self.listeners.on_multicast is not None:
            self.listeners.on_multicast(self.pid, msg)
        return msg

    # ------------------------------------------------------------------
    # t4 — view change trigger
    # ------------------------------------------------------------------

    def trigger_view_change(
        self,
        leave: Iterable[ProcessId] = (),
        join: Iterable[ProcessId] = (),
    ) -> None:
        """Initiate a view change (t4), optionally removing ``leave`` and
        adding ``join`` (the rejoin extension — joiners must be recovered
        processes awaiting a WELCOME, see :meth:`recover`).

        Possible external causes per Section 3.2: failure suspicions,
        buffer shortage, voluntary leaves.  Idempotent while blocked.
        """
        if self.crashed or self.excluded or self.joining or self.pid not in self.cv:
            return
        init = InitMessage(self.cv.vid, frozenset(leave), frozenset(join))
        for member in self.cv.members:
            if member == self.pid:
                self.sim.schedule(0.0, self._handle_init, self.pid, init)
            else:
                self.send(member, Envelope(stream=SVS_STREAM, body=init))

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, Envelope):
            raise TypeError(f"unexpected raw payload: {payload!r}")
        if self.joining:
            # A joiner takes no part in any protocol until it learns the
            # view it was added in; only the WELCOME transfer gets through.
            if payload.stream == SVS_STREAM and isinstance(
                payload.body, WelcomeMessage
            ):
                self._handle_welcome(sender, payload.body)
            return
        if payload.stream == SVS_STREAM:
            body = payload.body
            if isinstance(body, DataMessage):
                self._handle_data(sender, body)
            elif isinstance(body, InitMessage):
                self._handle_init(sender, body)
            elif isinstance(body, PredMessage):
                self._handle_pred(sender, body)
            elif isinstance(body, WelcomeMessage):
                # Duplicate or late transfer (lossy links may duplicate
                # them; every member sends one): already installed, drop.
                pass
            elif self._stability is not None and _is_stable_message(body):
                self._handle_stable(sender, body)
            else:
                raise TypeError(f"unknown SVS message: {body!r}")
        elif payload.stream == CONSENSUS_STREAM:
            self._route_consensus(sender, payload.instance, payload.body)
        elif payload.stream == FD_STREAM:
            handler = getattr(self.fd, "on_message", None)
            if handler is not None:
                handler(sender, payload.body)
        else:
            self.on_other_stream(sender, payload)

    def on_other_stream(self, sender: ProcessId, envelope: Envelope) -> None:
        """Extension point for subclasses multiplexing extra streams."""
        raise TypeError(f"unknown stream: {envelope.stream!r}")

    def _fast_deliver(self, sender: ProcessId, payload: Any) -> None:
        """Batched-delivery shortcut consumed by the v3 network.

        Semantically identical to ``SimProcess._deliver`` (the crash
        check) followed by :meth:`on_message` routing, with the dominant
        case — an SVS-stream :class:`DataMessage` to a settled member —
        dispatched straight to t3.  Everything else (joining members,
        control messages, subclassed envelopes or messages) falls back to
        the generic router, so behaviour is byte-identical to the
        per-event path; only the Python dispatch overhead differs.
        """
        if self.crashed:
            return
        if (
            not self.joining
            and payload.__class__ is Envelope
            and payload.stream == SVS_STREAM
        ):
            body = payload.body
            if body.__class__ is DataMessage:
                self._handle_data(sender, body)
                return
        self.on_message(sender, payload)

    # ------------------------------------------------------------------
    # t3 — data reception
    # ------------------------------------------------------------------

    def _handle_data(self, sender: ProcessId, msg: DataMessage) -> None:
        if self.blocked or self.excluded or msg.view_id != self.cv.vid:
            return
        # Accepted or dropped-as-covered, the message is *processed*: its
        # delivery obligation is dischargeable locally.
        self._note_processed(msg)
        if self._covered(msg):
            return
        # Only the arriving message can introduce new dominations, so the
        # fused single-message purge equals Figure 1's full purge here.
        self.to_deliver.append_purge(msg)

    def _covered(self, msg: DataMessage, deep: Optional[bool] = None) -> bool:
        """Is ``msg`` ⊑-covered by the messages accepted for delivery?

        ``deep`` forces the full relation scan.  At t3 reception the scan
        is skipped for same-sender-only relations (a coverer cannot
        precede the covered message on a FIFO channel, so the id checks
        are complete); the installation flush must always scan — a message
        this process purged earlier may reappear in the flush set *after*
        its coverer was delivered, and re-accepting it would violate FIFO.
        """
        if deep is None:
            deep = self._cross_sender
        if self.to_deliver.contains_mid(msg.mid):
            return True
        delivered = self._delivered.get(msg.view_id, {})
        if msg.mid in delivered:
            return True
        if not deep:
            return False
        if self.to_deliver.covered(msg):
            return True
        return any(self.relation.covers(other, msg) for other in delivered.values())

    # ------------------------------------------------------------------
    # t5 — INIT handling
    # ------------------------------------------------------------------

    def _handle_init(self, sender: ProcessId, init: InitMessage) -> None:
        if self.blocked or self.excluded or init.view_id != self.cv.vid:
            return
        if self.pid not in self.cv:
            return
        # Forward the flood so every correct member blocks (t5).
        if sender != self.pid:
            fwd = Envelope(stream=SVS_STREAM, body=init)
            for member in self.cv.members:
                if member != self.pid:
                    self.send(member, fwd)
        self.blocked = True
        vid = self.cv.vid
        self._leave[vid] = frozenset(init.leave) & self.cv.members
        # Not restricted to non-members: a crashed process is still in cv
        # until a change removes it, and rejoining it in the *same* view
        # relies on the join set carrying it through t7.
        self._join[vid] = frozenset(init.join)
        local_pred = self._local_pred(vid)
        if self.listeners.on_pred is not None:
            self.listeners.on_pred(self.pid, len(local_pred))
        pred = PredMessage(vid, tuple(local_pred))
        envelope = Envelope(stream=SVS_STREAM, body=pred)
        for member in self.cv.members:
            if member == self.pid:
                self.sim.schedule(0.0, self._handle_pred, self.pid, pred)
            else:
                self.send(member, envelope)
        if self.viewchange_retry is not None:
            self._active_init = init
            self._active_pred = pred
            self.set_timer(
                "vc-retry", self.viewchange_retry, self._vc_retry
            )

    def _vc_retry(self) -> None:
        """Re-send INIT and PRED for the still-open view change.

        Only armed when ``viewchange_retry`` is set; receivers handle both
        idempotently (blocked members ignore the INIT, PRED accumulation
        deduplicates by sender), so retransmission is outcome-neutral on
        reliable links and restores liveness on lossy ones.
        """
        if self.crashed or self.excluded or not self.blocked:
            return
        init, pred = self._active_init, self._active_pred
        if init is None or pred is None or init.view_id != self.cv.vid:
            return
        init_env = Envelope(stream=SVS_STREAM, body=init)
        pred_env = Envelope(stream=SVS_STREAM, body=pred)
        for member in self.cv.members:
            if member != self.pid:
                self.send(member, init_env)
                self.send(member, pred_env)
        self.set_timer("vc-retry", self.viewchange_retry, self._vc_retry)

    def _local_pred(self, vid: int) -> List[DataMessage]:
        """All data of view ``vid`` this process accepted for delivery.

        With stability tracking, group-stable messages are omitted: every
        member has them accounted for, so they need no flush coverage.
        """
        out = list(self._delivered.get(vid, {}).values())
        out.extend(self.to_deliver.data_in_view(vid))
        if self._stability is None:
            return out
        return [m for m in out if m.sn > self._stable_sn(m.sender)]

    # ------------------------------------------------------------------
    # t6 — PRED accumulation
    # ------------------------------------------------------------------

    def _handle_pred(self, sender: ProcessId, pred: PredMessage) -> None:
        if self.crashed or self.excluded or pred.view_id != self.cv.vid:
            return
        bucket = self._global_pred.setdefault(pred.view_id, {})
        for msg in pred.messages:
            bucket.setdefault(msg.mid, msg)
        self._pred_received.setdefault(pred.view_id, set()).add(sender)
        self._check_t7()

    # ------------------------------------------------------------------
    # t7 — propose, decide, install
    # ------------------------------------------------------------------

    def _check_t7(self) -> None:
        if not self.blocked or self.excluded or self.crashed:
            return
        vid = self.cv.vid
        if vid in self._proposed:
            return
        received = self._pred_received.get(vid, set())
        if len(received) <= len(self.cv) // 2:
            return
        if any(
            member not in received and not self.fd.suspects(member)
            for member in self.cv.members
        ):
            return
        self._proposed.add(vid)
        next_members = (
            frozenset(received) | self._join.get(vid, frozenset())
        ) - self._leave.get(vid, frozenset())
        proposal_view = View(vid + 1, next_members)
        flush = tuple(
            sorted(
                self._global_pred.get(vid, {}).values(),
                key=lambda m: (m.mid.sender, m.mid.sn),
            )
        )
        instance = self._consensus_for(vid)
        instance.propose((proposal_view, flush))

    def _consensus_for(self, vid: int) -> ConsensusInstance:
        instance = self._consensus.get(vid)
        if instance is None:
            instance = self._consensus_factory(
                self,
                vid,
                tuple(sorted(self.cv.members)),
                lambda decision, v=vid: self._on_decision(v, decision),
            )
            self._consensus[vid] = instance
            for sender, body in self._pending_consensus.pop(vid, []):
                instance.on_message(sender, body)
        return instance

    def _route_consensus(self, sender: ProcessId, key: Any, body: Any) -> None:
        if self.excluded:
            return
        vid = int(key)
        if vid == self.cv.vid:
            self._consensus_for(vid).on_message(sender, body)
        elif vid > self.cv.vid:
            # Consensus traffic for a view we have not installed yet —
            # buffer until our own installation catches up.
            self._pending_consensus.setdefault(vid, []).append((sender, body))
        elif vid in self._consensus:
            # Late traffic for a closed view (e.g. a forwarded DECIDE).
            self._consensus[vid].on_message(sender, body)

    def _on_decision(self, vid: int, decision: Tuple[View, Tuple[DataMessage, ...]]) -> None:
        if self.crashed or self.excluded or vid != self.cv.vid:
            return
        next_view, flush = decision
        if self.pid not in next_view:
            self.excluded = True
            self.blocked = True
            if self.listeners.on_exclude is not None:
                self.listeners.on_exclude(self.pid, next_view)
            return
        added = 0
        for msg in sorted(flush, key=lambda m: (m.mid.sender, m.mid.sn)):
            self._note_processed(msg)
            # Group-stable messages are accounted for everywhere; pruning
            # may have removed their local coverers, so skip them first.
            if self._stability is not None and msg.sn <= self._stable_sn(
                msg.sender
            ):
                continue
            # Coverage (not membership) guard — deviation #1, see module
            # docs — with the full scan forced: a locally purged message
            # may be in the flush set while only its coverer remains here.
            if not self._covered(msg, deep=True):
                self.to_deliver.append(msg)
                added += 1
        self.to_deliver.purge()
        self.to_deliver.append(ViewDelivery(next_view))
        if self.listeners.on_flush is not None:
            self.listeners.on_flush(self.pid, len(flush), added)

        old_vid = self.cv.vid
        departed = self.cv.members - next_view.members
        # Joiners = processes the INIT asked to add that made it into the
        # decided view without having closed the old one (no PRED from
        # them).  Computed from the join set — not a membership diff — so
        # a crashed member rejoining within its own view is welcomed too,
        # and runs without joins send nothing extra.
        join_set = self._join.get(old_vid, frozenset())
        joined = (
            (next_view.members & join_set)
            - self._pred_received.get(old_vid, frozenset())
            - {self.pid}
            if join_set
            else frozenset()
        )
        self.cv = next_view
        self.blocked = False
        if self.viewchange_retry is not None:
            self.cancel_timer("vc-retry")
            self._active_init = None
            self._active_pred = None
        # Joiners did not close the old view; transfer them the outcome.
        # Every surviving member sends one WELCOME so the transfer goes
        # through as long as any single copy arrives; the joiner installs
        # the first and drops the rest.
        for pid in sorted(joined):
            self.send(pid, Envelope(stream=SVS_STREAM, body=WelcomeMessage(next_view)))
        # State of closed views can never be consulted again.
        self._delivered.pop(old_vid, None)
        self._global_pred.pop(old_vid, None)
        self._pred_received.pop(old_vid, None)
        self._leave.pop(old_vid, None)
        self._join.pop(old_vid, None)
        if self._stability is not None:
            # Departed senders may leave permanent gaps (messages nobody
            # received); the boundary discharges their obligations.
            for sender in departed:
                self._stability.tracker.seal(sender)
                self._stability.forget_peer(sender)
        if self.listeners.on_install is not None:
            self.listeners.on_install(self.pid, next_view)
        # Consensus traffic for the view we just installed may have been
        # buffered by _route_consensus; it is drained when the instance is
        # created (first message for the new view, or our own t7).

    # ------------------------------------------------------------------
    # Rejoin (the recover/welcome extension; see repro.faults)
    # ------------------------------------------------------------------

    def recover(self) -> None:
        """Revive a crashed (or excluded) process as a fresh joiner.

        The process comes back with empty protocol state — crash-stop means
        volatile state is lost — except for its sequence-number counter,
        which is treated as stable storage so message identities stay
        globally unique across incarnations.  It then waits, deaf to every
        stream but WELCOME, until some view change adds it back (see
        :meth:`trigger_view_change`'s ``join`` parameter); orchestration
        lives in :meth:`repro.gcs.stack.GroupStack.rejoin`.
        """
        if not (self.crashed or self.excluded):
            raise ValueError(
                f"process {self.pid} is neither crashed nor excluded; "
                f"nothing to recover from"
            )
        self.crashed = False
        self.crash_time = None
        self.excluded = False
        self.blocked = True
        self.joining = True
        self.to_deliver = DeliveryQueue(self.relation)
        self._delivered = {}
        self._global_pred = {}
        self._pred_received = {}
        self._leave = {}
        self._join = {}
        self._proposed = set()
        self._consensus = {}
        self._pending_consensus = {}
        self._active_init = None
        self._active_pred = None
        if self._stability is not None:
            from repro.gcs.stability import StabilityState, WatermarkTracker

            self._stability = StabilityState(self.pid, WatermarkTracker())
            self.set_timer(
                "stability", self.stability_interval, self._broadcast_stability
            )
        # The failure detector is NOT resumed here: while joining, the
        # process must keep looking unresponsive (heartbeat silence, oracle
        # suspicion) so the join view change's t7 does not wait for a PRED
        # it will never send.  _handle_welcome resumes it.

    def send_welcome(self, pid: ProcessId) -> None:
        """Re-send the current view to a joiner that is already a member.

        Used by the stack's rejoin watchdog when every WELCOME of the
        installing view change was lost: the joiner is in ``cv`` but still
        waiting, and retriggering another view change would deadlock (t7
        waits for the joiner's PRED, which a joining process never sends).
        """
        if self.crashed or self.excluded or self.joining:
            return
        if pid in self.cv.members and pid != self.pid:
            self.send(pid, Envelope(stream=SVS_STREAM, body=WelcomeMessage(self.cv)))

    def _handle_welcome(self, sender: ProcessId, welcome: WelcomeMessage) -> None:
        if not self.joining or self.crashed:
            return
        if self.pid not in welcome.view or welcome.view.vid <= self.cv.vid:
            return
        self.joining = False
        self.blocked = False
        self.cv = welcome.view
        self.to_deliver.append(ViewDelivery(welcome.view))
        # Back among the living: resume heartbeating (per-process
        # detectors only; the shared oracle reads ground truth itself).
        resume = getattr(self.fd, "resume", None)
        if resume is not None:
            resume()
        if self.listeners.on_install is not None:
            self.listeners.on_install(self.pid, welcome.view)

    # ------------------------------------------------------------------
    # Stability tracking (optional; see repro.gcs.stability)
    # ------------------------------------------------------------------

    def _note_processed(self, msg: DataMessage) -> None:
        if self._stability is not None:
            self._stability.tracker.note(msg.mid.sender, msg.sn)

    def _stable_sn(self, sender: ProcessId) -> int:
        assert self._stability is not None
        return self._stability.stable_sn(sender, self.cv.members)

    def _broadcast_stability(self) -> None:
        if self.crashed or self.excluded or self._stability is None:
            return
        from repro.gcs.stability import StableMessage

        report = StableMessage(
            self.cv.vid, self._stability.tracker.snapshot()
        )
        for member in self.cv.members:
            if member != self.pid:
                self.send(member, Envelope(stream=SVS_STREAM, body=report))
        self.set_timer(
            "stability", self.stability_interval, self._broadcast_stability
        )

    def _handle_stable(self, sender: ProcessId, report: Any) -> None:
        if self.excluded or self._stability is None:
            return
        self._stability.record_report(sender, report.watermarks)
        self._gc_stable()

    def _gc_stable(self) -> None:
        """Prune group-stable messages from the delivered map."""
        assert self._stability is not None
        delivered = self._delivered.get(self.cv.vid)
        if not delivered:
            return
        bounds: Dict[ProcessId, int] = {}
        doomed = []
        for mid in delivered:
            bound = bounds.get(mid.sender)
            if bound is None:
                bound = self._stable_sn(mid.sender)
                bounds[mid.sender] = bound
            if mid.sn <= bound:
                doomed.append(mid)
        for mid in doomed:
            del delivered[mid]

    # ------------------------------------------------------------------
    # Failure detector feedback
    # ------------------------------------------------------------------

    def _on_suspicion_change(self, pid: ProcessId, suspected: bool) -> None:
        if suspected:
            self._check_t7()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def purge_count(self) -> int:
        return self.to_deliver.stats.purged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "blocked" if self.blocked else "open"
        if self.joining:
            state = "joining"
        if self.excluded:
            state = "excluded"
        if self.crashed:
            state = "crashed"
        return f"SVSProcess(pid={self.pid}, view={self.cv.vid}, {state})"


def _is_stable_message(body: Any) -> bool:
    from repro.gcs.stability import StableMessage

    return isinstance(body, StableMessage)
