"""Executable specification of SVS (Section 3.2 of the paper).

The safety properties are checked over *recorded histories*: every multicast
and every application-level delivery (data or view notification) of every
process.  :class:`HistoryRecorder` plugs into
:class:`~repro.core.svs.SVSListeners` so any simulation can be checked
after the fact.

Checked properties:

* **Semantic View Synchrony** (:func:`check_svs`): if p installs views
  v_i and v_{i+1} and delivers m in v_i, every q that installs both views
  delivers some m' with ``m ⊑ m'`` before installing v_{i+1}.
* **FIFO Semantic Reliability** (:func:`check_fifo_sr`): (i) per-sender
  delivery order follows multicast order; (ii) when a process delivers m'
  in v_i, every earlier message m of the same sender is ⊑-covered by its
  deliveries before it installs v_{i+1}.
* **Integrity** (:func:`check_integrity`): no creation, no duplication.
* **View agreement** (:func:`check_view_agreement`): processes installing
  the same view id agree on membership, and views install in increasing
  order.
* **Classic VS** (:func:`check_classic_vs`): with the empty relation,
  co-installed segments must contain exactly the same message sets — the
  paper's claim that SVS with an empty relation *is* VS.

All checkers return a list of human-readable violations; an empty list
means the property holds on the recorded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.message import DataMessage, MessageId, View, ViewDelivery
from repro.core.obsolescence import EmptyRelation, ObsolescenceRelation
from repro.core.svs import SVSListeners

__all__ = [
    "HistoryRecorder",
    "ProcessHistory",
    "CHECKS",
    "DEFAULT_CHECKS",
    "LOSSY_CHECKS",
    "check_svs",
    "check_fifo_sr",
    "check_fifo_order",
    "check_fifo_cover",
    "check_integrity",
    "check_view_agreement",
    "check_classic_vs",
    "check_all",
]

QueueEntry = Union[DataMessage, ViewDelivery]


@dataclass
class ProcessHistory:
    """Everything one process delivered, in order."""

    pid: int
    events: List[QueueEntry] = field(default_factory=list)

    def installed_views(self) -> List[View]:
        return [e.view for e in self.events if isinstance(e, ViewDelivery)]

    def segments(self) -> Dict[int, List[DataMessage]]:
        """Data deliveries grouped by the view they were delivered in.

        Segment ``vid`` holds everything delivered between the installation
        of view ``vid`` and the next view installation (or the end of the
        history).  Data delivered before any view installation is grouped
        under ``-1`` (a protocol bug if non-empty — the initial view is
        announced through the queue before any data).
        """
        segments: Dict[int, List[DataMessage]] = {}
        current = -1
        for event in self.events:
            if isinstance(event, ViewDelivery):
                current = event.view.vid
                segments.setdefault(current, [])
            else:
                segments.setdefault(current, []).append(event)
        return segments


class HistoryRecorder:
    """Records multicasts and deliveries across a whole group run.

    A process that crashes and later *rejoins* (see
    :meth:`repro.gcs.stack.GroupStack.rejoin`) comes back as a fresh
    **incarnation**: crash-stop loses its volatile state, so its pre-crash
    and post-rejoin deliveries are two separate histories, exactly as two
    distinct processes would be.  :meth:`record_rejoin` marks the boundary;
    the finished history moves to :attr:`retired` and every checker runs
    over :meth:`all_histories` (live and retired alike).
    """

    def __init__(self) -> None:
        self.multicasts: Dict[MessageId, DataMessage] = {}
        self.multicast_order: Dict[int, List[DataMessage]] = {}
        self.histories: Dict[int, ProcessHistory] = {}
        self.excluded: Dict[int, View] = {}
        #: Completed incarnations of rejoined pids, in rejoin order.
        self.retired: List[ProcessHistory] = []

    # ------------------------------------------------------------------
    # Recording hooks
    # ------------------------------------------------------------------

    def record_multicast(self, pid: int, msg: DataMessage) -> None:
        self.multicasts[msg.mid] = msg
        self.multicast_order.setdefault(msg.sender, []).append(msg)

    def record_delivery(self, pid: int, entry: QueueEntry) -> None:
        self.histories.setdefault(pid, ProcessHistory(pid)).events.append(entry)

    def record_exclusion(self, pid: int, view: View) -> None:
        self.excluded[pid] = view

    def record_rejoin(self, pid: int) -> None:
        """Close ``pid``'s current incarnation before it rejoins."""
        history = self.histories.pop(pid, None)
        if history is not None:
            self.retired.append(history)

    def listeners(self) -> SVSListeners:
        """Build SVS listeners wired into this recorder."""
        return SVSListeners(
            on_multicast=self.record_multicast,
            on_deliver=self.record_delivery,
            on_exclude=self.record_exclusion,
        )

    def history(self, pid: int) -> ProcessHistory:
        return self.histories.setdefault(pid, ProcessHistory(pid))

    def all_histories(self) -> List[ProcessHistory]:
        """Every incarnation's history: retired ones first, then live."""
        return [*self.retired, *self.histories.values()]


# ----------------------------------------------------------------------
# Property checkers
# ----------------------------------------------------------------------


def _covered_in(
    m: DataMessage, pool: Sequence[DataMessage], relation: ObsolescenceRelation
) -> bool:
    return any(other.mid == m.mid or relation.obsoletes(other, m) for other in pool)


def check_svs(
    recorder: HistoryRecorder, relation: ObsolescenceRelation
) -> List[str]:
    """The Semantic View Synchrony property (Section 3.2).

    Histories are compared per *incarnation* (see
    :meth:`HistoryRecorder.record_rejoin`); caches are keyed by position
    because a rejoined pid contributes several histories.
    """
    violations: List[str] = []
    histories = recorder.all_histories()
    segment_cache = [h.segments() for h in histories]
    installed_cache = [
        [v.vid for v in h.installed_views()] for h in histories
    ]
    for pi, p in enumerate(histories):
        p_installed = installed_cache[pi]
        for vid in p_installed:
            if vid + 1 not in p_installed:
                continue  # p did not install the consecutive pair
            p_segment = segment_cache[pi].get(vid, [])
            for qi, q in enumerate(histories):
                if qi == pi:
                    continue
                q_installed = installed_cache[qi]
                if vid not in q_installed or vid + 1 not in q_installed:
                    continue
                # q's deliveries before installing vid+1 == segments <= vid.
                q_pool: List[DataMessage] = []
                for w in q_installed:
                    if w <= vid:
                        q_pool.extend(segment_cache[qi].get(w, []))
                q_mids = {m.mid for m in q_pool}
                for m in p_segment:
                    if m.mid in q_mids:
                        continue
                    if not _covered_in(m, q_pool, relation):
                        violations.append(
                            f"SVS: {p.pid} delivered {m} in view {vid} but "
                            f"{q.pid} installed view {vid + 1} without "
                            f"covering it"
                        )
    return violations


def check_fifo_order(
    recorder: HistoryRecorder, relation: ObsolescenceRelation
) -> List[str]:
    """FIFO Semantic Reliability clause (i): per-sender delivery order
    follows multicast (sn) order.

    This clause rests on the paper's reliable-FIFO-channel assumption
    (Section 3.1).  Under the injected channel faults of
    :mod:`repro.faults` it is *expected* to fail: a message lost to a
    partition or a lossy link is recovered by the next view change's
    flush, necessarily after any higher-sn messages the application
    already consumed.  Lossy scenarios therefore check
    :data:`LOSSY_CHECKS`, which swaps this clause for clause (ii).
    """
    violations: List[str] = []
    for history in recorder.all_histories():
        last_sn: Dict[int, int] = {}
        for event in history.events:
            if not isinstance(event, DataMessage):
                continue
            prev = last_sn.get(event.sender)
            if prev is not None and event.sn <= prev:
                violations.append(
                    f"FIFO(i): {history.pid} delivered {event} after "
                    f"sn {prev} of the same sender"
                )
            last_sn[event.sender] = event.sn
    return violations


def check_fifo_cover(
    recorder: HistoryRecorder, relation: ObsolescenceRelation
) -> List[str]:
    """FIFO Semantic Reliability clause (ii): when a process delivers m',
    every earlier message of the same sender is ⊑-covered by its
    deliveries before the next view installation.

    For a rejoined incarnation, the clause only binds messages multicast
    in views the incarnation was actually a member of — its first
    installed view onwards.  Traffic that predates the join is another
    incarnation's (or nobody's) obligation, exactly as for a process that
    was never in the group.  For ordinary histories the floor is view 0,
    which excludes nothing.
    """
    violations: List[str] = []
    for history in recorder.all_histories():
        first_vid: Optional[int] = next(
            (
                e.view.vid
                for e in history.events
                if isinstance(e, ViewDelivery)
            ),
            None,
        )
        delivered_so_far: List[DataMessage] = []
        max_sn_from: Dict[int, int] = {}
        installs_seen = 0
        for event in history.events:
            if isinstance(event, DataMessage):
                delivered_so_far.append(event)
                cur = max_sn_from.get(event.sender, -1)
                if event.sn > cur:
                    max_sn_from[event.sender] = event.sn
                continue
            installs_seen += 1
            if installs_seen == 1:
                continue  # the initial view has no preceding segment
            for sender, sn_max in max_sn_from.items():
                for m in recorder.multicast_order.get(sender, []):
                    if m.sn >= sn_max:
                        break
                    if first_vid is not None and m.view_id < first_vid:
                        continue  # predates this incarnation's membership
                    if not _covered_in(m, delivered_so_far, relation):
                        violations.append(
                            f"FIFO(ii): {history.pid} installed view "
                            f"#{installs_seen - 1} having delivered up to "
                            f"sn {sn_max} of sender {sender} without "
                            f"covering {m}"
                        )
    return violations


def check_fifo_sr(
    recorder: HistoryRecorder, relation: ObsolescenceRelation
) -> List[str]:
    """FIFO Semantic Reliability, both clauses (Section 3.2)."""
    return [
        *check_fifo_order(recorder, relation),
        *check_fifo_cover(recorder, relation),
    ]


def check_integrity(recorder: HistoryRecorder) -> List[str]:
    """No creation, no duplication (Section 3.2)."""
    violations: List[str] = []
    for history in recorder.all_histories():
        seen: Set[MessageId] = set()
        for event in history.events:
            if not isinstance(event, DataMessage):
                continue
            original = recorder.multicasts.get(event.mid)
            if original is None:
                violations.append(
                    f"Integrity(no-creation): {history.pid} delivered "
                    f"unknown message {event}"
                )
            elif original != event:
                violations.append(
                    f"Integrity(no-creation): {history.pid} delivered a "
                    f"message differing from the multicast one: {event}"
                )
            if event.mid in seen:
                violations.append(
                    f"Integrity(no-duplication): {history.pid} delivered "
                    f"{event} twice"
                )
            seen.add(event.mid)
    return violations


def check_view_agreement(recorder: HistoryRecorder) -> List[str]:
    """Installed views with equal ids have equal membership; installation
    order per process is strictly increasing and gap-free."""
    violations: List[str] = []
    by_vid: Dict[int, View] = {}
    for history in recorder.all_histories():
        previous: Optional[int] = None
        for view in history.installed_views():
            known = by_vid.get(view.vid)
            if known is None:
                by_vid[view.vid] = view
            elif known.members != view.members:
                violations.append(
                    f"ViewAgreement: view {view.vid} installed with "
                    f"memberships {sorted(known.members)} and "
                    f"{sorted(view.members)}"
                )
            if previous is not None:
                if view.vid <= previous:
                    violations.append(
                        f"ViewAgreement: {history.pid} installed view "
                        f"{view.vid} after {previous}"
                    )
                elif view.vid != previous + 1:
                    violations.append(
                        f"ViewAgreement: {history.pid} skipped from view "
                        f"{previous} to {view.vid}"
                    )
            previous = view.vid
    return violations


def check_classic_vs(recorder: HistoryRecorder) -> List[str]:
    """Classic View Synchrony: identical delivery *sets* per co-installed
    view segment — must hold whenever the relation is empty."""
    empty = EmptyRelation()
    return check_svs(recorder, empty)


#: Checkers addressable by name, all normalised to the same
#: ``(recorder, relation) -> violations`` signature.  ``classic-vs`` is
#: meaningful only under the empty relation, so it is registered here for
#: explicit selection but excluded from :data:`DEFAULT_CHECKS`.
CHECKS: Dict[str, Callable[[HistoryRecorder, ObsolescenceRelation], List[str]]] = {
    "svs": check_svs,
    "fifo-sr": check_fifo_sr,
    "fifo-order": check_fifo_order,
    "fifo-cover": check_fifo_cover,
    "integrity": lambda recorder, relation: check_integrity(recorder),
    "view-agreement": lambda recorder, relation: check_view_agreement(recorder),
    "classic-vs": lambda recorder, relation: check_classic_vs(recorder),
}

#: The checks :func:`check_all` runs when no subset is requested.
DEFAULT_CHECKS: Tuple[str, ...] = ("svs", "fifo-sr", "integrity", "view-agreement")

#: The checks that remain meaningful when channel faults (loss,
#: partitions) break the paper's reliable-link assumption: everything but
#: per-sender total order, which flush-based recovery cannot restore for
#: messages the application already consumed (see :func:`check_fifo_order`).
LOSSY_CHECKS: Tuple[str, ...] = ("svs", "fifo-cover", "integrity", "view-agreement")


def check_all(
    recorder: HistoryRecorder,
    relation: ObsolescenceRelation,
    checks: Optional[Sequence[str]] = None,
) -> List[str]:
    """Run the named safety checkers; returns all violations found.

    ``checks=None`` runs :data:`DEFAULT_CHECKS`; passing a subset of
    :data:`CHECKS` keys lets callers (the sweep executor, fuzz harnesses)
    pay only for the properties they are probing.
    """
    names = DEFAULT_CHECKS if checks is None else tuple(checks)
    violations: List[str] = []
    for name in names:
        checker = CHECKS.get(name)
        if checker is None:
            known = ", ".join(CHECKS)
            raise ValueError(f"unknown check: {name!r} (known: {known})")
        violations.extend(checker(recorder, relation))
    return violations
