"""Obsolescence relations and their wire representations.

The obsolescence relation ``m ≺ m'`` ("m is made obsolete by m'") is the
application-supplied input to Semantic View Synchrony.  It must be an
*irreflexive partial order* — antisymmetric and transitive (Section 3.2).
``m ⊑ m'`` abbreviates ``m = m' or m ≺ m'``.

The paper proposes three representations (Section 4.2), all implemented
here:

* **Item tagging** (:class:`ItemTagging`): each message carries the integer
  tag of the data item it updates; two messages from the same sender with
  the same tag are related, the newer one making the older obsolete.
* **Message enumeration** (:class:`MessageEnumeration`): each message
  explicitly enumerates the identifiers of every (transitive) predecessor it
  makes obsolete.  :class:`EnumerationEncoder` maintains the transitive
  closure on the sender side.
* **k-enumeration** (:class:`KEnumeration`): each message carries a k-bit
  bitmap over its k immediate predecessors in the sender's stream; bit
  ``d-1`` set means "the message d positions back is obsolete".  Transitive
  closure is composed with shift/or (:class:`KEnumerationEncoder`), exactly
  the cheap-operator scheme the paper advertises.

A caveat the paper glosses over, preserved faithfully here: truncating the
enumeration window (or choosing k too small) yields a relation that is *not*
transitive for pairs further apart than the window.  Purging with a
non-transitive relation can, in principle, break the coverage chain that the
SVS correctness argument relies on.  The paper's guidance — pick k at twice
the buffer size — makes this practically unobservable; the ablation
benchmark ``benchmarks/test_bench_ablation_k.py`` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.message import DataMessage, MessageId
from repro.registry import relations as _relation_registry

__all__ = [
    "ObsolescenceRelation",
    "EmptyRelation",
    "ItemTagging",
    "MessageEnumeration",
    "EnumerationEncoder",
    "KEnumeration",
    "KEnumerationEncoder",
    "ExplicitRelation",
    "check_strict_partial_order",
]


class ObsolescenceRelation:
    """Interface the protocol uses to interrogate obsolescence.

    Implementations decide ``obsoletes`` purely from message identifiers and
    annotations — never from payloads — which is what keeps the protocol
    application-independent.

    ``same_sender_only`` declares that the relation can only relate
    messages of the same sender — true for all of the paper's compact
    representations, and exploited by the protocol to skip coverage scans
    that FIFO channels make redundant.
    """

    same_sender_only = False

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        """True iff ``old ≺ new`` (``new`` makes ``old`` obsolete)."""
        raise NotImplementedError

    def covers(self, new: DataMessage, old: DataMessage) -> bool:
        """True iff ``old ⊑ new`` (equal, or made obsolete by ``new``)."""
        return old.mid == new.mid or self.obsoletes(new, old)


class EmptyRelation(ObsolescenceRelation):
    """The empty relation: nothing is ever obsolete.

    With this relation SVS degenerates to classic View Synchrony — the
    paper's own observation that VS is the special case of SVS (Section
    3.2).  The test suite uses this to check the protocol against the
    classic VS specification.
    """

    same_sender_only = True

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        return False


class ItemTagging(ObsolescenceRelation):
    """Per-item tagging (Section 4.2, "Item Tagging").

    The annotation is the integer tag of the updated item, or ``None`` for
    messages that must never be purged (creations, destructions, events).
    Two messages are related iff they come from the same sender, carry the
    same non-None tag, and the newer has the higher sequence number.

    Strict partial order: irreflexivity and antisymmetry follow from the
    strict ``sn`` comparison; transitivity from equality of tags.
    """

    same_sender_only = True

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        if new.mid.sender != old.mid.sender:
            return False
        if new.annotation is None or old.annotation is None:
            return False
        return new.annotation == old.annotation and old.sn < new.sn


class MessageEnumeration(ObsolescenceRelation):
    """Explicit enumeration (Section 4.2, "Message Enumeration").

    The annotation is a frozenset of :class:`MessageId` listing every
    message the carrier makes obsolete — transitive predecessors included
    (the sender-side :class:`EnumerationEncoder` maintains the closure).
    Unlike the tag and bitmap schemes this representation can express
    cross-item and cross-sender obsolescence.
    """

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        annotation = new.annotation
        if not annotation:
            return False
        return old.mid in annotation and (
            old.mid.sender != new.mid.sender or old.sn < new.sn
        )


class EnumerationEncoder:
    """Sender-side helper producing transitively closed enumeration sets.

    ``window`` optionally truncates the closure to the most recent ``window``
    sequence numbers of the sender — the optimization the paper describes
    ("only the recent messages from the enumeration need to be carried").
    ``window=None`` keeps the exact closure.
    """

    def __init__(self, sender: int, window: Optional[int] = None) -> None:
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive or None: {window}")
        self.sender = sender
        self.window = window
        self._closure: Dict[MessageId, FrozenSet[MessageId]] = {}
        self._next_sn = 0

    def next_mid(self) -> MessageId:
        mid = MessageId(self.sender, self._next_sn)
        self._next_sn += 1
        return mid

    def annotate(
        self, mid: MessageId, direct: Iterable[MessageId]
    ) -> FrozenSet[MessageId]:
        """Compute the annotation for ``mid`` given its direct predecessors.

        The result is the union of the direct predecessors and their own
        closures, truncated to the window.  The closure for ``mid`` is
        remembered so later messages can build on it.
        """
        closed: Set[MessageId] = set()
        for pred in direct:
            if pred == mid:
                raise ValueError("a message cannot obsolete itself")
            closed.add(pred)
            closed.update(self._closure.get(pred, frozenset()))
        if self.window is not None:
            horizon = mid.sn - self.window
            closed = {
                p for p in closed if p.sender != self.sender or p.sn >= horizon
            }
        annotation = frozenset(closed)
        self._closure[mid] = annotation
        self._gc(mid)
        return annotation

    def _gc(self, newest: MessageId) -> None:
        """Forget closures that can no longer influence new annotations."""
        if self.window is None:
            return
        horizon = newest.sn - 2 * self.window
        stale = [m for m in self._closure if m.sender == self.sender and m.sn < horizon]
        for m in stale:
            del self._closure[m]


class KEnumeration(ObsolescenceRelation):
    """k-enumeration bitmaps (Section 4.2, "k-Enumeration").

    The annotation is an integer bitmap over the sender's k immediately
    preceding messages.  Following the paper: ``m ⊑ m'`` iff
    ``m'.sn - k <= m.sn < m'.sn`` and bit ``m'.sn - m.sn`` of ``m'.bm`` is
    set (we store distance d at bit position d-1).
    """

    same_sender_only = True

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        self.k = k

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        if new.mid.sender != old.mid.sender:
            return False
        bitmap = new.annotation
        if not bitmap:
            return False
        distance = new.sn - old.sn
        if distance < 1 or distance > self.k:
            return False
        return bool((bitmap >> (distance - 1)) & 1)


class KEnumerationEncoder:
    """Sender-side bitmap construction with shift/or transitive composition.

    For a new message at sequence number ``sn`` that directly obsoletes the
    message at ``sn - d``, the encoder sets bit ``d-1`` and ORs in that
    predecessor's own bitmap shifted left by ``d`` — so the closure within
    the k-window is carried forward using only shifts and ors, the property
    the paper highlights as making the scheme time- and space-efficient.

    The same shift/or composition implements batch commits: the commit
    message's bitmap is the OR of the shifted bitmaps each update in the
    batch *would* have carried (see :mod:`repro.core.batch`).
    """

    def __init__(self, sender: int, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        self.sender = sender
        self.k = k
        self._bitmaps: Dict[int, int] = {}
        self._next_sn = 0

    @property
    def mask(self) -> int:
        return (1 << self.k) - 1

    def next_mid(self) -> MessageId:
        mid = MessageId(self.sender, self._next_sn)
        self._next_sn += 1
        return mid

    def compose(self, sn: int, direct: Iterable[int]) -> int:
        """Bitmap for the message at ``sn`` with direct predecessors ``direct``.

        Predecessors further back than k positions are silently dropped —
        this is exactly the representation's window truncation.
        """
        bitmap = 0
        for pred_sn in direct:
            if pred_sn >= sn:
                raise ValueError(
                    f"predecessor sn {pred_sn} is not before message sn {sn}"
                )
            distance = sn - pred_sn
            if distance > self.k:
                continue
            bitmap |= 1 << (distance - 1)
            bitmap |= self._bitmaps.get(pred_sn, 0) << distance
        return bitmap & self.mask

    def annotate(self, sn: int, direct: Iterable[int]) -> int:
        """Compose, record, and return the bitmap for the message at ``sn``."""
        bitmap = self.compose(sn, direct)
        self._bitmaps[sn] = bitmap
        self._gc(sn)
        return bitmap

    def record(self, sn: int, bitmap: int) -> None:
        """Record an externally composed bitmap (used by batch commits)."""
        self._bitmaps[sn] = bitmap & self.mask
        self._gc(sn)

    def _gc(self, newest_sn: int) -> None:
        horizon = newest_sn - self.k
        stale = [s for s in self._bitmaps if s < horizon]
        for s in stale:
            del self._bitmaps[s]


class ExplicitRelation(ObsolescenceRelation):
    """A relation given extensionally as a set of (old, new) id pairs.

    Intended for tests: pairs are transitively closed at construction so
    the result is a legitimate strict partial order whenever the input is
    acyclic (a cycle raises ``ValueError``).
    """

    def __init__(self, pairs: Iterable[Tuple[MessageId, MessageId]]) -> None:
        edges: Dict[MessageId, Set[MessageId]] = {}
        for old, new in pairs:
            if old == new:
                raise ValueError(f"self-obsolescence: {old}")
            edges.setdefault(new, set()).add(old)
        # Transitive closure by repeated expansion (inputs are test-sized).
        changed = True
        while changed:
            changed = False
            for new, olds in edges.items():
                extra: Set[MessageId] = set()
                for old in olds:
                    extra.update(edges.get(old, ()))
                extra -= olds
                if extra:
                    olds.update(extra)
                    changed = True
        for new, olds in edges.items():
            if new in olds:
                raise ValueError(f"obsolescence cycle through {new}")
        self._preds: Dict[MessageId, FrozenSet[MessageId]] = {
            new: frozenset(olds) for new, olds in edges.items()
        }

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        return old.mid in self._preds.get(new.mid, frozenset())


def check_strict_partial_order(
    relation: ObsolescenceRelation, messages: List[DataMessage]
) -> List[str]:
    """Check irreflexivity, antisymmetry and transitivity on a finite set.

    Returns a list of human-readable violation descriptions (empty when the
    relation restricted to ``messages`` is a strict partial order).  Used by
    the property-based tests.
    """
    violations: List[str] = []
    for m in messages:
        if relation.obsoletes(m, m):
            violations.append(f"irreflexivity: {m} obsoletes itself")
    for a in messages:
        for b in messages:
            if a.mid == b.mid:
                continue
            ab = relation.obsoletes(b, a)
            ba = relation.obsoletes(a, b)
            if ab and ba:
                violations.append(f"antisymmetry: {a} and {b} obsolete each other")
    for a in messages:
        for b in messages:
            if not relation.obsoletes(b, a):
                continue
            for c in messages:
                if relation.obsoletes(c, b) and not relation.obsoletes(c, a):
                    violations.append(
                        f"transitivity: {a} ≺ {b} ≺ {c} but not {a} ≺ {c}"
                    )
    return violations


# ----------------------------------------------------------------------
# Registry entries: the paper's representations, by name
# ----------------------------------------------------------------------


@_relation_registry.register("empty", aliases=("none", "reliable"))
def _empty_relation() -> EmptyRelation:
    return EmptyRelation()


@_relation_registry.register("item-tagging", aliases=("tagging",))
def _item_tagging() -> ItemTagging:
    return ItemTagging()


@_relation_registry.register(
    "message-enumeration", aliases=("enumeration",)
)
def _message_enumeration() -> MessageEnumeration:
    return MessageEnumeration()


@_relation_registry.register("k-enumeration", aliases=("k-enum",))
def _k_enumeration(k: int = 30) -> KEnumeration:
    return KEnumeration(k)
