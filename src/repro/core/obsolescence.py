"""Obsolescence relations and their wire representations.

The obsolescence relation ``m ≺ m'`` ("m is made obsolete by m'") is the
application-supplied input to Semantic View Synchrony.  It must be an
*irreflexive partial order* — antisymmetric and transitive (Section 3.2).
``m ⊑ m'`` abbreviates ``m = m' or m ≺ m'``.

The paper proposes three representations (Section 4.2), all implemented
here:

* **Item tagging** (:class:`ItemTagging`): each message carries the integer
  tag of the data item it updates; two messages from the same sender with
  the same tag are related, the newer one making the older obsolete.
* **Message enumeration** (:class:`MessageEnumeration`): each message
  explicitly enumerates the identifiers of every (transitive) predecessor it
  makes obsolete.  :class:`EnumerationEncoder` maintains the transitive
  closure on the sender side.
* **k-enumeration** (:class:`KEnumeration`): each message carries a k-bit
  bitmap over its k immediate predecessors in the sender's stream; bit
  ``d-1`` set means "the message d positions back is obsolete".  Transitive
  closure is composed with shift/or (:class:`KEnumerationEncoder`), exactly
  the cheap-operator scheme the paper advertises.

A caveat the paper glosses over, preserved faithfully here: truncating the
enumeration window (or choosing k too small) yields a relation that is *not*
transitive for pairs further apart than the window.  Purging with a
non-transitive relation can, in principle, break the coverage chain that the
SVS correctness argument relies on.  The paper's guidance — pick k at twice
the buffer size — makes this practically unobservable; the ablation
benchmark ``benchmarks/test_bench_ablation_k.py`` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.message import DataMessage, MessageId
from repro.registry import relations as _relation_registry

__all__ = [
    "ObsolescenceRelation",
    "PurgeIndex",
    "EmptyRelation",
    "ItemTagging",
    "MessageEnumeration",
    "EnumerationEncoder",
    "KEnumeration",
    "KEnumerationEncoder",
    "ExplicitRelation",
    "check_strict_partial_order",
]


class PurgeIndex:
    """Incremental index over a set of queued messages, per relation.

    :class:`~repro.core.buffers.DeliveryQueue` keeps one of these in sync
    with its contents (``add``/``discard`` on every append, pop and purge)
    and consults it to answer the two questions the Figure 1 protocol asks
    on the hot path:

    * ``obsoleted_by(new)`` — which indexed messages does ``new`` make
      obsolete?  (the t2/t3 purge; previously an O(n) scan with one
      ``obsoletes`` call per queued message)
    * ``coverer_of(old)`` — does some indexed message make ``old``
      obsolete?  (the t3/flush coverage test)

    Contract: both answers must *exactly* match the naive scan over the
    indexed set using the owning relation's ``obsoletes`` — the property
    test in ``tests/core/test_purge_index.py`` enforces this for every
    registered relation.  ``obsoleted_by`` may return candidates in any
    deterministic order (callers re-establish queue order) but must apply
    the same view filter the queue's purge applies: only pairs tagged with
    the same view are related.  ``coverer_of`` must *not* filter by view —
    mirroring the queue's coverage scan, which tests the relation across
    everything queued.

    ``inert`` declares that both queries are constant (nothing ever
    relates to anything); the queue then skips index maintenance and purge
    calls entirely — the reliable-protocol fast path.
    """

    inert = False

    def add(self, msg: DataMessage) -> None:
        raise NotImplementedError

    def discard(self, msg: DataMessage) -> None:
        raise NotImplementedError

    def obsoleted_by(self, new: DataMessage) -> List[DataMessage]:
        """Indexed messages of ``new``'s view that ``new`` obsoletes."""
        raise NotImplementedError

    def coverer_of(self, old: DataMessage) -> bool:
        """True iff some indexed message makes ``old`` obsolete."""
        raise NotImplementedError

    def add_obsoleted(self, new: DataMessage) -> List[DataMessage]:
        """Fused ``obsoleted_by(new)`` + ``add(new)``.

        The t3 receive path always asks both questions about the same
        message, and for bucketed indexes both resolve to the *same*
        bucket — subclasses override this to look it up once.  Must
        equal ``obsoleted_by`` followed by ``add`` (``new`` can never be
        its own candidate: the relation is irreflexive).
        """
        candidates = self.obsoleted_by(new)
        self.add(new)
        return candidates


class ObsolescenceRelation:
    """Interface the protocol uses to interrogate obsolescence.

    Implementations decide ``obsoletes`` purely from message identifiers and
    annotations — never from payloads — which is what keeps the protocol
    application-independent.

    ``same_sender_only`` declares that the relation can only relate
    messages of the same sender — true for all of the paper's compact
    representations, and exploited by the protocol to skip coverage scans
    that FIFO channels make redundant.
    """

    same_sender_only = False

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        """True iff ``old ≺ new`` (``new`` makes ``old`` obsolete)."""
        raise NotImplementedError

    def covers(self, new: DataMessage, old: DataMessage) -> bool:
        """True iff ``old ⊑ new`` (equal, or made obsolete by ``new``)."""
        return old.mid == new.mid or self.obsoletes(new, old)

    def make_index(self) -> Optional[PurgeIndex]:
        """A fresh :class:`PurgeIndex` for this relation, or ``None``.

        ``None`` (the default) tells the delivery queue to fall back to
        the naive linear purge scan — correct for any relation, including
        third-party ones that predate the index protocol.
        """
        return None


class _EmptyIndex(PurgeIndex):
    """Nothing relates to anything: every purge decision is a constant.

    This turns the reliable-protocol baseline's per-message purge scan —
    pure overhead that can never remove anything — into no calls at all
    (``inert`` lets the queue skip the index entirely).
    """

    __slots__ = ()
    inert = True

    def add(self, msg: DataMessage) -> None:
        pass

    def discard(self, msg: DataMessage) -> None:
        pass

    def obsoleted_by(self, new: DataMessage) -> List[DataMessage]:
        return []

    def coverer_of(self, old: DataMessage) -> bool:
        return False


class EmptyRelation(ObsolescenceRelation):
    """The empty relation: nothing is ever obsolete.

    With this relation SVS degenerates to classic View Synchrony — the
    paper's own observation that VS is the special case of SVS (Section
    3.2).  The test suite uses this to check the protocol against the
    classic VS specification.
    """

    same_sender_only = True

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        return False

    def make_index(self) -> PurgeIndex:
        return _EmptyIndex()


class ItemTagging(ObsolescenceRelation):
    """Per-item tagging (Section 4.2, "Item Tagging").

    The annotation is the integer tag of the updated item, or ``None`` for
    messages that must never be purged (creations, destructions, events).
    Two messages are related iff they come from the same sender, carry the
    same non-None tag, and the newer has the higher sequence number.

    Strict partial order: irreflexivity and antisymmetry follow from the
    strict ``sn`` comparison; transitivity from equality of tags.
    """

    same_sender_only = True

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        if new.mid.sender != old.mid.sender:
            return False
        if new.annotation is None or old.annotation is None:
            return False
        return new.annotation == old.annotation and old.sn < new.sn

    def make_index(self) -> PurgeIndex:
        return _TagIndex()


class _TagIndex(PurgeIndex):
    """Per-(sender, tag) latest-wins buckets for :class:`ItemTagging`.

    A new message relates only to queued messages of its own sender and
    tag, so purge candidates come from one bucket lookup instead of a
    whole-queue scan; the bucket holds the handful of not-yet-consumed
    updates of one item.  Buckets span views (the relation ignores views;
    the *purge* filters them, coverage does not — see :class:`PurgeIndex`).
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        # (sender, tag) -> {sn: message}, insertion == queue order.
        self._buckets: Dict[Tuple[int, Any], Dict[int, DataMessage]] = {}

    def add(self, msg: DataMessage) -> None:
        if msg.annotation is None:
            return
        key = (msg.mid.sender, msg.annotation)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {msg.sn: msg}
        else:
            bucket[msg.sn] = msg

    def discard(self, msg: DataMessage) -> None:
        if msg.annotation is None:
            return
        key = (msg.mid.sender, msg.annotation)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.pop(msg.sn, None)
            if not bucket:
                del self._buckets[key]

    def obsoleted_by(self, new: DataMessage) -> List[DataMessage]:
        if new.annotation is None:
            return []
        bucket = self._buckets.get((new.mid.sender, new.annotation))
        if not bucket:
            return []
        sn, view_id = new.sn, new.view_id
        return [m for m in bucket.values() if m.sn < sn and m.view_id == view_id]

    def coverer_of(self, old: DataMessage) -> bool:
        if old.annotation is None:
            return False
        bucket = self._buckets.get((old.mid.sender, old.annotation))
        if not bucket:
            return False
        sn = old.sn
        return any(s > sn for s in bucket)

    def add_obsoleted(self, new: DataMessage) -> List[DataMessage]:
        if new.annotation is None:
            return []
        key = (new.mid.sender, new.annotation)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {new.sn: new}
            return []
        sn, view_id = new.sn, new.view_id
        out = [m for m in bucket.values() if m.sn < sn and m.view_id == view_id]
        bucket[sn] = new
        return out


class MessageEnumeration(ObsolescenceRelation):
    """Explicit enumeration (Section 4.2, "Message Enumeration").

    The annotation is a frozenset of :class:`MessageId` listing every
    message the carrier makes obsolete — transitive predecessors included
    (the sender-side :class:`EnumerationEncoder` maintains the closure).
    Unlike the tag and bitmap schemes this representation can express
    cross-item and cross-sender obsolescence.
    """

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        annotation = new.annotation
        if not annotation:
            return False
        return old.mid in annotation and (
            old.mid.sender != new.mid.sender or old.sn < new.sn
        )

    def make_index(self) -> PurgeIndex:
        return _EnumIndex()


class _EnumIndex(PurgeIndex):
    """Id and reverse-enumeration maps for :class:`MessageEnumeration`.

    Purge candidates are direct lookups of the new message's enumerated
    ids; coverage inverts the annotation sets so "is some queued message
    enumerating ``old``?" is one dict probe instead of a scan over every
    queued annotation.
    """

    __slots__ = ("_by_mid", "_rev")

    def __init__(self) -> None:
        self._by_mid: Dict[MessageId, DataMessage] = {}
        # target mid -> {enumerating mid: enumerating message}
        self._rev: Dict[MessageId, Dict[MessageId, DataMessage]] = {}

    def add(self, msg: DataMessage) -> None:
        self._by_mid[msg.mid] = msg
        if msg.annotation:
            for target in msg.annotation:
                bucket = self._rev.get(target)
                if bucket is None:
                    self._rev[target] = {msg.mid: msg}
                else:
                    bucket[msg.mid] = msg

    def discard(self, msg: DataMessage) -> None:
        self._by_mid.pop(msg.mid, None)
        if msg.annotation:
            for target in msg.annotation:
                bucket = self._rev.get(target)
                if bucket is not None:
                    bucket.pop(msg.mid, None)
                    if not bucket:
                        del self._rev[target]

    @staticmethod
    def _related(new: DataMessage, old: DataMessage) -> bool:
        return old.mid.sender != new.mid.sender or old.sn < new.sn

    def obsoleted_by(self, new: DataMessage) -> List[DataMessage]:
        if not new.annotation:
            return []
        by_mid = self._by_mid
        view_id = new.view_id
        out = []
        for target in new.annotation:
            old = by_mid.get(target)
            if old is not None and old.view_id == view_id and self._related(new, old):
                out.append(old)
        return out

    def coverer_of(self, old: DataMessage) -> bool:
        bucket = self._rev.get(old.mid)
        if not bucket:
            return False
        return any(self._related(new, old) for new in bucket.values())


class EnumerationEncoder:
    """Sender-side helper producing transitively closed enumeration sets.

    ``window`` optionally truncates the closure to the most recent ``window``
    sequence numbers of the sender — the optimization the paper describes
    ("only the recent messages from the enumeration need to be carried").
    ``window=None`` keeps the exact closure.
    """

    def __init__(self, sender: int, window: Optional[int] = None) -> None:
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive or None: {window}")
        self.sender = sender
        self.window = window
        self._closure: Dict[MessageId, FrozenSet[MessageId]] = {}
        self._next_sn = 0

    def next_mid(self) -> MessageId:
        mid = MessageId(self.sender, self._next_sn)
        self._next_sn += 1
        return mid

    def annotate(
        self, mid: MessageId, direct: Iterable[MessageId]
    ) -> FrozenSet[MessageId]:
        """Compute the annotation for ``mid`` given its direct predecessors.

        The result is the union of the direct predecessors and their own
        closures, truncated to the window.  The closure for ``mid`` is
        remembered so later messages can build on it.
        """
        closed: Set[MessageId] = set()
        for pred in direct:
            if pred == mid:
                raise ValueError("a message cannot obsolete itself")
            closed.add(pred)
            closed.update(self._closure.get(pred, frozenset()))
        if self.window is not None:
            horizon = mid.sn - self.window
            closed = {
                p for p in closed if p.sender != self.sender or p.sn >= horizon
            }
        annotation = frozenset(closed)
        self._closure[mid] = annotation
        self._gc(mid)
        return annotation

    def _gc(self, newest: MessageId) -> None:
        """Forget closures that can no longer influence new annotations."""
        if self.window is None:
            return
        horizon = newest.sn - 2 * self.window
        stale = [m for m in self._closure if m.sender == self.sender and m.sn < horizon]
        for m in stale:
            del self._closure[m]


class KEnumeration(ObsolescenceRelation):
    """k-enumeration bitmaps (Section 4.2, "k-Enumeration").

    The annotation is an integer bitmap over the sender's k immediately
    preceding messages.  Following the paper: ``m ⊑ m'`` iff
    ``m'.sn - k <= m.sn < m'.sn`` and bit ``m'.sn - m.sn`` of ``m'.bm`` is
    set (we store distance d at bit position d-1).
    """

    same_sender_only = True

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        self.k = k

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        if new.mid.sender != old.mid.sender:
            return False
        bitmap = new.annotation
        if not bitmap:
            return False
        distance = new.sn - old.sn
        if distance < 1 or distance > self.k:
            return False
        return bool((bitmap >> (distance - 1)) & 1)

    def make_index(self) -> PurgeIndex:
        return _KEnumIndex(self.k)


class _KEnumIndex(PurgeIndex):
    """Per-sender sequence-number maps for :class:`KEnumeration`.

    The bitmap of a new message names its purge victims by *distance*, so
    candidates are direct ``sn - d`` probes over the set bits — O(popcount)
    instead of an O(n) scan.  Coverage probes whichever is smaller: the
    sender's queued messages or the k-window above ``old.sn``.
    """

    __slots__ = ("k", "_mask", "_by_sender")

    def __init__(self, k: int) -> None:
        self.k = k
        self._mask = (1 << k) - 1
        # sender -> {sn: message}; sns are globally unique per sender.
        self._by_sender: Dict[int, Dict[int, DataMessage]] = {}

    def add(self, msg: DataMessage) -> None:
        sender = msg.mid.sender
        bucket = self._by_sender.get(sender)
        if bucket is None:
            self._by_sender[sender] = {msg.sn: msg}
        else:
            bucket[msg.sn] = msg

    def discard(self, msg: DataMessage) -> None:
        bucket = self._by_sender.get(msg.mid.sender)
        if bucket is not None:
            bucket.pop(msg.sn, None)
            if not bucket:
                del self._by_sender[msg.mid.sender]

    def obsoleted_by(self, new: DataMessage) -> List[DataMessage]:
        bitmap = new.annotation
        if not bitmap:
            return []
        bucket = self._by_sender.get(new.mid.sender)
        if not bucket:
            return []
        bitmap &= self._mask  # bits beyond k are outside the relation
        sn, view_id = new.sn, new.view_id
        out = []
        while bitmap:
            low = bitmap & -bitmap
            bitmap ^= low
            old = bucket.get(sn - low.bit_length())
            if old is not None and old.view_id == view_id:
                out.append(old)
        return out

    def coverer_of(self, old: DataMessage) -> bool:
        bucket = self._by_sender.get(old.mid.sender)
        if not bucket:
            return False
        sn, k = old.sn, self.k
        if len(bucket) <= k:
            for s, new in bucket.items():
                d = s - sn
                if 1 <= d <= k and new.annotation and (new.annotation >> (d - 1)) & 1:
                    return True
            return False
        for d in range(1, k + 1):
            new = bucket.get(sn + d)
            if new is not None and new.annotation and (new.annotation >> (d - 1)) & 1:
                return True
        return False


class KEnumerationEncoder:
    """Sender-side bitmap construction with shift/or transitive composition.

    For a new message at sequence number ``sn`` that directly obsoletes the
    message at ``sn - d``, the encoder sets bit ``d-1`` and ORs in that
    predecessor's own bitmap shifted left by ``d`` — so the closure within
    the k-window is carried forward using only shifts and ors, the property
    the paper highlights as making the scheme time- and space-efficient.

    The same shift/or composition implements batch commits: the commit
    message's bitmap is the OR of the shifted bitmaps each update in the
    batch *would* have carried (see :mod:`repro.core.batch`).
    """

    def __init__(self, sender: int, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        self.sender = sender
        self.k = k
        self._bitmaps: Dict[int, int] = {}
        self._next_sn = 0

    @property
    def mask(self) -> int:
        return (1 << self.k) - 1

    def next_mid(self) -> MessageId:
        mid = MessageId(self.sender, self._next_sn)
        self._next_sn += 1
        return mid

    def compose(self, sn: int, direct: Iterable[int]) -> int:
        """Bitmap for the message at ``sn`` with direct predecessors ``direct``.

        Predecessors further back than k positions are silently dropped —
        this is exactly the representation's window truncation.
        """
        bitmap = 0
        for pred_sn in direct:
            if pred_sn >= sn:
                raise ValueError(
                    f"predecessor sn {pred_sn} is not before message sn {sn}"
                )
            distance = sn - pred_sn
            if distance > self.k:
                continue
            bitmap |= 1 << (distance - 1)
            bitmap |= self._bitmaps.get(pred_sn, 0) << distance
        return bitmap & self.mask

    def annotate(self, sn: int, direct: Iterable[int]) -> int:
        """Compose, record, and return the bitmap for the message at ``sn``."""
        bitmap = self.compose(sn, direct)
        self._bitmaps[sn] = bitmap
        self._gc(sn)
        return bitmap

    def record(self, sn: int, bitmap: int) -> None:
        """Record an externally composed bitmap (used by batch commits)."""
        self._bitmaps[sn] = bitmap & self.mask
        self._gc(sn)

    def _gc(self, newest_sn: int) -> None:
        horizon = newest_sn - self.k
        stale = [s for s in self._bitmaps if s < horizon]
        for s in stale:
            del self._bitmaps[s]


class ExplicitRelation(ObsolescenceRelation):
    """A relation given extensionally as a set of (old, new) id pairs.

    Intended for tests: pairs are transitively closed at construction so
    the result is a legitimate strict partial order whenever the input is
    acyclic (a cycle raises ``ValueError``).
    """

    def __init__(self, pairs: Iterable[Tuple[MessageId, MessageId]]) -> None:
        edges: Dict[MessageId, Set[MessageId]] = {}
        for old, new in pairs:
            if old == new:
                raise ValueError(f"self-obsolescence: {old}")
            edges.setdefault(new, set()).add(old)
        # Transitive closure by repeated expansion (inputs are test-sized).
        changed = True
        while changed:
            changed = False
            for new, olds in edges.items():
                extra: Set[MessageId] = set()
                for old in olds:
                    extra.update(edges.get(old, ()))
                extra -= olds
                if extra:
                    olds.update(extra)
                    changed = True
        for new, olds in edges.items():
            if new in olds:
                raise ValueError(f"obsolescence cycle through {new}")
        self._preds: Dict[MessageId, FrozenSet[MessageId]] = {
            new: frozenset(olds) for new, olds in edges.items()
        }

    def obsoletes(self, new: DataMessage, old: DataMessage) -> bool:
        return old.mid in self._preds.get(new.mid, frozenset())


def check_strict_partial_order(
    relation: ObsolescenceRelation, messages: List[DataMessage]
) -> List[str]:
    """Check irreflexivity, antisymmetry and transitivity on a finite set.

    Returns a list of human-readable violation descriptions (empty when the
    relation restricted to ``messages`` is a strict partial order).  Used by
    the property-based tests.
    """
    violations: List[str] = []
    for m in messages:
        if relation.obsoletes(m, m):
            violations.append(f"irreflexivity: {m} obsoletes itself")
    for a in messages:
        for b in messages:
            if a.mid == b.mid:
                continue
            ab = relation.obsoletes(b, a)
            ba = relation.obsoletes(a, b)
            if ab and ba:
                violations.append(f"antisymmetry: {a} and {b} obsolete each other")
    for a in messages:
        for b in messages:
            if not relation.obsoletes(b, a):
                continue
            for c in messages:
                if relation.obsoletes(c, b) and not relation.obsoletes(c, a):
                    violations.append(
                        f"transitivity: {a} ≺ {b} ≺ {c} but not {a} ≺ {c}"
                    )
    return violations


# ----------------------------------------------------------------------
# Registry entries: the paper's representations, by name
# ----------------------------------------------------------------------


@_relation_registry.register("empty", aliases=("none", "reliable"))
def _empty_relation() -> EmptyRelation:
    return EmptyRelation()


@_relation_registry.register("item-tagging", aliases=("tagging",))
def _item_tagging() -> ItemTagging:
    return ItemTagging()


@_relation_registry.register(
    "message-enumeration", aliases=("enumeration",)
)
def _message_enumeration() -> MessageEnumeration:
    return MessageEnumeration()


@_relation_registry.register("k-enumeration", aliases=("k-enum",))
def _k_enumeration(k: int = 30) -> KEnumeration:
    return KEnumeration(k)
