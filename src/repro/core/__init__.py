"""Core SVS library: messages, obsolescence, buffers, batches, protocol, spec."""

from repro.core.batch import BatchAssembler, BatchEncoder, BatchMessagePayload, ItemUpdate
from repro.core.buffers import DeliveryQueue, QueueFullError, QueueStats
from repro.core.message import (
    DataMessage,
    Envelope,
    InitMessage,
    MessageId,
    PredMessage,
    View,
    ViewDelivery,
)
from repro.core.obsolescence import (
    EmptyRelation,
    EnumerationEncoder,
    ExplicitRelation,
    ItemTagging,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    ObsolescenceRelation,
    check_strict_partial_order,
)
from repro.core.spec import (
    HistoryRecorder,
    ProcessHistory,
    check_all,
    check_classic_vs,
    check_fifo_sr,
    check_integrity,
    check_svs,
    check_view_agreement,
)
from repro.core.svs import SVS_STREAM, SVSListeners, SVSProcess

__all__ = [
    "MessageId",
    "View",
    "DataMessage",
    "ViewDelivery",
    "InitMessage",
    "PredMessage",
    "Envelope",
    "ObsolescenceRelation",
    "EmptyRelation",
    "ItemTagging",
    "MessageEnumeration",
    "EnumerationEncoder",
    "KEnumeration",
    "KEnumerationEncoder",
    "ExplicitRelation",
    "check_strict_partial_order",
    "DeliveryQueue",
    "QueueFullError",
    "QueueStats",
    "ItemUpdate",
    "BatchMessagePayload",
    "BatchEncoder",
    "BatchAssembler",
    "SVSProcess",
    "SVSListeners",
    "SVS_STREAM",
    "HistoryRecorder",
    "ProcessHistory",
    "check_svs",
    "check_fifo_sr",
    "check_integrity",
    "check_view_agreement",
    "check_classic_vs",
    "check_all",
]
