"""Multi-item (composite) updates: batches terminated by a commit.

Section 4.1 of the paper: a composite update touching several items cannot
usefully be related to other composite updates (only superset updates would
qualify), so it is *split* into a batch of single-item update messages
terminated by a commit message.  Receivers buffer a batch's updates and
apply them atomically when the commit arrives; FIFO order guarantees the
commit trails its batch.

Obsolescence rules (Figure 2):

* interior update messages never make anything obsolete — otherwise a
  partially purged earlier batch could be applied non-atomically;
* the **commit** message carries the batch's entire obsolescence: it makes
  obsolete every earlier update (from an already *committed* batch) that an
  update in its batch supersedes;
* updates become obsolete only via later commits; commits themselves are
  never obsolete (they are the atomicity anchors).

The paper notes the commit role can be played by the batch's last message;
:class:`BatchEncoder` supports both styles (``commit_piggybacked``).

The bitmap composition uses exactly the shift/or operators the paper
advertises for k-enumeration: the commit's bitmap is the OR of the bitmaps
each update *would* have carried, shifted by the update's distance from the
commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.message import DataMessage, MessageId
from repro.core.obsolescence import KEnumerationEncoder

__all__ = [
    "ItemUpdate",
    "BatchMessagePayload",
    "BatchEncoder",
    "BatchAssembler",
]


@dataclass(frozen=True)
class ItemUpdate:
    """One item's new value inside a composite update."""

    item: int
    value: Any


@dataclass(frozen=True)
class BatchMessagePayload:
    """Payload of a batch-encoded data message.

    ``kind`` is ``"update"`` or ``"commit"``; a piggybacked commit carries
    both an update and ``commit=True``.  ``batch_id`` groups the messages of
    one composite update for the receiving assembler.
    """

    batch_id: int
    update: Optional[ItemUpdate]
    commit: bool

    @property
    def is_update(self) -> bool:
        return self.update is not None


class BatchEncoder:
    """Sender-side batch splitter and obsolescence composer.

    Wraps a :class:`~repro.core.obsolescence.KEnumerationEncoder`; every
    emitted message consumes one sequence number of the sender's stream.
    The encoder tracks, per item, the sequence number of the latest
    *committed* update so a commit can obsolete superseded updates from
    earlier batches — and only from earlier (committed) batches, never from
    its own.
    """

    def __init__(
        self,
        encoder: KEnumerationEncoder,
        view_id_source: Any = None,
        commit_piggybacked: bool = True,
    ) -> None:
        self._encoder = encoder
        self._view_id_source = view_id_source
        self.commit_piggybacked = commit_piggybacked
        # item -> (sn, message was itself a commit).  Commit messages are
        # never valid obsolescence targets: purging a (piggybacked) commit
        # would strand its batch's other updates uncommitted — a torn
        # batch.  The commit is the atomicity anchor and must survive.
        self._last_committed_sn: Dict[int, Tuple[int, bool]] = {}
        self._next_batch = 0

    @property
    def sender(self) -> int:
        return self._encoder.sender

    def _view_id(self) -> int:
        if self._view_id_source is None:
            return 0
        if callable(self._view_id_source):
            return self._view_id_source()
        return int(self._view_id_source)

    def encode_batch(self, updates: Sequence[ItemUpdate]) -> List[DataMessage]:
        """Split a composite update into annotated data messages.

        The returned messages must be multicast in order.  Interior updates
        carry an empty bitmap; the commit carries the composed bitmap that
        obsoletes each superseded prior-batch update of the batch's items.
        """
        if not updates:
            raise ValueError("a batch must contain at least one update")
        batch_id = self._next_batch
        self._next_batch += 1
        view_id = self._view_id()

        messages: List[DataMessage] = []
        pending: List[Tuple[int, ItemUpdate]] = []  # (sn, update)

        body = updates if self.commit_piggybacked else list(updates) + [None]
        last_index = len(body) - 1
        for index, update in enumerate(body):
            mid = self._encoder.next_mid()
            is_commit = index == last_index
            if is_commit:
                annotation = self._commit_bitmap(mid.sn, pending, update)
            else:
                annotation = 0
                self._encoder.record(mid.sn, 0)
            if update is not None:
                pending.append((mid.sn, update))
            payload = BatchMessagePayload(
                batch_id=batch_id, update=update, commit=is_commit
            )
            messages.append(
                DataMessage(
                    mid=mid, view_id=view_id, payload=payload, annotation=annotation
                )
            )
        # The batch is now committed: its updates become the latest
        # committed values of their items.  The final entry of ``pending``
        # is the piggybacked commit when that style is in use.
        commit_sn = messages[-1].sn
        for sn, update in pending:
            self._last_committed_sn[update.item] = (sn, sn == commit_sn)
        return messages

    def _commit_bitmap(
        self,
        commit_sn: int,
        pending: Sequence[Tuple[int, ItemUpdate]],
        piggybacked: Optional[ItemUpdate],
    ) -> int:
        """Compose the commit's bitmap with shift/or.

        For every item updated by this batch, the commit obsoletes that
        item's latest committed prior update (if within the k window) —
        which, through the encoder's closure composition, also covers the
        update chain behind it.  Prior updates that were themselves commit
        messages are exempt (see ``_last_committed_sn``).
        """
        batch_updates = list(pending)
        if piggybacked is not None:
            batch_updates.append((commit_sn, piggybacked))
        direct: List[int] = []
        for _sn, update in batch_updates:
            prior = self._last_committed_sn.get(update.item)
            if prior is not None and not prior[1]:
                direct.append(prior[0])
        return self._encoder.annotate(commit_sn, direct)


class BatchAssembler:
    """Receiver-side reconstruction of atomic composite updates.

    Feed delivered batch messages in delivery order; committed batches come
    out whole.  A batch whose interior updates were partially purged (which
    the encoding rules make impossible for *committed* batches from a
    correct sender — only whole earlier batches are superseded) would apply
    only the updates that survived; the assembler exposes what it saw so
    tests can assert the all-or-nothing property.
    """

    def __init__(self) -> None:
        self._open: Dict[Tuple[int, int], List[ItemUpdate]] = {}
        self.committed: List[Tuple[int, List[ItemUpdate]]] = []

    def feed(self, msg: DataMessage) -> Optional[List[ItemUpdate]]:
        """Process one delivered message.

        Returns the batch's update list when ``msg`` commits a batch, else
        ``None``.
        """
        payload = msg.payload
        if not isinstance(payload, BatchMessagePayload):
            raise TypeError(f"not a batch message: {msg!r}")
        key = (msg.sender, payload.batch_id)
        bucket = self._open.setdefault(key, [])
        if payload.update is not None:
            bucket.append(payload.update)
        if not payload.commit:
            return None
        del self._open[key]
        self.committed.append((payload.batch_id, bucket))
        return bucket

    @property
    def open_batches(self) -> int:
        """Number of batches begun but not yet committed."""
        return len(self._open)
