"""Message and view types shared by the whole stack.

The protocol of Figure 1 manipulates four kinds of messages:

* ``[DATA, v, d]`` — application payloads tagged with the view they were
  multicast in (:class:`DataMessage`);
* ``[VIEW, v]`` — the control message announcing a new view through the
  delivery queue (:class:`ViewDelivery`);
* ``[INIT, v, l]`` — view-change initiation (:class:`InitMessage`);
* ``[PRED, v, P]`` — the per-process set of messages accepted for delivery
  in the closing view (:class:`PredMessage`).

One extension beyond Figure 1 supports process *rejoin* (the churn
scenarios of :mod:`repro.faults`): ``[WELCOME, v]``
(:class:`WelcomeMessage`) transfers the newly installed view to a member
that was added through the ``join`` parameter of a view change and
therefore did not participate in closing the previous view.

Messages are uniquely identified by ``(sender, sn)`` where ``sn`` is the
per-sender sequence number assigned at multicast time — this is the
identifier space every obsolescence representation builds on
(Section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, NamedTuple, Optional, Tuple

__all__ = [
    "MessageId",
    "View",
    "DataMessage",
    "ViewDelivery",
    "InitMessage",
    "PredMessage",
    "WelcomeMessage",
    "Envelope",
]


class MessageId(NamedTuple):
    """Globally unique message identifier: sender pid + per-sender seqno.

    A named tuple rather than a dataclass: ids are hashed and compared on
    every queue, index and delivered-log operation, so they get C-level
    ``__hash__``/``__eq__``/``__lt__``.  Ordering stays (sender, sn).
    """

    sender: int
    sn: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.sender}.{self.sn}"


@dataclass(frozen=True, slots=True)
class View:
    """A group view: numeric epoch plus the member set.

    Views are totally ordered by ``vid``; the initial view has ``vid`` 0 by
    convention.  Membership is a frozenset so views are hashable and can be
    exchanged in protocol messages and consensus proposals.
    """

    vid: int
    members: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.vid < 0:
            raise ValueError(f"negative view id: {self.vid}")
        object.__setattr__(self, "members", frozenset(self.members))

    def __contains__(self, pid: int) -> bool:
        return pid in self.members

    def __len__(self) -> int:
        return len(self.members)

    @property
    def sorted_members(self) -> Tuple[int, ...]:
        return tuple(sorted(self.members))

    def majority(self) -> int:
        """Smallest number of members that constitutes a majority."""
        return len(self.members) // 2 + 1

    def without(self, pids: FrozenSet[int]) -> "View":
        return View(self.vid, self.members - frozenset(pids))

    def __repr__(self) -> str:
        return f"View({self.vid}, {{{', '.join(map(str, self.sorted_members))}}})"


@dataclass(frozen=True, slots=True)
class DataMessage:
    """An application data message, ``[DATA, v, d]`` in Figure 1.

    ``annotation`` carries the encoded obsolescence information supplied by
    the application at multicast time (a tag, an enumeration set, or a
    k-enumeration bitmap — interpreted by the configured
    :class:`~repro.core.obsolescence.ObsolescenceRelation`).  The protocol
    itself never inspects payloads; it only consults the relation, which is
    what makes SVS application-independent (Section 3.2).
    """

    mid: MessageId
    view_id: int
    payload: Any = None
    annotation: Any = None

    @property
    def sender(self) -> int:
        return self.mid.sender

    @property
    def sn(self) -> int:
        return self.mid.sn

    def __repr__(self) -> str:
        return f"Data({self.mid}@v{self.view_id})"


@dataclass(frozen=True, slots=True)
class ViewDelivery:
    """The ``[VIEW, v]`` control message placed in the delivery queue.

    Applications observe membership changes by dequeuing these; they are
    never purged and never counted as data.
    """

    view: View

    def __repr__(self) -> str:
        return f"ViewDelivery({self.view!r})"


@dataclass(frozen=True, slots=True)
class InitMessage:
    """``[INIT, v, l]``: start a view change for view ``view_id``.

    ``leave`` is the set of processes that asked to leave (the ``l``
    parameter of the trigger in Figure 1 t4).  ``join`` is the rejoin
    extension: processes to *add* to the next view; they take no part in
    closing the current one and learn the outcome through a
    :class:`WelcomeMessage`.
    """

    view_id: int
    leave: FrozenSet[int] = frozenset()
    join: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "leave", frozenset(self.leave))
        object.__setattr__(self, "join", frozenset(self.join))


@dataclass(frozen=True, slots=True)
class WelcomeMessage:
    """``[WELCOME, v]``: state transfer to a member joining at view ``view``.

    Sent by every surviving member right after installing a view that
    contains joiners; the joiner installs the view carried by the first
    WELCOME it receives and ignores the rest (so the transfer survives
    lossy links as long as one copy arrives).
    """

    view: View


@dataclass(frozen=True, slots=True)
class PredMessage:
    """``[PRED, v, P]``: the sender's accepted-message set for view ``view_id``.

    ``messages`` is the ordered tuple of :class:`DataMessage` the sender has
    accepted for delivery (``delivered`` plus ``to-deliver``) in the closing
    view — Figure 1 t5.
    """

    view_id: int
    messages: Tuple[DataMessage, ...]


@dataclass(frozen=True, slots=True)
class Envelope:
    """Typed wrapper multiplexing sub-protocols over one network channel.

    ``stream`` identifies the component ("svs", "consensus", "fd", ...);
    ``instance`` optionally identifies a protocol instance within the stream
    (e.g. the consensus instance for a particular view change).
    """

    stream: str
    body: Any
    instance: Optional[Any] = None
