"""Purgeable FIFO delivery queues and bounded protocol buffers.

The protocol of Figure 1 keeps two ordered message sets per process —
``to-deliver`` and ``delivered`` — and applies the ``purge`` function to
``to-deliver`` whenever new information arrives.  :class:`DeliveryQueue`
implements that structure: a FIFO queue of data and view messages with
semantic purging against a configured
:class:`~repro.core.obsolescence.ObsolescenceRelation`.

Purge semantics (Figure 1)::

    while ∃ m=[DATA,v,d], m'=[DATA,v',d'] ∈ S : (v = v') ∧ (m ≺ m')
        do remove(S, m)

For a transitive relation the fixpoint equals a single simultaneous pass:
remove every message dominated by some member of the *original* set (any
dominator removed in the loop is itself dominated by a surviving maximal
element that, by transitivity, also dominates the removed message).  We
implement the single pass because it is deterministic; for non-transitive
relations (over-truncated enumerations) the fixpoint loop would be
order-dependent, which is exactly the hazard documented in
:mod:`repro.core.obsolescence`.

View messages (:class:`~repro.core.message.ViewDelivery`) are never purged
and never dominate anything; only DATA messages *tagged with the same view*
participate in purging, as in the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Union

from repro.core.message import DataMessage, MessageId, ViewDelivery
from repro.core.obsolescence import ObsolescenceRelation

__all__ = ["QueueFullError", "DeliveryQueue", "QueueStats"]

QueueEntry = Union[DataMessage, ViewDelivery]


class QueueFullError(RuntimeError):
    """Raised by :meth:`DeliveryQueue.append` when a bounded queue is full."""


class QueueStats:
    """Lifetime counters for one queue (used by experiments and tests)."""

    __slots__ = ("appended", "purged", "popped", "rejected", "max_len")

    def __init__(self) -> None:
        self.appended = 0
        self.purged = 0
        self.popped = 0
        self.rejected = 0
        self.max_len = 0

    def purge_ratio(self) -> float:
        """Fraction of appended data messages later removed by purging."""
        if self.appended == 0:
            return 0.0
        return self.purged / self.appended

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueueStats(appended={self.appended}, purged={self.purged}, "
            f"popped={self.popped}, rejected={self.rejected}, max={self.max_len})"
        )


class DeliveryQueue:
    """FIFO queue with semantic purging and optional capacity bound.

    ``capacity=None`` gives the unbounded queue used by the raw protocol;
    the throughput model and the GCS layer use bounded queues, where
    exhaustion triggers flow control (Section 5.3: "when its delivery queue
    fills up, a node ceases to accept further messages").
    """

    def __init__(
        self,
        relation: ObsolescenceRelation,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self.relation = relation
        self.capacity = capacity
        self._items: List[QueueEntry] = []
        self._mids: Set[MessageId] = set()
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def contains_mid(self, mid: MessageId) -> bool:
        return mid in self._mids

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def free_space(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    def data_messages(self) -> List[DataMessage]:
        return [m for m in self._items if isinstance(m, DataMessage)]

    def data_in_view(self, view_id: int) -> List[DataMessage]:
        return [
            m
            for m in self._items
            if isinstance(m, DataMessage) and m.view_id == view_id
        ]

    def peek(self) -> Optional[QueueEntry]:
        return self._items[0] if self._items else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, msg: QueueEntry) -> None:
        """Append to the tail; raises :class:`QueueFullError` when bounded
        and full.  Does not purge — callers follow Figure 1 and invoke
        :meth:`purge` (or use :meth:`try_append`)."""
        if self.is_full:
            self.stats.rejected += 1
            raise QueueFullError(f"queue at capacity {self.capacity}")
        self._items.append(msg)
        if isinstance(msg, DataMessage):
            self._mids.add(msg.mid)
        self.stats.appended += 1
        if len(self._items) > self.stats.max_len:
            self.stats.max_len = len(self._items)

    def try_append(self, msg: QueueEntry) -> bool:
        """Purge-then-append for bounded queues.

        A new data message may free its own slot by making queued messages
        obsolete — the mechanism by which a *full* buffer keeps absorbing
        traffic under SVS.  Returns False (leaving the queue unchanged
        except for the purge) when no space can be found.
        """
        if isinstance(msg, DataMessage):
            self.purge_by(msg)
        if self.is_full:
            self.stats.rejected += 1
            return False
        self.append(msg)
        return True

    def pop(self) -> QueueEntry:
        """Remove and return the head (Figure 1 t1: removeFirst)."""
        if not self._items:
            raise IndexError("pop from empty DeliveryQueue")
        msg = self._items.pop(0)
        if isinstance(msg, DataMessage):
            self._mids.discard(msg.mid)
        self.stats.popped += 1
        return msg

    # ------------------------------------------------------------------
    # Purging
    # ------------------------------------------------------------------

    def purge(self) -> List[DataMessage]:
        """Remove every same-view data message dominated by a queued one.

        Returns the purged messages (useful for accounting and tests).
        """
        data = self.data_messages()
        if len(data) < 2:
            return []
        removed = [
            old
            for old in data
            if any(
                new.view_id == old.view_id and self.relation.obsoletes(new, old)
                for new in data
                if new.mid != old.mid
            )
        ]
        if removed:
            self._remove_all(removed)
        return removed

    def purge_by(self, new: DataMessage) -> List[DataMessage]:
        """Remove queued same-view data messages that ``new`` makes obsolete.

        ``new`` need not be in the queue — this is the fast path used when
        a single message arrives (appending it and running the full
        :meth:`purge` is equivalent for transitive relations but O(n²)).
        """
        removed = [
            old
            for old in self._items
            if isinstance(old, DataMessage)
            and old.view_id == new.view_id
            and old.mid != new.mid
            and self.relation.obsoletes(new, old)
        ]
        if removed:
            self._remove_all(removed)
        return removed

    def covered(self, msg: DataMessage) -> bool:
        """True iff some queued message m' satisfies ``msg ⊑ m'``.

        This is the Figure 1 t3 acceptance test (applied alongside the
        delivered log by the protocol).
        """
        if msg.mid in self._mids:
            return True
        return any(
            isinstance(other, DataMessage) and self.relation.covers(other, msg)
            for other in self._items
        )

    def _remove_all(self, removed: Iterable[DataMessage]) -> None:
        doomed = {m.mid for m in removed}
        self._items = [
            m
            for m in self._items
            if not (isinstance(m, DataMessage) and m.mid in doomed)
        ]
        self._mids -= doomed
        self.stats.purged += len(doomed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "∞" if self.capacity is None else str(self.capacity)
        return f"DeliveryQueue(len={len(self._items)}/{cap})"
