"""Purgeable FIFO delivery queues and bounded protocol buffers.

The protocol of Figure 1 keeps two ordered message sets per process —
``to-deliver`` and ``delivered`` — and applies the ``purge`` function to
``to-deliver`` whenever new information arrives.  :class:`DeliveryQueue`
implements that structure: a FIFO queue of data and view messages with
semantic purging against a configured
:class:`~repro.core.obsolescence.ObsolescenceRelation`.

Purge semantics (Figure 1)::

    while ∃ m=[DATA,v,d], m'=[DATA,v',d'] ∈ S : (v = v') ∧ (m ≺ m')
        do remove(S, m)

For a transitive relation the fixpoint equals a single simultaneous pass:
remove every message dominated by some member of the *original* set (any
dominator removed in the loop is itself dominated by a surviving maximal
element that, by transitivity, also dominates the removed message).  We
implement the single pass because it is deterministic; for non-transitive
relations (over-truncated enumerations) the fixpoint loop would be
order-dependent, which is exactly the hazard documented in
:mod:`repro.core.obsolescence`.

View messages (:class:`~repro.core.message.ViewDelivery`) are never purged
and never dominate anything; only DATA messages *tagged with the same view*
participate in purging, as in the paper.

Kernel v2 changed the queue's two hot paths:

* **Indexed purging** — when the relation provides an obsolescence index
  (:meth:`~repro.core.obsolescence.ObsolescenceRelation.make_index`),
  purge victims resolve by per-key lookup instead of a linear
  ``obsoletes`` scan.  Relations without an index — and queues built with
  ``use_index=False`` — fall back to the naive scan, which remains the
  behavioural reference (``tests/core/test_purge_index.py`` asserts the
  two paths decide identically).
* **Lazy removal** — purged entries are tombstoned (their ids join
  ``_doomed``) and reclaimed when the head passes them or on periodic
  compaction, so purging one message out of an n-message backlog is O(1)
  amortised instead of an O(n) rebuild.  All observable state (length,
  iteration, ``contains_mid``, stats) reflects live entries only.

``purge``/``purge_by`` return the removed messages sorted by
``(sender, sn)`` — identical to arrival order for the per-sender FIFO
streams the protocol produces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Union

from repro.core.message import DataMessage, MessageId, ViewDelivery
from repro.core.obsolescence import ObsolescenceRelation

__all__ = ["QueueFullError", "DeliveryQueue", "QueueStats"]

QueueEntry = Union[DataMessage, ViewDelivery]


class QueueFullError(RuntimeError):
    """Raised by :meth:`DeliveryQueue.append` when a bounded queue is full."""


class QueueStats:
    """Lifetime counters for one queue (used by experiments and tests)."""

    __slots__ = ("appended", "purged", "popped", "rejected", "max_len")

    def __init__(self) -> None:
        self.appended = 0
        self.purged = 0
        self.popped = 0
        self.rejected = 0
        self.max_len = 0

    def purge_ratio(self) -> float:
        """Fraction of appended data messages later removed by purging."""
        if self.appended == 0:
            return 0.0
        return self.purged / self.appended

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueueStats(appended={self.appended}, purged={self.purged}, "
            f"popped={self.popped}, rejected={self.rejected}, max={self.max_len})"
        )


class DeliveryQueue:
    """FIFO queue with semantic purging and optional capacity bound.

    ``capacity=None`` gives the unbounded queue used by the raw protocol;
    the throughput model and the GCS layer use bounded queues, where
    exhaustion triggers flow control (Section 5.3: "when its delivery queue
    fills up, a node ceases to accept further messages").
    """

    __slots__ = (
        "relation", "capacity", "_items", "_mids", "_doomed", "_size",
        "_index", "_inert", "_live_index", "stats",
    )

    def __init__(
        self,
        relation: ObsolescenceRelation,
        capacity: Optional[int] = None,
        use_index: bool = True,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self.relation = relation
        self.capacity = capacity
        # ``_items`` is physical storage and may contain tombstoned
        # entries (ids in ``_doomed``); ``_size`` counts live entries.
        self._items: List[QueueEntry] = []
        self._doomed: Set[MessageId] = set()
        self._size = 0
        self._mids: Set[MessageId] = set()
        # ``use_index=False`` forces the naive purge scans — the reference
        # path the property tests compare the index against.  An *inert*
        # index (empty relation) short-circuits purging altogether.
        self._index = relation.make_index() if use_index else None
        self._inert = self._index is not None and self._index.inert
        # The index consulted on the hot path: None both for "no index"
        # (naive fallback) and "inert" (purging impossible); ``_inert``
        # disambiguates the two.
        self._live_index = None if self._inert else self._index
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Basic container behaviour (live entries only)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[QueueEntry]:
        if not self._doomed:
            return iter(self._items)
        doomed = self._doomed
        return iter(
            [
                m
                for m in self._items
                if not (isinstance(m, DataMessage) and m.mid in doomed)
            ]
        )

    def __bool__(self) -> bool:
        return self._size > 0

    def contains_mid(self, mid: MessageId) -> bool:
        return mid in self._mids

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and self._size >= self.capacity

    @property
    def free_space(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - self._size

    def data_messages(self) -> List[DataMessage]:
        return [m for m in self if isinstance(m, DataMessage)]

    def data_in_view(self, view_id: int) -> List[DataMessage]:
        return [
            m
            for m in self
            if isinstance(m, DataMessage) and m.view_id == view_id
        ]

    def peek(self) -> Optional[QueueEntry]:
        if not self._size:
            return None
        if self._doomed:
            self._reclaim_head()
        return self._items[0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, msg: QueueEntry) -> None:
        """Append to the tail; raises :class:`QueueFullError` when bounded
        and full.  Does not purge — callers follow Figure 1 and invoke
        :meth:`purge` (or use :meth:`try_append`)."""
        if self.capacity is not None and self._size >= self.capacity:
            self.stats.rejected += 1
            raise QueueFullError(f"queue at capacity {self.capacity}")
        if isinstance(msg, DataMessage):
            if self._doomed and msg.mid in self._doomed:
                # Re-accepting a previously purged id (possible via the
                # installation flush): drop its tombstone first so the
                # fresh entry is not mistaken for it.
                self._compact()
            self._mids.add(msg.mid)
            if self._live_index is not None:
                self._live_index.add(msg)
        self._items.append(msg)
        self._size += 1
        stats = self.stats
        stats.appended += 1
        if self._size > stats.max_len:
            stats.max_len = self._size

    def try_append(self, msg: QueueEntry) -> bool:
        """Purge-then-append for bounded queues.

        A new data message may free its own slot by making queued messages
        obsolete — the mechanism by which a *full* buffer keeps absorbing
        traffic under SVS.  Returns False (leaving the queue unchanged
        except for the purge) when no space can be found.
        """
        stats = self.stats
        if isinstance(msg, DataMessage):
            # Purge inline (mirrors purge_by): this is the per-offered-
            # message hot path of the throughput model and the protocol.
            index = self._live_index
            if index is not None:
                candidates = index.obsoleted_by(msg)
                if candidates:
                    self._remove_msgs(candidates, exclude=msg.mid)
            elif not self._inert:
                self.purge_by(msg)
            if self.capacity is not None and self._size >= self.capacity:
                stats.rejected += 1
                return False
            if self._doomed and msg.mid in self._doomed:
                self._compact()
            self._items.append(msg)
            self._mids.add(msg.mid)
            if index is not None:
                index.add(msg)
        else:
            if self.capacity is not None and self._size >= self.capacity:
                stats.rejected += 1
                return False
            self._items.append(msg)
        self._size += 1
        stats.appended += 1
        if self._size > stats.max_len:
            stats.max_len = self._size
        return True

    def append_purge(self, msg: DataMessage) -> List[DataMessage]:
        """Fused :meth:`append` + :meth:`purge_by` of one data message.

        Exactly equivalent to the two calls in sequence (the t3 receive
        path of Figure 1), but resolves the purge candidates and the
        index insertion in a single bucket interaction via
        :meth:`PurgeIndex.add_obsoleted
        <repro.core.obsolescence.PurgeIndex.add_obsoleted>`.  Returns the
        purged messages, sorted like :meth:`purge_by`.
        """
        index = self._live_index
        if index is None:
            # Naive-scan or inert queue: nothing to fuse.
            self.append(msg)
            return self.purge_by(msg)
        if self.capacity is not None and self._size >= self.capacity:
            self.stats.rejected += 1
            raise QueueFullError(f"queue at capacity {self.capacity}")
        if self._doomed and msg.mid in self._doomed:
            self._compact()
        self._mids.add(msg.mid)
        candidates = index.add_obsoleted(msg)
        self._items.append(msg)
        self._size += 1
        stats = self.stats
        stats.appended += 1
        if self._size > stats.max_len:
            stats.max_len = self._size
        if not candidates:
            return []
        return self._remove_msgs(candidates, exclude=msg.mid)

    def pop(self) -> QueueEntry:
        """Remove and return the head (Figure 1 t1: removeFirst)."""
        if not self._size:
            raise IndexError("pop from empty DeliveryQueue")
        if self._doomed:
            self._reclaim_head()
        msg = self._items.pop(0)
        if isinstance(msg, DataMessage):
            self._mids.discard(msg.mid)
            if self._live_index is not None:
                self._live_index.discard(msg)
        self._size -= 1
        self.stats.popped += 1
        return msg

    # ------------------------------------------------------------------
    # Purging
    # ------------------------------------------------------------------

    def purge(self) -> List[DataMessage]:
        """Remove every same-view data message dominated by a queued one.

        Returns the purged messages sorted by ``(sender, sn)`` (useful
        for accounting and tests).
        """
        if self._inert:
            return []
        data = self.data_messages()
        if len(data) < 2:
            return []
        if self._live_index is not None:
            victims: List[DataMessage] = []
            for new in data:
                for old in self._live_index.obsoleted_by(new):
                    if old.mid != new.mid:
                        victims.append(old)
            if not victims:
                return []
            return self._remove_msgs(victims)
        removed = [
            old
            for old in data
            if any(
                new.view_id == old.view_id and self.relation.obsoletes(new, old)
                for new in data
                if new.mid != old.mid
            )
        ]
        if not removed:
            return []
        return self._remove_msgs(removed)

    def purge_by(self, new: DataMessage) -> List[DataMessage]:
        """Remove queued same-view data messages that ``new`` makes obsolete.

        ``new`` need not be in the queue — this is the fast path used when
        a single message arrives (appending it and running the full
        :meth:`purge` is equivalent for transitive relations but O(n²)).
        With an index the victims are resolved by per-key lookup; the
        linear scan below is the fallback (and reference) path.
        """
        if self._inert:
            return []
        if self._live_index is not None:
            candidates = self._live_index.obsoleted_by(new)
            if not candidates:
                return []
            return self._remove_msgs(candidates, exclude=new.mid)
        removed = [
            old
            for old in self
            if isinstance(old, DataMessage)
            and old.view_id == new.view_id
            and old.mid != new.mid
            and self.relation.obsoletes(new, old)
        ]
        if not removed:
            return []
        return self._remove_msgs(removed)

    def covered(self, msg: DataMessage) -> bool:
        """True iff some queued message m' satisfies ``msg ⊑ m'``.

        This is the Figure 1 t3 acceptance test (applied alongside the
        delivered log by the protocol).
        """
        if msg.mid in self._mids:
            return True
        if self._inert:
            return False
        if self._live_index is not None:
            return self._live_index.coverer_of(msg)
        return any(
            isinstance(other, DataMessage) and self.relation.covers(other, msg)
            for other in self
        )

    # ------------------------------------------------------------------
    # Tombstoned removal
    # ------------------------------------------------------------------

    def _remove_msgs(
        self,
        victims: Iterable[DataMessage],
        exclude: Optional[MessageId] = None,
    ) -> List[DataMessage]:
        """Tombstone ``victims`` (live queued messages); return them sorted
        by ``(sender, sn)``, deduplicated."""
        doomed = self._doomed
        mids = self._mids
        index = self._live_index
        removed: List[DataMessage] = []
        for m in victims:
            mid = m.mid
            if mid == exclude or mid in doomed:
                continue
            doomed.add(mid)
            mids.discard(mid)
            if index is not None:
                index.discard(m)
            removed.append(m)
        if not removed:
            return []
        self._size -= len(removed)
        self.stats.purged += len(removed)
        removed.sort(key=_mid_of)
        # Amortised compaction: never let tombstones dominate storage.
        if len(self._items) > 2 * self._size + 16:
            self._compact()
        return removed

    def _reclaim_head(self) -> None:
        """Physically drop tombstoned entries sitting at the head."""
        items = self._items
        doomed = self._doomed
        while items:
            head = items[0]
            if isinstance(head, DataMessage) and head.mid in doomed:
                doomed.remove(head.mid)
                items.pop(0)
            else:
                break

    def _compact(self) -> None:
        """Physically remove every tombstoned entry."""
        doomed = self._doomed
        if not doomed:
            return
        self._items = [
            m
            for m in self._items
            if not (isinstance(m, DataMessage) and m.mid in doomed)
        ]
        doomed.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "∞" if self.capacity is None else str(self.capacity)
        return f"DeliveryQueue(len={self._size}/{cap})"


def _mid_of(msg: DataMessage) -> MessageId:
    return msg.mid
