#!/usr/bin/env python
"""Fault injection walkthrough: partitions, lossy links, crash-rejoin churn.

Three escalating demonstrations of the :mod:`repro.faults` subsystem:

1. a **partition-heal** episode whose view change flushes the messages the
   cut side missed;
2. network-wide **lossy links** (5% data loss) with the losses repaired at
   the next view change — checked against the lossy-regime subset of the
   executable specification;
3. the acceptance scenario: partition + 5% loss + a crash that **rejoins**
   as a fresh incarnation via state transfer, byte-identical across two
   same-seed runs.

Run:  python examples/fault_injection.py
"""

from repro import Scenario
from repro.core.spec import LOSSY_CHECKS
from repro.faults import Crash, FaultPlan, Heal, LinkFault, Partition, Recover


def banner(title):
    print(f"\n== {title} ==")


def partition_heal():
    banner("1. partition-heal: the view change repairs the cut")
    result = (
        Scenario()
        .group(n=4, relation="item-tagging", consensus="oracle", seed=1)
        .workload("game", rounds=300)
        .consumers(rate=200)
        .faults("partition-heal", at=2.0, duration=1.0, side=[3])
        .check(checks=LOSSY_CHECKS)
        .collect("throughput", "view_changes", "network")
        .run(until=8.0)
    )
    assert result.ok, result.violations
    net = result.metrics["network"]
    print(f"messages dropped by the partition: {net['dropped']}")
    print(f"view installs: {result.metrics['view_changes']['count']}")
    print("spec (lossy subset): OK")
    return result


def lossy_links():
    banner("2. lossy links: 5% data loss, semantically repaired")
    result = (
        Scenario()
        .group(n=4, relation="item-tagging", consensus="oracle", seed=2,
               viewchange_retry=0.25)
        .workload("game", rounds=300)
        .consumers(rate=200)
        .faults("lossy-links", loss=0.05)
        .view_change(at=4.0)
        .check(checks=LOSSY_CHECKS)
        .collect("throughput", "network")
        .run(until=8.0)
    )
    assert result.ok, result.violations
    net = result.metrics["network"]
    print(f"sent {net['sent']}, dropped {net['dropped']} "
          f"({100 * net['dropped'] / net['sent']:.1f}%)")
    print("spec (lossy subset): OK")
    return result


def churn_with_rejoin():
    banner("3. churn: partition + 5% loss + crash and rejoin")

    def build():
        plan = FaultPlan([
            LinkFault(at=0.0, loss=0.05, data_only=True),
            Partition(at=2.0, sides=[(3, 4)]),
            Heal(at=3.0),
            Crash(at=5.0, pid=4),
            Recover(at=6.0, pid=4),
        ])
        return (
            Scenario()
            .group(n=5, relation="item-tagging", consensus="oracle", seed=3,
                   viewchange_retry=0.25)
            .workload("game", rounds=400)
            .consumers(rate=200)
            .faults(plan)
            .view_change(at=3.1)
            .check(checks=LOSSY_CHECKS)
            .collect("throughput", "view_changes", "network")
            .run(until=12.0)
        )

    first, second = build(), build()
    assert first.ok, first.violations
    assert first.to_json() == second.to_json(), "same seed must be byte-identical"
    installs = first.metrics["view_changes"]["installs"]["4"]
    print(f"process 4 installs (vid, time): {installs}")
    rejoined = [key for key in first.histories if key.endswith("@0")]
    print(f"retired incarnations in the history: {rejoined}")
    print("byte-identical across two same-seed runs: OK")
    return first


def main():
    partition_heal()
    lossy_links()
    result = churn_with_rejoin()
    assert "4@0" in result.histories
    print("\nall fault-injection scenarios passed")


if __name__ == "__main__":
    main()
