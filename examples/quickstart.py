#!/usr/bin/env python
"""Quickstart: a declarative SVS experiment session in ~60 lines.

Demonstrates the core ideas of Semantic View Synchrony through the
Scenario API:

1. multicast with an obsolescence annotation (item tags here);
2. a fast member seeing every message while a slow member's queue purges
   obsolete updates;
3. a crash followed by a view change — with all survivors agreeing on the
   view and on the (semantically complete) message set, as verified by the
   executable specification.

Run:  python examples/quickstart.py
"""

from repro import Scenario


def main():
    # A 4-member group; the item-tagging relation relates messages updating
    # the same item, the newest winning.  Member 1 consumes fast (sees
    # everything); member 2 has no consumer, so its queue purges the
    # obsolete item-7 updates before the final drain.  Member 3 crashes and
    # a view change removes it.
    live = (
        Scenario()
        .group(n=4, relation="item-tagging", seed=1)
        .inject(0.00, "x=1 (item 7, will be obsolete)", annotation=7)
        .inject(0.01, "y=10 (item 8)", annotation=8)
        .inject(0.15, "x=2 (item 7, will be obsolete)", annotation=7)
        .inject(0.16, "x=3 (item 7, final)", annotation=7)
        .consumers(rate=1_000.0, pids=[1])
        .crash(pid=3, at=0.5)
        .view_change(at=1.0, pid=0)
        .collect("purges", "view_changes", "network")
        .build()
    )
    result = live.run(until=5.0)

    print("fast member 1 saw everything:")
    for entry in live.stack.recorder.history(1).events:
        print("   ", getattr(entry, "payload", entry))

    print("\nslow member 2 saw (obsolete x values purged):")
    for entry in live.stack.recorder.history(2).events:
        print("   ", getattr(entry, "payload", entry))

    views = result.metrics["view_changes"]["count"]
    print(f"\nview changes installed per member: {views}")
    print(f"final view at member 0: {live.stack[0].cv.vid}, "
          f"members {sorted(live.stack[0].cv.members)}")
    print(f"messages purged group-wide: {result.metrics['purges']['total']}")

    # The recorded run satisfies the full executable specification:
    # Semantic View Synchrony, FIFO semantic reliability, integrity and
    # view agreement.
    print(f"specification violations: {result.violations or 'none'}")

    # Results serialize for archiving / diffing across runs.
    print(f"result JSON is {len(result.to_json())} bytes "
          f"(ScenarioResult.write_json saves it)")


if __name__ == "__main__":
    main()
