#!/usr/bin/env python
"""Quickstart: a three-member SVS group in ~60 lines.

Demonstrates the core ideas of Semantic View Synchrony:

1. multicast with an obsolescence annotation (item tags here);
2. a slow member skipping obsolete messages while fast members see all;
3. a view change that removes a crashed member — with all survivors
   agreeing on the view and on the (semantically complete) message set.

Run:  python examples/quickstart.py
"""

from repro import GroupStack, ItemTagging, StackConfig, check_all
from repro.core.message import DataMessage, ViewDelivery


def describe(entry):
    if isinstance(entry, ViewDelivery):
        return f"[view {entry.view.vid}: members {sorted(entry.view.members)}]"
    return f"{entry.payload}"


def main():
    # A 4-member group over the simulated network.  ItemTagging relates
    # messages that update the same item: the newest wins.
    stack = GroupStack(ItemTagging(), StackConfig(n=4, seed=1))

    # Member 0 publishes a stream of item updates: item 7 is updated three
    # times, item 8 once.
    stack[0].multicast("x=1 (item 7, will be obsolete)", annotation=7)
    stack[0].multicast("y=10 (item 8)", annotation=8)

    # Member 1 consumes immediately — it sees everything.
    stack.run(until=0.1)
    print("fast member 1 sees:")
    for entry in stack[1].drain():
        print("   ", describe(entry))

    # Two more updates to item 7 arrive while members 2 and 3 are slow:
    # their queues purge the obsolete versions.
    stack[0].multicast("x=2 (item 7, will be obsolete)", annotation=7)
    stack[0].multicast("x=3 (item 7, final)", annotation=7)
    stack.run(until=0.2)
    print("\nslow member 2 sees (obsolete x values purged):")
    for entry in stack[2].drain():
        print("   ", describe(entry))

    # Member 3 crashes; member 0 notices and reconfigures.  View Synchrony
    # machinery (PRED exchange + consensus) installs view 1 everywhere.
    stack.crash(3)
    stack.run(until=0.5)
    stack[0].trigger_view_change()
    stack.run(until=3.0)
    print(f"\nafter reconfiguration: view {stack[0].cv.vid}, "
          f"members {sorted(stack[0].cv.members)}")

    # The recorded run satisfies the full executable specification:
    # Semantic View Synchrony, FIFO semantic reliability, integrity and
    # view agreement.
    stack.drain_all()
    violations = check_all(stack.recorder, stack.relation)
    print(f"specification violations: {violations or 'none'}")


if __name__ == "__main__":
    main()
