#!/usr/bin/env python
"""SVS group across real OS processes on localhost UDP.

Each group member runs in its own operating-system process, hosting a
single-pid :class:`~repro.gcs.stack.GroupStack` over a
:class:`~repro.transport.udp.UdpTransport` — real sockets, real
concurrency, no shared memory.  That forces the distributed backends:
heartbeat failure detection and Chandra–Toueg consensus, both of which
only ever talk through the network.  Every member replays its share of
the same synthesized game trace (Section 5 workload), item-tagged so
stale object updates are purged under load.

Run:  python examples/live_udp.py          (about 3 seconds wall time)
"""

import multiprocessing as mp
import sys

from repro.core.message import DataMessage
from repro.gcs.stack import GroupStack, StackConfig
from repro.transport import (
    LiveRuntime,
    TransportNetwork,
    UdpTransport,
    WallClock,
    default_peer_map,
)
from repro.workload.game import GameConfig, generate_game_trace

PROCESSES = 3
BASE_PORT = 47500
TRACE_ROUNDS = 40
SEND_WINDOW = 1.2  # seconds over which the trace is replayed
RUN_TIME = 2.5  # total wall time per member


def worker(pid: int, results: "mp.Queue") -> None:
    clock = WallClock(seed=11)
    udp = UdpTransport(clock, default_peer_map(PROCESSES, base_port=BASE_PORT))
    clock.add_runner(udp)
    network = TransportNetwork(clock, udp)
    stack = GroupStack(
        "item-tagging",
        StackConfig(
            n=PROCESSES,
            seed=11,
            consensus="chandra-toueg",  # distributed: no oracle shortcuts
            fd="heartbeat",
        ),
        sim=clock,
        network=network,
        pids=[pid],  # this OS process hosts exactly one member
    )
    runtime = LiveRuntime(stack, network)
    runtime.start()

    # Same seed everywhere -> every member sees the same trace and sends
    # the slice of it that belongs to its pid.
    trace = generate_game_trace(GameConfig(rounds=TRACE_ROUNDS, seed=4))
    scale = SEND_WINDOW / max(m.time for m in trace.messages)
    proc = stack[pid]
    sent = 0
    for i, msg in enumerate(trace.messages):
        if i % PROCESSES != pid:
            continue
        annotation = msg.item if msg.kind.obsolescible else None
        clock.schedule(
            0.1 + msg.time * scale, proc.multicast, ("obj", msg.item, i), annotation
        )
        sent += 1

    # The application end: a rate-limited consumer (25 msg/s, slower than
    # the ~40 msg/s offered load), so the queue builds and obsolete object
    # updates are purged from it — the paper's semantic-purging effect.
    def consume():
        proc.deliver()
        clock.schedule(0.04, consume)

    clock.schedule(0.04, consume)
    clock.run(until=RUN_TIME)

    events = stack.recorder.histories.get(pid)
    delivered = (
        sum(1 for e in events.events if isinstance(e, DataMessage)) if events else 0
    )
    results.put(
        {
            "pid": pid,
            "sent": sent,
            "delivered": delivered,
            "purged": proc.purge_count,
            "vid": proc.cv.vid,
            "members": sorted(proc.cv.members),
            "frames": udp.stats.sent,
        }
    )


def main() -> int:
    results: "mp.Queue" = mp.Queue()
    procs = [
        mp.Process(target=worker, args=(pid, results)) for pid in range(PROCESSES)
    ]
    for p in procs:
        p.start()
    reports = sorted((results.get(timeout=60) for _ in procs), key=lambda r: r["pid"])
    for p in procs:
        p.join(timeout=30)

    print(f"{PROCESSES} OS processes over localhost UDP "
          f"(ports {BASE_PORT}..{BASE_PORT + PROCESSES - 1})\n")
    for r in reports:
        print(
            f"member {r['pid']}: sent {r['sent']}, delivered {r['delivered']}, "
            f"purged {r['purged']}, {r['frames']} UDP frames out"
        )
    views = {(r["vid"], tuple(r["members"])) for r in reports}
    vid, members = next(iter(views))
    print(f"\nview membership: vid={vid} members={list(members)}")
    if len(views) != 1:
        print(f"MEMBERS DISAGREE ON THE VIEW: {views}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
