#!/usr/bin/env python
"""Distributed control & monitoring over SVS.

The paper's other motivating domain (Section 1): "distributed control and
monitoring applications which exhibit also a highly interactive behavior".

A sensor gateway multicasts readings for a field of sensors to three
monitoring stations.  Readings of the same sensor supersede each other
(item tagging); alarm messages are never obsolete.  One station suffers a
transient performance perturbation (Section 2's phenomenon, injected with
the PerturbationSchedule substrate): it drops behind, purges stale
readings, and recovers — it keeps every alarm, holds the newest reading of
every sensor, and is never expelled from the group.

Run:  python examples/control_monitoring.py
"""

from repro import GroupStack, ItemTagging, StackConfig
from repro.core.message import DataMessage
from repro.gcs.endpoint import GroupEndpoint, RateLimitedConsumer
from repro.sim.failure import Perturbation, PerturbationSchedule

SENSORS = 8
READING_RATE = 100.0  # readings per second
ALARM_EVERY = 50  # one alarm per 50 readings
RUN_TIME = 20.0


def main():
    stack = GroupStack(ItemTagging(), StackConfig(n=4, seed=3))
    sim = stack.sim
    gateway = stack[0]

    stations = {}
    latest = {}
    alarms = {}
    for pid in (1, 2, 3):
        endpoint = GroupEndpoint(stack[pid])
        latest[pid] = {}
        alarms[pid] = []

        def on_data(msg: DataMessage, pid=pid):
            kind, sensor, value = msg.payload
            if kind == "reading":
                latest[pid][sensor] = value
            else:
                alarms[pid].append((sensor, value))

        endpoint.on_data = on_data
        stations[pid] = endpoint

    # Stations 1 and 2 keep up easily; station 3 can only process 40 msg/s.
    consumers = {
        1: RateLimitedConsumer(sim, stations[1], rate=5_000.0),
        2: RateLimitedConsumer(sim, stations[2], rate=5_000.0),
        3: RateLimitedConsumer(sim, stations[3], rate=40.0),
    }
    for consumer in consumers.values():
        consumer.start()

    # Station 3 additionally stalls completely for two 1.5 s windows — the
    # paper's transient performance perturbation.
    PerturbationSchedule(
        sim, consumers[3], [Perturbation(5.0, 1.5), Perturbation(12.0, 1.5)]
    ).install()

    # The gateway publishes sensor readings round-robin, with periodic
    # alarms that must never be dropped.
    state = {"count": 0}

    def publish():
        i = state["count"]
        state["count"] += 1
        sensor = i % SENSORS
        if i % ALARM_EVERY == ALARM_EVERY - 1:
            # Alarms carry no tag: never obsolete, always delivered.
            gateway.multicast(("alarm", sensor, f"overload#{i}"), annotation=None)
        else:
            gateway.multicast(("reading", sensor, i), annotation=sensor)
        if sim.now < RUN_TIME:
            sim.schedule(1.0 / READING_RATE, publish)

    sim.schedule(0.0, publish)
    sim.run(until=RUN_TIME + 10.0)
    for endpoint in stations.values():
        endpoint.poll_all()

    published_alarms = (state["count"] + 1) // ALARM_EVERY
    print(f"published {state['count']} messages, {published_alarms} alarms\n")
    for pid in (1, 2, 3):
        proc = stack[pid]
        role = "perturbed" if pid == 3 else "fast"
        print(f"station {pid} ({role}):")
        print(f"  alarms received : {len(alarms[pid])} / {published_alarms}")
        print(f"  readings purged : {proc.purge_count}")
        print(f"  still in group  : {pid in stack[0].cv.members}")

    # Every station ends with the same newest reading per sensor.
    agree = all(latest[pid] == latest[1] for pid in (2, 3))
    print(f"\nall stations agree on the latest reading of every sensor: {agree}")
    all_alarms = all(
        len(alarms[pid]) == published_alarms for pid in (1, 2, 3)
    )
    print(f"no station lost an alarm: {all_alarms}")


if __name__ == "__main__":
    main()
