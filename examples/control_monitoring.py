#!/usr/bin/env python
"""Distributed control & monitoring over SVS, as a Scenario.

The paper's other motivating domain (Section 1): "distributed control and
monitoring applications which exhibit also a highly interactive behavior".

A sensor gateway multicasts readings for a field of sensors to three
monitoring stations.  Readings of the same sensor supersede each other
(item tagging); alarm messages are never obsolete.  One station suffers
transient performance perturbations (Section 2's phenomenon, declared with
``Scenario.perturb``): it drops behind, purges stale readings, and
recovers — it keeps every alarm, holds the newest reading of every sensor,
and is never expelled from the group.

The publishing loop is a custom traffic driver (``workload(callable)``);
everything else — group, consumers, perturbations, metrics — is declared.

Run:  python examples/control_monitoring.py
"""

from repro import Scenario
from repro.core.message import DataMessage

SENSORS = 8
READING_RATE = 100.0  # readings per second
ALARM_EVERY = 50  # one alarm per 50 readings
RUN_TIME = 20.0

state = {"count": 0}


def publish_traffic(live):
    """Gateway (pid 0) publishes sensor readings round-robin, with periodic
    alarms that must never be dropped."""
    sim = live.sim
    gateway = live.stack[0]

    def publish():
        i = state["count"]
        state["count"] += 1
        sensor = i % SENSORS
        if i % ALARM_EVERY == ALARM_EVERY - 1:
            # Alarms carry no tag: never obsolete, always delivered.
            gateway.multicast(("alarm", sensor, f"overload#{i}"), annotation=None)
        else:
            gateway.multicast(("reading", sensor, i), annotation=sensor)
        if sim.now < RUN_TIME:
            sim.schedule(1.0 / READING_RATE, publish)

    sim.schedule(0.0, publish)


def main():
    # Stations 1 and 2 keep up easily; station 3 can only process 40 msg/s
    # and additionally stalls completely for two 1.5 s windows.
    live = (
        Scenario()
        .group(n=4, relation="item-tagging", seed=3)
        .consumers(rate=5_000.0, pids=[1, 2])
        .consumers(rate=40.0, pids=[3])
        .perturb(pid=3, at=5.0, duration=1.5)
        .perturb(pid=3, at=12.0, duration=1.5)
        .workload(publish_traffic)
        .collect("purges", "throughput")
        .build()
    )

    latest = {pid: {} for pid in (1, 2, 3)}
    alarms = {pid: [] for pid in (1, 2, 3)}
    for pid in (1, 2, 3):
        def on_data(msg: DataMessage, pid=pid):
            kind, sensor, value = msg.payload
            if kind == "reading":
                latest[pid][sensor] = value
            else:
                alarms[pid].append((sensor, value))

        live.endpoints[pid].on_data = on_data

    result = live.run(until=RUN_TIME + 10.0)

    published_alarms = (state["count"] + 1) // ALARM_EVERY
    print(f"published {state['count']} messages, {published_alarms} alarms\n")
    purged = result.metrics["purges"]["per_process"]
    for pid in (1, 2, 3):
        role = "perturbed" if pid == 3 else "fast"
        print(f"station {pid} ({role}):")
        print(f"  alarms received : {len(alarms[pid])} / {published_alarms}")
        print(f"  readings purged : {purged[str(pid)]}")
        print(f"  still in group  : {pid in live.stack[0].cv.members}")

    # Every station ends with the same newest reading per sensor.
    agree = all(latest[pid] == latest[1] for pid in (2, 3))
    print(f"\nall stations agree on the latest reading of every sensor: {agree}")
    all_alarms = all(
        len(alarms[pid]) == published_alarms for pid in (1, 2, 3)
    )
    print(f"no station lost an alarm: {all_alarms}")
    print(f"specification violations: {result.violations or 'none'}")


if __name__ == "__main__":
    main()
