#!/usr/bin/env python
"""Live wall-clock run over the in-process loopback transport.

The same protocol stack the simulations exercise — SVS processes, view
synchrony, purging — driven by real time instead of the event kernel:
an asyncio loop, emulated link latency/jitter/loss, and the runtime's
state-vector sync + retransmission layer keeping it live.  The delivered
histories are checked against the executable specification, so this
doubles as the CI transport smoke test.

Run:  python examples/live_loopback.py       (about 2 seconds wall time)
Exits non-zero if any specification check fails.
"""

import sys

from repro import Scenario
from repro.core.spec import LOSSY_CHECKS

PROCESSES = 3
MESSAGES = 18
RUN_TIME = 1.5  # seconds of wall time


def main() -> int:
    s = (
        Scenario()
        .group(n=PROCESSES, relation="item-tagging", seed=7)
        .transport("loopback", latency=0.002, jitter=0.001, loss=0.05)
        .check(checks=LOSSY_CHECKS)
        .collect("throughput", "network", "purges")
    )
    for i in range(MESSAGES):
        s.inject(
            0.05 + i * 0.04,
            payload=f"update#{i}",
            annotation=f"item{i % 4}",
            sender=i % PROCESSES,
        )

    live = s.build()
    result = live.run(until=RUN_TIME)

    delivered = {
        pid: sum(1 for e in hist if e["kind"] == "data")
        for pid, hist in result.histories.items()
    }
    purged = result.metrics["purges"]["per_process"]
    members = sorted(live.stack[0].cv.members)
    print(f"offered  : {result.metrics['throughput']['offered']} messages")
    tstats = live.transport.stats
    print(f"network  : {tstats.sent} frames sent, "
          f"{tstats.dropped} dropped (5% loss emulation)")
    for pid in sorted(delivered):
        print(f"process {pid}: delivered {delivered[pid]}, purged {purged[str(pid)]}")
    print(f"view     : vid={live.stack[0].cv.vid} members={members}")
    print(f"sync     : {live.runtime.stats.beacons_sent} beacons, "
          f"{live.runtime.stats.data_retransmits} data retransmits")

    if not result.ok:
        print("\nSPEC VIOLATIONS:")
        for v in result.violations:
            print(f"  - {v}")
        return 1
    print("\nall specification checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
