#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

This is the one-shot driver behind EXPERIMENTS.md: it prints, for each of
the paper's tables/figures plus our ablations, the rows a plotting tool
would consume.  Expect a few minutes of wall-clock time (the Figure 5
sweeps bisect threshold rates across seven buffer sizes at full trace
length).

Run:  python examples/reproduce_figures.py [--fast] [--workers N]
          [--cache DIR] [--engine {v2,v3}] [--dispatch BACKEND]

``--workers N`` fans the grid-shaped experiments (Figures 4–5, the
view-change table, the ablations) out to N worker processes via the sweep
engine; results are identical to the serial run.

``--engine v3`` runs every kernel-backed cell on the batch-dispatch
engine (see ``docs/kernel.md``) — byte-identical tables, faster cells.

``--dispatch BACKEND`` routes cells through a registered dispatch backend
(``local-pool``, ``subprocess``, ``ssh``; see ``docs/sweeps-dispatch.md``)
instead of the in-process pool; output is byte-identical regardless.

``--cache DIR`` memoises every (cell, replicate) run in a content-addressed
on-disk store (see ``docs/sweeps-cache.md``): the first run populates it,
a warm re-run computes zero cells and prints byte-identical tables in
seconds, and editing any module under ``src/repro`` invalidates exactly
everything (``repro-sweep gc DIR`` reclaims the stale shards).
"""

import argparse
import time

import repro.analysis.experiments as exp
from repro.sweep import SweepCache
from repro.workload import portable_workload


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--cache", default=None, metavar="DIR")
    parser.add_argument("--engine", choices=("v2", "v3"), default="v2")
    parser.add_argument("--dispatch", default=None, metavar="BACKEND")
    args = parser.parse_args()
    fast = args.fast
    workers = args.workers
    engine = args.engine
    dispatch = args.dispatch
    # One cache serves every figure: its session counters accumulate
    # across all the sweeps below and flush once per sweep.
    cache = SweepCache(args.cache) if args.cache else None
    if fast:
        # portable_workload stamps the rebuild recipe, so the fast trace
        # can cross a --dispatch subprocess/ssh worker boundary too.
        trace = portable_workload("game", rounds=2000)
        buffers = (4, 12, 20, 28)
        probes = 4
    else:
        trace = exp.default_trace()
        buffers = exp.DEFAULT_BUFFERS
        probes = 8
    grid = dict(workers=workers, cache=cache, engine=engine,
                dispatch=dispatch)

    start = time.time()
    before = _counters(args.cache) if cache else None
    exp.workload_stats(trace, show=True)
    exp.figure_3a(trace, top=50, show=True)
    exp.figure_3b(trace, show=True)
    exp.figure_4a(trace, show=True, **grid)
    exp.figure_4b(trace, show=True, **grid)
    exp.figure_5a(trace, buffers=buffers, show=True, **grid)
    exp.figure_5b(trace, buffers=buffers, probes=probes, show=True, **grid)
    exp.view_change_latency_table(show=True, **grid)
    exp.churn_table(show=True, **grid)
    exp.ablation_k(trace, show=True, **grid)
    exp.ablation_representation(trace, show=True, **grid)
    exp.ablation_players(show=True, workers=workers, cache=cache,
                         dispatch=dispatch)
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")
    if cache:
        after = _counters(args.cache)
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        print(
            f"cache {args.cache}: {hits} hits / {misses} computed "
            f"({rate} hit rate this run)"
        )


def _counters(cache_dir):
    from repro.sweep.cache import cache_stats

    return cache_stats(cache_dir)["counters"]


if __name__ == "__main__":
    main()
