#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

This is the one-shot driver behind EXPERIMENTS.md: it prints, for each of
the paper's tables/figures plus our ablations, the rows a plotting tool
would consume.  Expect a few minutes of wall-clock time (the Figure 5
sweeps bisect threshold rates across seven buffer sizes at full trace
length).

Run:  python examples/reproduce_figures.py [--fast] [--workers N]

``--workers N`` fans the grid-shaped experiments (Figures 4–5, the
view-change table, the ablations) out to N worker processes via the sweep
engine; results are identical to the serial run.
"""

import argparse
import time

import repro.analysis.experiments as exp
from repro import workloads


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--workers", type=int, default=0)
    args = parser.parse_args()
    fast = args.fast
    workers = args.workers
    if fast:
        trace = workloads.create("game", rounds=2000)
        buffers = (4, 12, 20, 28)
        probes = 4
    else:
        trace = exp.default_trace()
        buffers = exp.DEFAULT_BUFFERS
        probes = 8

    start = time.time()
    exp.workload_stats(trace, show=True)
    exp.figure_3a(trace, top=50, show=True)
    exp.figure_3b(trace, show=True)
    exp.figure_4a(trace, show=True, workers=workers)
    exp.figure_4b(trace, show=True, workers=workers)
    exp.figure_5a(trace, buffers=buffers, show=True, workers=workers)
    exp.figure_5b(trace, buffers=buffers, probes=probes, show=True, workers=workers)
    exp.view_change_latency_table(show=True, workers=workers)
    exp.churn_table(show=True, workers=workers)
    exp.ablation_k(trace, show=True, workers=workers)
    exp.ablation_representation(trace, show=True, workers=workers)
    exp.ablation_players(show=True, workers=workers)
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
