#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

This is the one-shot driver behind EXPERIMENTS.md: it prints, for each of
the paper's tables/figures plus our ablations, the rows a plotting tool
would consume.  Expect a few minutes of wall-clock time (the Figure 5
sweeps bisect threshold rates across seven buffer sizes at full trace
length).

Run:  python examples/reproduce_figures.py [--fast] [--workers N]
          [--cache DIR] [--engine {v2,v3}] [--dispatch BACKEND]
          [--report DIR]

``--workers N`` fans the grid-shaped experiments (Figures 4–5, the
view-change table, the ablations) out to N worker processes via the sweep
engine; results are identical to the serial run.

``--engine v3`` runs every kernel-backed cell on the batch-dispatch
engine (see ``docs/kernel.md``) — byte-identical tables, faster cells.

``--dispatch BACKEND`` routes cells through a registered dispatch backend
(``local-pool``, ``subprocess``, ``ssh``; see ``docs/sweeps-dispatch.md``)
instead of the in-process pool; output is byte-identical regardless.

``--cache DIR`` memoises every (cell, replicate) run in a content-addressed
on-disk store (see ``docs/sweeps-cache.md``): the first run populates it,
a warm re-run computes zero cells and prints byte-identical tables in
seconds, and editing any module under ``src/repro`` invalidates exactly
everything (``repro-sweep gc DIR`` reclaims the stale shards).

``--report DIR`` additionally assembles every table and chart into a
self-contained report (see ``docs/reports.md``): ``DIR/report.md`` holds
only deterministic sections — the markdown is byte-identical whether the
sweeps ran serially, pooled, or dispatched, which CI's ``figure-report``
lane asserts — while ``DIR/report.html`` adds the volatile
cache/dispatch observability sections.  The report includes a golden
delta section comparing a freshly computed Figure 4(a) grid against the
committed ``tests/fixtures/golden_figure_4a.json``.
"""

import argparse
import time

import repro.analysis.experiments as exp
from repro.sweep import SweepCache
from repro.workload import portable_workload


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--cache", default=None, metavar="DIR")
    parser.add_argument("--engine", choices=("v2", "v3"), default="v2")
    parser.add_argument("--dispatch", default=None, metavar="BACKEND")
    parser.add_argument("--report", default=None, metavar="DIR")
    args = parser.parse_args()
    fast = args.fast
    workers = args.workers
    engine = args.engine
    dispatch = args.dispatch
    report = None
    if args.report:
        from repro.report import ReportBuilder

        report = ReportBuilder(
            "Semantically Reliable Multicast — figure reproduction",
            subtitle="Every table and figure of the paper's evaluation "
            "(Section 5), regenerated from the calibrated synthetic "
            "trace."
            + (" Fast mode: shortened trace, coarser grids." if fast else ""),
        )
    # One cache serves every figure: its session counters accumulate
    # across all the sweeps below and flush once per sweep.
    cache = SweepCache(args.cache) if args.cache else None
    if fast:
        # portable_workload stamps the rebuild recipe, so the fast trace
        # can cross a --dispatch subprocess/ssh worker boundary too.
        trace = portable_workload("game", rounds=2000)
        buffers = (4, 12, 20, 28)
        probes = 4
    else:
        trace = exp.default_trace()
        buffers = exp.DEFAULT_BUFFERS
        probes = 8
    grid = dict(workers=workers, cache=cache, engine=engine,
                dispatch=dispatch, report=report)

    start = time.time()
    before = _counters(args.cache) if cache else None
    exp.workload_stats(trace, show=True, report=report)
    exp.figure_3a(trace, top=50, show=True, report=report)
    exp.figure_3b(trace, show=True, report=report)
    exp.figure_4a(trace, show=True, **grid)
    exp.figure_4b(trace, show=True, **grid)
    exp.figure_5a(trace, buffers=buffers, show=True, **grid)
    exp.figure_5b(trace, buffers=buffers, probes=probes, show=True, **grid)
    exp.view_change_latency_table(show=True, **grid)
    exp.churn_table(show=True, **grid)
    exp.ablation_k(trace, show=True, **grid)
    exp.ablation_representation(trace, show=True, **grid)
    exp.ablation_players(show=True, workers=workers, cache=cache,
                         dispatch=dispatch, report=report)
    if report is not None:
        _golden_delta(report, workers=workers, cache=cache, engine=engine,
                      dispatch=dispatch)
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")
    if report is not None:
        if args.cache:
            report.add_cache_dir(args.cache)
        written = report.write(args.report)
        print(f"report: {written['markdown']} and {written['html']}")
    if cache:
        after = _counters(args.cache)
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        print(
            f"cache {args.cache}: {hits} hits / {misses} computed "
            f"({rate} hit rate this run)"
        )


def _golden_delta(report, workers, cache, engine, dispatch):
    """Recompute the golden Figure 4(a) grid and report the delta.

    The grid is the committed fixture's own configuration (1500-round
    trace, seed 2002, three rates), so the section deterministically
    reads "matches the golden fixture exactly" unless the pipeline
    drifted — the same property ``tests/analysis/test_golden_figures.py``
    asserts, now visible in the published report.
    """
    import json
    import pathlib

    fixture_path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "tests" / "fixtures" / "golden_figure_4a.json"
    )
    try:
        with open(fixture_path, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
    except OSError:
        report.add_text(
            "Golden fixture delta",
            "Fixture tests/fixtures/golden_figure_4a.json not found — "
            "delta section skipped.",
        )
        return
    trace = portable_workload(
        golden["trace"]["generator"],
        rounds=golden["trace"]["rounds"],
        seed=golden["trace"]["seed"],
    )
    measured = exp.figure_4a(
        trace,
        buffer_size=golden["buffer_size"],
        rates=golden["rates"],
        workers=workers,
        cache=cache,
        engine=engine,
        dispatch=dispatch,
    )
    report.add_golden_delta(
        "Golden fixture delta — Figure 4(a), 1500-round trace",
        ("consumer msg/s", "reliable", "semantic"),
        golden["rows"],
        measured,
        notes="Fixture: tests/fixtures/golden_figure_4a.json.",
    )


def _counters(cache_dir):
    from repro.sweep.cache import cache_stats

    return cache_stats(cache_dir)["counters"]


if __name__ == "__main__":
    main()
