#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

This is the one-shot driver behind EXPERIMENTS.md: it prints, for each of
the paper's tables/figures plus our ablations, the rows a plotting tool
would consume.  Expect a few minutes of wall-clock time (the Figure 5
sweeps bisect threshold rates across seven buffer sizes at full trace
length).

Run:  python examples/reproduce_figures.py [--fast]
"""

import sys
import time

import repro.analysis.experiments as exp
from repro import workloads


def main():
    fast = "--fast" in sys.argv
    if fast:
        trace = workloads.create("game", rounds=2000)
        buffers = (4, 12, 20, 28)
        probes = 4
    else:
        trace = exp.default_trace()
        buffers = exp.DEFAULT_BUFFERS
        probes = 8

    start = time.time()
    exp.workload_stats(trace, show=True)
    exp.figure_3a(trace, top=50, show=True)
    exp.figure_3b(trace, show=True)
    exp.figure_4a(trace, show=True)
    exp.figure_4b(trace, show=True)
    exp.figure_5a(trace, buffers=buffers, show=True)
    exp.figure_5b(trace, buffers=buffers, probes=probes, show=True)
    exp.view_change_latency_table(show=True)
    exp.ablation_k(trace, show=True)
    exp.ablation_representation(trace, show=True)
    exp.ablation_players(show=True)
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
