#!/usr/bin/env python
"""Parameter sweeps in one call: figures and invariant-checked grids.

Two demonstrations of the ``repro.sweep`` engine:

1. Figure 4(a) from the :class:`~repro.sweep.SweepResult` of one
   ``figure_4_sweep`` call — the grid both panels of the figure read,
   farmed out to worker processes;
2. a full-stack :class:`~repro.sweep.ScenarioSweep` over group size ×
   latency model with replicated seeds, every cell checked against the
   executable SVS specification as it runs, aggregated to mean ± CI and
   written to JSON.

Run:  python examples/sweep_grid.py [--smoke] [--workers N] [--out FILE]
                                    [--cache DIR] [--dispatch BACKEND]

``--cache DIR`` runs both sweeps through the content-addressed cell cache
(``docs/sweeps-cache.md``): re-running with the same arguments computes
zero cells and writes a byte-identical ``--out`` file — the property CI's
warm-cache lane asserts.

``--dispatch BACKEND`` routes cells through a registered dispatch backend
(``local-pool``, ``subprocess``, ``ssh`` — ``docs/sweeps-dispatch.md``);
CI's sweep-dispatch lane ``cmp``s a ``--dispatch subprocess`` run's output
against the serial run's.
"""

import argparse
import time

from repro import ScenarioSweep
from repro.analysis.experiments import figure_4_sweep
from repro.workload import portable_workload


def figure_sweep(trace, rates, workers, cache=None, dispatch=None):
    result = figure_4_sweep(
        trace, buffer_size=15, rates=rates, workers=workers, cache=cache,
        dispatch=dispatch,
    )
    print(f"\n== Figure 4(a) via one Sweep call ({result.n_runs} cells) ==")
    print(f"{'msg/s':>8} {'reliable':>10} {'semantic':>10}")
    for rate in rates:
        rel = result.select(consumer_rate=rate, semantic=False)
        sem = result.select(consumer_rate=rate, semantic=True)
        print(
            f"{rate:>8} {rel.value('producer_idle_pct'):>10.2f} "
            f"{sem.value('producer_idle_pct'):>10.2f}"
        )


def scenario_sweep(rounds, seeds, workers, out, cache=None, dispatch=None):
    sweep = (
        ScenarioSweep(
            base={
                "until": 10.0,
                "workload": "game",
                "workload_params": {"rounds": rounds},
                "consumer_rate": 300.0,
                "consensus": "oracle",
                "metrics": ["throughput", "purges"],
            },
            seeds=seeds,
        )
        .axis("n", [3, 5])
        .axis("latency_model", ["constant", "lognormal"])
    )
    result = sweep.run(workers=workers, cache=cache, dispatch=dispatch)
    assert result.ok, result.violations  # every cell was invariant-checked
    print(
        f"\n== Scenario grid: n × latency model, {seeds} seeds/cell "
        f"({result.n_runs} runs, all invariant-checked) =="
    )
    print(f"{'n':>4} {'latency':>10} {'delivered/s':>14} {'±CI95':>8}")
    for cell in result.cells:
        stats = cell.stats("throughput.rate.0")
        print(
            f"{cell.params['n']:>4} {cell.params['latency_model']:>10} "
            f"{stats.mean:>14.1f} {stats.ci95:>8.1f}"
        )
    result.write_json(out)
    print(f"\naggregated sweep written to {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast grid")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--out", default="sweep_result.json")
    parser.add_argument("--cache", default=None, metavar="DIR")
    parser.add_argument("--dispatch", default=None, metavar="BACKEND")
    args = parser.parse_args()
    cache = args.cache
    dispatch = args.dispatch

    # portable_workload stamps the rebuild recipe, so the trace context
    # survives a --dispatch subprocess/ssh worker boundary.
    if args.smoke:
        trace = portable_workload("game", rounds=1500)
        rates = [80, 40, 20]
        rounds, seeds = 200, 2
    else:
        trace = portable_workload("game")
        rates = [140, 100, 73, 40, 28, 20]
        rounds, seeds = 600, 3

    start = time.time()
    figure_sweep(trace, rates, args.workers, cache=cache, dispatch=dispatch)
    scenario_sweep(rounds, seeds, args.workers, args.out, cache=cache,
                   dispatch=dispatch)
    print(f"total wall-clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
