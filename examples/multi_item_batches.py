#!/usr/bin/env python
"""Multi-item composite updates — the Figure 2 walkthrough.

Section 4.1: a composite update touching several items is split into a
batch of single-item messages terminated by a commit.  Only *commit*
messages make earlier (committed) updates obsolete, so atomicity survives
purging: Figure 2's point is that C(2), not U(b,2), obsoletes U(b,1).

This script encodes the paper's exact example, pushes both batches through
a purging delivery queue (simulating a slow receiver), and shows what the
receiver applies.

Run:  python examples/multi_item_batches.py
"""

from repro import relations
from repro.core.batch import BatchAssembler, BatchEncoder, ItemUpdate
from repro.core.buffers import DeliveryQueue
from repro.core.obsolescence import KEnumerationEncoder


def label(msg):
    payload = msg.payload
    parts = []
    if payload.update is not None:
        parts.append(f"U({payload.update.item},{payload.update.value})")
    if payload.commit:
        parts.append(f"C({payload.batch_id + 1})")
    return "+".join(parts)


def main():
    k = 16
    encoder = BatchEncoder(
        KEnumerationEncoder(sender=0, k=k), commit_piggybacked=False
    )
    relation = relations.create("k-enumeration", k=k)

    # Figure 2's two composite updates.
    batch1 = encoder.encode_batch([ItemUpdate("a", 1), ItemUpdate("b", 1)])
    batch2 = encoder.encode_batch([ItemUpdate("b", 2), ItemUpdate("c", 2)])
    stream = batch1 + batch2
    print("message stream:", "  ".join(label(m) for m in stream))

    u_b1 = batch1[1]
    u_b2, _, c2 = batch2
    print(f"\nU(b,2) obsoletes U(b,1)?  {relation.obsoletes(u_b2, u_b1)}"
          f"   (interior updates never purge)")
    print(f"C(2)   obsoletes U(b,1)?  {relation.obsoletes(c2, u_b1)}"
          f"   (the commit carries the batch's obsolescence)")

    # A slow receiver: everything sits in the queue when batch 2 arrives,
    # so U(b,1) is purged; the commits and live updates survive.
    queue = DeliveryQueue(relation)
    for msg in stream:
        queue.append(msg)
        queue.purge_by(msg)
    print("\nqueue after purging:", "  ".join(label(m) for m in queue))

    # The receiver applies whole batches on commit.
    assembler = BatchAssembler()
    state = {}
    while queue:
        committed = assembler.feed(queue.pop())
        if committed is not None:
            for update in committed:
                state[update.item] = update.value
            applied = ", ".join(f"{u.item}={u.value}" for u in committed)
            print(f"commit applied atomically: {{{applied}}}")

    print(f"\nfinal state: {dict(sorted(state.items()))}")
    print("(identical to applying both batches unpurged: "
          "{'a': 1, 'b': 2, 'c': 2})")


if __name__ == "__main__":
    main()
