#!/usr/bin/env python
"""Replicated multi-player game server — the paper's motivating application.

A primary server executes the game (driven by the calibrated Quake-like
trace), disseminating item updates to two backups over SVS.  One backup is
slow: purging keeps it in the group *and* consistent.  Halfway through,
the primary crashes; the cluster fails over to a backup without losing the
game state.

Run:  python examples/game_server_replication.py
"""

from repro import workloads
from repro.core.spec import check_all
from repro.replication.primary_backup import ReplicatedCluster
from repro.replication.state import StoreOp
from repro.workload.trace import MessageKind


def op_for(msg):
    """Map a trace message to a replicated store operation."""
    if msg.kind is MessageKind.UPDATE:
        return StoreOp("set", msg.item, ("pos", msg.index))
    if msg.kind is MessageKind.CREATE:
        return StoreOp("create", msg.item, ("spawn", msg.index))
    if msg.kind is MessageKind.DESTROY:
        return StoreOp("destroy", msg.item)
    return StoreOp("create", ("event", msg.index), "sound")


def main():
    trace = workloads.create("game", rounds=600, seed=9)  # 20 s of game
    print(f"driving {len(trace)} game messages "
          f"({trace.message_rate:.1f} msg/s) through a 3-replica cluster")

    # Replica 2 can only apply 30 ops/s — slower than the game's update
    # rate.  Under plain VS it would either stall the game or be expelled;
    # under SVS it just skips obsolete position updates.  The relation is
    # named, so any registered backend could stand in.
    cluster = ReplicatedCluster(
        n=3, relation="item-tagging", consumer_rates={2: 30.0}
    )
    sim = cluster.sim

    def drive(index):
        if index >= len(trace.messages):
            return
        cluster.submit(op_for(trace.messages[index]))
        if index + 1 < len(trace.messages):
            nxt = trace.messages[index + 1]
            sim.schedule(max(0.0, nxt.time - sim.now), drive, index + 1)

    sim.schedule_at(0.0, drive, 0)

    # The primary dies mid-game.
    sim.schedule_at(8.0, lambda: print(
        f"  t=8.0s: crashing primary (pid {cluster.primary().pid})"
    ) or cluster.crash_primary())

    cluster.run(until=trace.duration + 15.0)

    primary = cluster.primary()
    print(f"\nnew primary after fail-over: replica {primary.pid}")
    print(f"requests executed by new primary: {primary.requests_executed}")

    live = cluster.live_servers()
    slow = cluster.servers[2]
    fast = cluster.servers[1]
    print(f"\nreplica stores equal: {live[0].store == live[1].store}")
    print(f"items in store: {len(primary.store)}")
    print(f"ops applied  fast replica: {fast.store.ops_applied}, "
          f"slow replica: {slow.store.ops_applied} "
          f"(purging saved {fast.store.ops_applied - slow.store.ops_applied})")

    violations = check_all(cluster.stack.recorder, cluster.stack.relation)
    print(f"specification violations: {violations or 'none'}")


if __name__ == "__main__":
    main()
