"""Unit tests for the purgeable delivery queue."""

import pytest

from repro.core.buffers import DeliveryQueue, QueueFullError
from repro.core.message import View, ViewDelivery
from repro.core.obsolescence import EmptyRelation, ItemTagging
from tests.conftest import make_data


def tagged(sn, tag, view_id=0):
    return make_data(sn=sn, annotation=tag, view_id=view_id)


class TestBasicQueue:
    def test_fifo_order(self):
        q = DeliveryQueue(EmptyRelation())
        for sn in range(3):
            q.append(make_data(sn=sn))
        assert [m.sn for m in (q.pop(), q.pop(), q.pop())] == [0, 1, 2]

    def test_peek_does_not_remove(self):
        q = DeliveryQueue(EmptyRelation())
        q.append(make_data(sn=0))
        assert q.peek().sn == 0
        assert len(q) == 1

    def test_pop_empty_raises(self):
        q = DeliveryQueue(EmptyRelation())
        with pytest.raises(IndexError):
            q.pop()

    def test_contains_mid_tracking(self):
        q = DeliveryQueue(EmptyRelation())
        msg = make_data(sn=4)
        q.append(msg)
        assert q.contains_mid(msg.mid)
        q.pop()
        assert not q.contains_mid(msg.mid)

    def test_bool_and_len(self):
        q = DeliveryQueue(EmptyRelation())
        assert not q
        q.append(make_data())
        assert q and len(q) == 1

    def test_view_messages_flow_through(self):
        q = DeliveryQueue(ItemTagging())
        view = ViewDelivery(View(1, frozenset({0})))
        q.append(tagged(0, 7))
        q.append(view)
        q.append(tagged(1, 7))
        q.purge()
        # The data message was purged but the view message survives.
        assert [type(e).__name__ for e in q] == ["ViewDelivery", "DataMessage"]


class TestCapacity:
    def test_append_raises_when_full(self):
        q = DeliveryQueue(EmptyRelation(), capacity=2)
        q.append(make_data(sn=0))
        q.append(make_data(sn=1))
        with pytest.raises(QueueFullError):
            q.append(make_data(sn=2))

    def test_is_full_and_free_space(self):
        q = DeliveryQueue(EmptyRelation(), capacity=2)
        assert q.free_space == 2
        q.append(make_data(sn=0))
        assert q.free_space == 1 and not q.is_full
        q.append(make_data(sn=1))
        assert q.is_full

    def test_unbounded_free_space_is_none(self):
        assert DeliveryQueue(EmptyRelation()).free_space is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeliveryQueue(EmptyRelation(), capacity=0)

    def test_try_append_respects_capacity(self):
        q = DeliveryQueue(EmptyRelation(), capacity=1)
        assert q.try_append(make_data(sn=0))
        assert not q.try_append(make_data(sn=1))
        assert len(q) == 1

    def test_try_append_purges_to_make_room(self):
        # The defining SVS behaviour: a full buffer still absorbs a message
        # that makes a queued one obsolete.
        q = DeliveryQueue(ItemTagging(), capacity=2)
        q.append(tagged(0, 7))
        q.append(tagged(1, 8))
        assert q.is_full
        assert q.try_append(tagged(2, 7))
        assert [m.sn for m in q.data_messages()] == [1, 2]

    def test_try_append_unrelated_message_fails_but_purge_not_undone(self):
        q = DeliveryQueue(ItemTagging(), capacity=2)
        q.append(tagged(0, 7))
        q.append(tagged(1, 8))
        assert not q.try_append(tagged(2, 9))
        assert len(q) == 2


class TestPurge:
    def test_purge_removes_dominated(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7))
        q.append(tagged(1, 7))
        removed = q.purge()
        assert [m.sn for m in removed] == [0]
        assert [m.sn for m in q.data_messages()] == [1]

    def test_purge_keeps_maximal_elements(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7))
        q.append(tagged(1, 8))
        q.append(tagged(2, 7))
        q.purge()
        assert [m.sn for m in q.data_messages()] == [1, 2]

    def test_purge_chain_keeps_only_newest(self):
        q = DeliveryQueue(ItemTagging())
        for sn in range(5):
            q.append(tagged(sn, 7))
        q.purge()
        assert [m.sn for m in q.data_messages()] == [4]

    def test_purge_respects_view_boundaries(self):
        # Messages of different views are never related (Figure 1 purge).
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7, view_id=0))
        q.append(tagged(1, 7, view_id=1))
        assert q.purge() == []
        assert len(q) == 2

    def test_purge_by_external_message(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7))
        newcomer = tagged(5, 7)  # not appended
        removed = q.purge_by(newcomer)
        assert [m.sn for m in removed] == [0]
        assert len(q) == 0

    def test_purge_by_ignores_other_views(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7, view_id=0))
        assert q.purge_by(tagged(5, 7, view_id=1)) == []

    def test_empty_relation_never_purges(self):
        q = DeliveryQueue(EmptyRelation())
        q.append(tagged(0, 7))
        q.append(tagged(1, 7))
        assert q.purge() == []
        assert len(q) == 2

    def test_purge_preserves_relative_order_of_survivors(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 1))
        q.append(tagged(1, 2))
        q.append(tagged(2, 1))
        q.append(tagged(3, 3))
        q.purge()
        assert [m.sn for m in q.data_messages()] == [1, 2, 3]


class TestCoverage:
    def test_covered_by_identity(self):
        q = DeliveryQueue(ItemTagging())
        msg = tagged(0, 7)
        q.append(msg)
        assert q.covered(msg)

    def test_covered_by_newer_same_tag(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(5, 7))
        assert q.covered(tagged(0, 7))

    def test_not_covered_by_other_tag(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(5, 8))
        assert not q.covered(tagged(0, 7))


class TestStats:
    def test_counters(self):
        q = DeliveryQueue(ItemTagging(), capacity=2)
        q.append(tagged(0, 7))
        q.append(tagged(1, 7))
        q.purge()
        q.pop()
        q.try_append(tagged(2, 9))
        assert q.stats.appended == 3
        assert q.stats.purged == 1
        assert q.stats.popped == 1
        assert q.stats.max_len == 2

    def test_rejected_counter(self):
        q = DeliveryQueue(EmptyRelation(), capacity=1)
        q.append(tagged(0, 7))
        q.try_append(tagged(1, 8))
        assert q.stats.rejected == 1

    def test_purge_ratio(self):
        q = DeliveryQueue(ItemTagging())
        q.append(tagged(0, 7))
        q.append(tagged(1, 7))
        q.purge()
        assert q.stats.purge_ratio() == pytest.approx(0.5)

    def test_purge_ratio_empty_queue(self):
        assert DeliveryQueue(EmptyRelation()).stats.purge_ratio() == 0.0
