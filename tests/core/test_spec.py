"""Unit tests for the executable specification checkers.

Each checker must (a) pass on hand-built correct histories and (b) flag
hand-built violations — the checkers guard the whole suite, so they get
adversarial tests of their own.
"""

from repro.core.message import View, ViewDelivery
from repro.core.obsolescence import EmptyRelation, ItemTagging
from repro.core.spec import (
    HistoryRecorder,
    check_classic_vs,
    check_fifo_sr,
    check_integrity,
    check_svs,
    check_view_agreement,
)
from tests.conftest import make_data

V0 = View(0, frozenset({0, 1}))
V1 = View(1, frozenset({0, 1}))


def recorder_with(multicasts, histories):
    rec = HistoryRecorder()
    for msg in multicasts:
        rec.record_multicast(msg.sender, msg)
    for pid, events in histories.items():
        for event in events:
            rec.record_delivery(pid, event)
    return rec


def tagged(sn, tag, view_id=0):
    return make_data(sn=sn, annotation=tag, view_id=view_id)


class TestSVSChecker:
    def test_identical_histories_pass(self):
        m = [tagged(0, 1), tagged(1, 2)]
        rec = recorder_with(
            m,
            {
                0: [ViewDelivery(V0), m[0], m[1], ViewDelivery(V1)],
                1: [ViewDelivery(V0), m[0], m[1], ViewDelivery(V1)],
            },
        )
        assert check_svs(rec, ItemTagging()) == []

    def test_covered_omission_passes(self):
        m = [tagged(0, 7), tagged(1, 7)]
        rec = recorder_with(
            m,
            {
                0: [ViewDelivery(V0), m[0], m[1], ViewDelivery(V1)],
                1: [ViewDelivery(V0), m[1], ViewDelivery(V1)],  # skipped m0
            },
        )
        assert check_svs(rec, ItemTagging()) == []

    def test_uncovered_omission_flagged(self):
        m = [tagged(0, 7), tagged(1, 8)]  # different tags: no coverage
        rec = recorder_with(
            m,
            {
                0: [ViewDelivery(V0), m[0], m[1], ViewDelivery(V1)],
                1: [ViewDelivery(V0), m[1], ViewDelivery(V1)],
            },
        )
        violations = check_svs(rec, ItemTagging())
        assert violations and "SVS" in violations[0]

    def test_empty_relation_requires_equality(self):
        m = [tagged(0, 7), tagged(1, 7)]
        rec = recorder_with(
            m,
            {
                0: [ViewDelivery(V0), m[0], m[1], ViewDelivery(V1)],
                1: [ViewDelivery(V0), m[1], ViewDelivery(V1)],
            },
        )
        assert check_svs(rec, EmptyRelation()) != []
        assert check_classic_vs(rec) != []

    def test_process_not_installing_next_view_unconstrained(self):
        m = [tagged(0, 7)]
        rec = recorder_with(
            m,
            {
                0: [ViewDelivery(V0), m[0], ViewDelivery(V1)],
                1: [ViewDelivery(V0)],  # never installed V1: no obligation
            },
        )
        assert check_svs(rec, ItemTagging()) == []

    def test_coverage_in_earlier_segment_counts(self):
        # q delivered the coverer already in view 0 while p delivered the
        # covered message in view 1 (possible with cross-view... the
        # checker pools all segments <= vid).
        early = tagged(1, 7, view_id=0)
        late = tagged(0, 7, view_id=0)
        rec = recorder_with(
            [late, early],
            {
                0: [ViewDelivery(V0), late, early, ViewDelivery(V1)],
                1: [ViewDelivery(V0), early, ViewDelivery(V1)],
            },
        )
        assert check_svs(rec, ItemTagging()) == []


class TestFIFOChecker:
    def test_in_order_delivery_passes(self):
        m = [tagged(0, 1), tagged(1, 2)]
        rec = recorder_with(m, {0: [ViewDelivery(V0), m[0], m[1]]})
        assert check_fifo_sr(rec, ItemTagging()) == []

    def test_out_of_order_delivery_flagged(self):
        m = [tagged(0, 1), tagged(1, 2)]
        rec = recorder_with(m, {0: [ViewDelivery(V0), m[1], m[0]]})
        violations = check_fifo_sr(rec, ItemTagging())
        assert any("FIFO(i)" in v for v in violations)

    def test_uncovered_gap_at_view_boundary_flagged(self):
        m = [tagged(0, 1), tagged(1, 2)]
        rec = recorder_with(
            m, {0: [ViewDelivery(V0), m[1], ViewDelivery(V1)]}
        )
        violations = check_fifo_sr(rec, ItemTagging())
        assert any("FIFO(ii)" in v for v in violations)

    def test_covered_gap_at_view_boundary_passes(self):
        m = [tagged(0, 7), tagged(1, 7)]
        rec = recorder_with(
            m, {0: [ViewDelivery(V0), m[1], ViewDelivery(V1)]}
        )
        assert check_fifo_sr(rec, ItemTagging()) == []

    def test_gap_without_boundary_is_not_yet_a_violation(self):
        # Before the next installation the gap may still be filled.
        m = [tagged(0, 1), tagged(1, 2)]
        rec = recorder_with(m, {0: [ViewDelivery(V0), m[1]]})
        violations = check_fifo_sr(rec, ItemTagging())
        assert not any("FIFO(ii)" in v for v in violations)


class TestIntegrityChecker:
    def test_clean_history_passes(self):
        m = [tagged(0, 1)]
        rec = recorder_with(m, {0: [ViewDelivery(V0), m[0]]})
        assert check_integrity(rec) == []

    def test_creation_flagged(self):
        phantom = tagged(9, 1)
        rec = recorder_with([], {0: [ViewDelivery(V0), phantom]})
        violations = check_integrity(rec)
        assert any("no-creation" in v for v in violations)

    def test_duplication_flagged(self):
        m = [tagged(0, 1)]
        rec = recorder_with(m, {0: [ViewDelivery(V0), m[0], m[0]]})
        violations = check_integrity(rec)
        assert any("no-duplication" in v for v in violations)

    def test_tampered_message_flagged(self):
        original = tagged(0, 1)
        forged = make_data(sn=0, annotation=1, payload="tampered")
        rec = recorder_with([original], {0: [ViewDelivery(V0), forged]})
        violations = check_integrity(rec)
        assert any("no-creation" in v for v in violations)


class TestViewAgreementChecker:
    def test_agreeing_views_pass(self):
        rec = recorder_with(
            [],
            {
                0: [ViewDelivery(V0), ViewDelivery(V1)],
                1: [ViewDelivery(V0), ViewDelivery(V1)],
            },
        )
        assert check_view_agreement(rec) == []

    def test_conflicting_membership_flagged(self):
        other_v1 = View(1, frozenset({0}))
        rec = recorder_with(
            [],
            {
                0: [ViewDelivery(V0), ViewDelivery(V1)],
                1: [ViewDelivery(V0), ViewDelivery(other_v1)],
            },
        )
        violations = check_view_agreement(rec)
        assert any("memberships" in v for v in violations)

    def test_non_increasing_installation_flagged(self):
        rec = recorder_with(
            [], {0: [ViewDelivery(V1), ViewDelivery(V0)]}
        )
        violations = check_view_agreement(rec)
        assert any("after" in v for v in violations)

    def test_skipped_view_flagged(self):
        v2 = View(2, frozenset({0, 1}))
        rec = recorder_with([], {0: [ViewDelivery(V0), ViewDelivery(v2)]})
        violations = check_view_agreement(rec)
        assert any("skipped" in v for v in violations)


class TestHistorySegments:
    def test_segments_grouped_by_view(self):
        m = [tagged(0, 1), tagged(1, 2, view_id=1)]
        rec = recorder_with(
            m, {0: [ViewDelivery(V0), m[0], ViewDelivery(V1), m[1]]}
        )
        segments = rec.history(0).segments()
        assert [x.sn for x in segments[0]] == [0]
        assert [x.sn for x in segments[1]] == [1]

    def test_data_before_any_view_lands_in_minus_one(self):
        m = [tagged(0, 1)]
        rec = recorder_with(m, {0: [m[0], ViewDelivery(V0)]})
        segments = rec.history(0).segments()
        assert [x.sn for x in segments[-1]] == [0]

    def test_installed_views_listed_in_order(self):
        rec = recorder_with(
            [], {0: [ViewDelivery(V0), ViewDelivery(V1)]}
        )
        assert [v.vid for v in rec.history(0).installed_views()] == [0, 1]
