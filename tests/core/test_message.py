"""Unit tests for message and view types."""

import pytest

from repro.core.message import (
    DataMessage,
    Envelope,
    InitMessage,
    MessageId,
    PredMessage,
    View,
    ViewDelivery,
)


class TestMessageId:
    def test_ordering_by_sender_then_sn(self):
        assert MessageId(0, 5) < MessageId(1, 0)
        assert MessageId(1, 0) < MessageId(1, 1)

    def test_equality_and_hash(self):
        assert MessageId(2, 3) == MessageId(2, 3)
        assert len({MessageId(2, 3), MessageId(2, 3)}) == 1

    def test_str(self):
        assert str(MessageId(2, 3)) == "2.3"


class TestView:
    def test_membership_operations(self):
        view = View(1, frozenset({0, 1, 2}))
        assert 1 in view
        assert 5 not in view
        assert len(view) == 3
        assert view.sorted_members == (0, 1, 2)

    def test_members_coerced_to_frozenset(self):
        view = View(0, {2, 1})  # type: ignore[arg-type]
        assert isinstance(view.members, frozenset)

    def test_majority(self):
        assert View(0, frozenset({0})).majority() == 1
        assert View(0, frozenset({0, 1})).majority() == 2
        assert View(0, frozenset({0, 1, 2})).majority() == 2
        assert View(0, frozenset(range(4))).majority() == 3
        assert View(0, frozenset(range(5))).majority() == 3

    def test_without(self):
        view = View(3, frozenset({0, 1, 2}))
        smaller = view.without(frozenset({1}))
        assert smaller.vid == 3
        assert smaller.members == frozenset({0, 2})

    def test_negative_vid_rejected(self):
        with pytest.raises(ValueError):
            View(-1, frozenset({0}))

    def test_views_hashable(self):
        assert len({View(0, frozenset({1})), View(0, frozenset({1}))}) == 1


class TestDataMessage:
    def test_accessors(self):
        msg = DataMessage(MessageId(4, 7), view_id=2, payload="p", annotation=9)
        assert msg.sender == 4
        assert msg.sn == 7
        assert msg.view_id == 2
        assert msg.payload == "p"
        assert msg.annotation == 9

    def test_frozen(self):
        msg = DataMessage(MessageId(0, 0), view_id=0)
        with pytest.raises(AttributeError):
            msg.payload = "nope"  # type: ignore[misc]

    def test_repr_mentions_id_and_view(self):
        msg = DataMessage(MessageId(1, 2), view_id=3)
        assert "1.2" in repr(msg) and "v3" in repr(msg)


class TestControlMessages:
    def test_view_delivery_wraps_view(self):
        view = View(2, frozenset({0, 1}))
        assert ViewDelivery(view).view is view

    def test_init_message_leave_coerced(self):
        init = InitMessage(0, leave={3})  # type: ignore[arg-type]
        assert isinstance(init.leave, frozenset)

    def test_init_default_leave_empty(self):
        assert InitMessage(0).leave == frozenset()

    def test_pred_message_holds_tuple(self):
        m = DataMessage(MessageId(0, 0), view_id=0)
        pred = PredMessage(0, (m,))
        assert pred.messages == (m,)

    def test_envelope_defaults(self):
        env = Envelope(stream="svs", body="x")
        assert env.instance is None
