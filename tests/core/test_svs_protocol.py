"""Unit/integration tests for the SVS protocol (Figure 1)."""

import pytest

from repro.core.message import DataMessage, View, ViewDelivery
from repro.core.obsolescence import EmptyRelation, ItemTagging
from repro.core.spec import check_all, check_classic_vs
from repro.gcs.stack import GroupStack, StackConfig


def build(n=3, relation=None, **kwargs):
    config = StackConfig(n=n, consensus=kwargs.pop("consensus", "oracle"), **kwargs)
    return GroupStack(relation or ItemTagging(), config)


def data_payloads(entries):
    return [e.payload for e in entries if isinstance(e, DataMessage)]


class TestBasicDelivery:
    def test_initial_view_is_first_delivery(self):
        stack = build()
        entry = stack[0].deliver()
        assert isinstance(entry, ViewDelivery)
        assert entry.view.vid == 0

    def test_multicast_reaches_all_members(self):
        stack = build()
        stack[0].multicast("hello", annotation=1)
        stack.run(until=0.1)
        for proc in stack:
            assert data_payloads(proc.drain()) == ["hello"]

    def test_sender_self_delivers(self):
        stack = build()
        stack[1].multicast("mine", annotation=1)
        assert data_payloads(stack[1].drain()) == ["mine"]

    def test_fifo_order_per_sender(self):
        stack = build()
        for i in range(10):
            stack[0].multicast(i, annotation=None)
        stack.run(until=0.1)
        assert data_payloads(stack[2].drain()) == list(range(10))

    def test_multiple_senders_interleave(self):
        stack = build()
        stack[0].multicast("a0", annotation=None)
        stack[1].multicast("b0", annotation=None)
        stack.run(until=0.1)
        delivered = data_payloads(stack[2].drain())
        assert set(delivered) == {"a0", "b0"}

    def test_deliver_returns_none_when_empty(self):
        stack = build()
        stack[0].drain()
        assert stack[0].deliver() is None

    def test_pending_counts_queue(self):
        stack = build()
        stack[0].multicast("x", annotation=None)
        assert stack[0].pending == 2  # initial view + data


class TestPurging:
    def test_newer_update_purges_queued_older(self):
        stack = build()
        stack[0].multicast("v1", annotation=7)
        stack[0].multicast("v2", annotation=7)
        stack.run(until=0.1)
        for proc in stack:
            assert data_payloads(proc.drain()) == ["v2"]

    def test_fast_consumer_sees_everything(self):
        # A member that delivers before the newer update arrives has
        # nothing to purge — purging only affects the slow.
        stack = build()
        stack[0].multicast("v1", annotation=7)
        stack.run(until=0.1)
        fast = data_payloads(stack[1].drain())
        stack[0].multicast("v2", annotation=7)
        stack.run(until=0.2)
        fast += data_payloads(stack[1].drain())
        assert fast == ["v1", "v2"]
        # The slow member (never drained) skipped v1.
        assert data_payloads(stack[2].drain()) == ["v2"]

    def test_unrelated_tags_not_purged(self):
        stack = build()
        stack[0].multicast("a", annotation=1)
        stack[0].multicast("b", annotation=2)
        stack.run(until=0.1)
        assert data_payloads(stack[2].drain()) == ["a", "b"]

    def test_empty_relation_never_purges(self):
        stack = build(relation=EmptyRelation())
        for i in range(5):
            stack[0].multicast(i, annotation=7)
        stack.run(until=0.1)
        assert data_payloads(stack[2].drain()) == list(range(5))

    def test_purge_counter_advances(self):
        stack = build()
        stack[0].multicast("v1", annotation=7)
        stack[0].multicast("v2", annotation=7)
        stack.run(until=0.1)
        assert stack[2].purge_count == 1


class TestMulticastGuards:
    def test_multicast_while_blocked_returns_none(self):
        stack = build()
        stack[0].trigger_view_change()
        # Run just past the local INIT (blocked) but before the remote
        # PREDs return (network latency 1 ms).
        stack.run(until=0.0005)
        assert stack[0].blocked
        assert stack[0].multicast("nope", annotation=None) is None

    def test_multicast_after_crash_returns_none(self):
        stack = build()
        stack.crash(0)
        assert stack[0].multicast("nope", annotation=None) is None

    def test_multicast_resumes_after_view_change(self):
        stack = build()
        stack[0].trigger_view_change()
        stack.run(until=2.0)
        assert not stack[0].blocked
        assert stack[0].multicast("again", annotation=None) is not None


class TestViewChanges:
    def test_view_change_without_membership_change(self):
        stack = build()
        stack[1].trigger_view_change()
        stack.run(until=2.0)
        for proc in stack:
            assert proc.cv.vid == 1
            assert proc.cv.members == frozenset({0, 1, 2})

    def test_voluntary_leave(self):
        stack = build()
        stack[2].trigger_view_change(leave=(2,))
        stack.run(until=2.0)
        assert stack[0].cv.members == frozenset({0, 1})
        assert stack[2].excluded

    def test_crashed_member_removed(self):
        stack = build(n=4)
        stack.crash(3)
        stack.run(until=0.5)
        stack[0].trigger_view_change()
        stack.run(until=3.0)
        for pid in (0, 1, 2):
            assert stack[pid].cv.members == frozenset({0, 1, 2})

    def test_messages_before_change_delivered_before_view(self):
        stack = build()
        stack[0].multicast("pre", annotation=None)
        stack[0].trigger_view_change()
        stack.run(until=2.0)
        entries = stack[2].drain()
        kinds = [
            ("view", e.view.vid) if isinstance(e, ViewDelivery) else ("data", e.payload)
            for e in entries
        ]
        assert kinds.index(("data", "pre")) < kinds.index(("view", 1))

    def test_in_flight_message_recovered_by_flush(self):
        """A message dropped at a blocked receiver must be re-delivered by
        the installation flush (sender participates in the next view)."""
        stack = build(latency=0.05)  # slow network: message in flight
        stack[0].multicast("flighty", annotation=None)
        # Receiver 2 blocks before the data arrives (INIT beats the data
        # because we trigger it locally at process 2).
        stack[2].trigger_view_change()
        stack.run(until=3.0)
        assert "flighty" in data_payloads(stack[2].drain())

    def test_consecutive_view_changes(self):
        stack = build()
        stack[0].trigger_view_change()
        stack.run(until=2.0)
        stack[1].trigger_view_change()
        stack.run(until=4.0)
        assert all(p.cv.vid == 2 for p in stack)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_new_view_messages_tagged_with_new_view(self):
        stack = build()
        stack[0].trigger_view_change()
        stack.run(until=2.0)
        msg = stack[0].multicast("fresh", annotation=None)
        assert msg.view_id == 1

    def test_stale_view_data_dropped(self):
        """Data tagged with an old view must not be accepted after the
        receiver has installed a newer one."""
        stack = build(latency=0.2)
        stack[0].multicast("stale", annotation=None)
        stack[1].trigger_view_change()
        stack.run(until=5.0)
        # Nobody delivers "stale" twice and safety holds regardless.
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []


class TestExclusion:
    def test_excluded_process_stops_participating(self):
        stack = build()
        stack[0].trigger_view_change(leave=(2,))
        stack.run(until=2.0)
        assert stack[2].excluded
        assert stack[2].multicast("zombie", annotation=None) is None

    def test_exclusion_listener_fires(self):
        stack = build()
        stack[0].trigger_view_change(leave=(1,))
        stack.run(until=2.0)
        assert stack.recorder.excluded.get(1) is not None

    def test_majority_required_for_view_change(self):
        # With 2 of 3 crashed there is no majority: the survivor stays
        # blocked rather than installing a bogus view.
        stack = build(n=3)
        stack.crash(1)
        stack.crash(2)
        stack.run(until=0.5)
        stack[0].trigger_view_change()
        stack.run(until=3.0)
        assert stack[0].cv.vid == 0
        assert stack[0].blocked


class TestSafetyUnderLoad:
    @pytest.mark.parametrize("consensus", ["oracle", "chandra-toueg"])
    def test_spec_holds_with_slow_member_and_view_change(self, consensus):
        stack = build(consensus=consensus)
        # Multicast a stream with heavy obsolescence while member 2 never
        # consumes; then reconfigure.
        for i in range(30):
            stack[0].multicast(("item", i % 3, i), annotation=i % 3)
        stack.run(until=0.5)
        stack[1].trigger_view_change()
        stack.run(until=3.0)
        for i in range(30, 40):
            stack[0].multicast(("item", i % 3, i), annotation=i % 3)
        stack.run(until=4.0)
        stack.drain_all()
        violations = check_all(stack.recorder, stack.relation)
        assert violations == []

    def test_classic_vs_with_empty_relation(self):
        stack = build(relation=EmptyRelation())
        for i in range(20):
            stack[0].multicast(i, annotation=None)
        stack.run(until=0.5)
        stack[2].trigger_view_change()
        stack.run(until=3.0)
        stack.drain_all()
        assert check_classic_vs(stack.recorder) == []
        assert check_all(stack.recorder, stack.relation) == []
