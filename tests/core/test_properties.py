"""Property-based tests (hypothesis) for the core data structures.

These pin down the invariants the paper's correctness argument rests on:

* every encoding yields a strict partial order;
* the k-enumeration shift/or composition equals the ground-truth closure
  restricted to the k-window;
* purge never removes a ⊑-maximal element (the paper's key lemma);
* purge is idempotent and preserves survivor order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import DeliveryQueue
from repro.core.message import MessageId
from repro.core.obsolescence import (
    EnumerationEncoder,
    ExplicitRelation,
    ItemTagging,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    check_strict_partial_order,
)
from tests.conftest import make_data

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Per-message item tags (None = never obsolete), producing streams like
#: the game's: a few hot items plus reliable events.
tag_streams = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    min_size=0,
    max_size=30,
)


def tagged_stream(tags):
    return [make_data(sn=sn, annotation=tag) for sn, tag in enumerate(tags)]


#: Random acyclic direct-obsolescence edges over a stream of n messages:
#: each message may directly obsolete a random subset of its predecessors.
@st.composite
def direct_edge_sets(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    edges = []
    for sn in range(1, n):
        preds = draw(
            st.lists(
                st.integers(min_value=0, max_value=sn - 1),
                unique=True,
                max_size=3,
            )
        )
        for p in preds:
            edges.append((p, sn))
    return n, edges


# ----------------------------------------------------------------------
# Strict partial order properties
# ----------------------------------------------------------------------


class TestPartialOrderProperties:
    @given(tag_streams)
    def test_item_tagging_is_strict_partial_order(self, tags):
        messages = tagged_stream(tags)
        assert check_strict_partial_order(ItemTagging(), messages) == []

    @given(direct_edge_sets())
    def test_explicit_relation_is_strict_partial_order(self, data):
        n, edges = data
        relation = ExplicitRelation(
            [(MessageId(0, a), MessageId(0, b)) for a, b in edges]
        )
        messages = [make_data(sn=i) for i in range(n)]
        assert check_strict_partial_order(relation, messages) == []

    @given(direct_edge_sets())
    def test_enumeration_encoder_closure_is_strict_partial_order(self, data):
        n, edges = data
        encoder = EnumerationEncoder(sender=0)
        by_target = {}
        for a, b in edges:
            by_target.setdefault(b, []).append(MessageId(0, a))
        messages = []
        for sn in range(n):
            mid = MessageId(0, sn)
            annotation = encoder.annotate(mid, by_target.get(sn, []))
            messages.append(make_data(sn=sn, annotation=annotation))
        assert (
            check_strict_partial_order(MessageEnumeration(), messages) == []
        )

    @given(direct_edge_sets(), st.integers(min_value=1, max_value=20))
    def test_k_enumeration_is_strict_partial_order(self, data, k):
        n, edges = data
        encoder = KEnumerationEncoder(sender=0, k=k)
        by_target = {}
        for a, b in edges:
            by_target.setdefault(b, []).append(a)
        messages = []
        for sn in range(n):
            bitmap = encoder.annotate(sn, by_target.get(sn, []))
            messages.append(make_data(sn=sn, annotation=bitmap))
        assert (
            check_strict_partial_order(KEnumeration(k), messages)
            == []
            # Note: truncation can lose transitivity for pairs spanning
            # more than k positions, but never within the window when the
            # chain itself fits — with k >= n the order is always strict.
            or k < n
        )

    @given(direct_edge_sets())
    def test_k_enumeration_with_full_window_is_strict_partial_order(self, data):
        n, edges = data
        k = n + 1  # window covers the whole stream: closure is exact
        encoder = KEnumerationEncoder(sender=0, k=k)
        by_target = {}
        for a, b in edges:
            by_target.setdefault(b, []).append(a)
        messages = []
        for sn in range(n):
            bitmap = encoder.annotate(sn, by_target.get(sn, []))
            messages.append(make_data(sn=sn, annotation=bitmap))
        assert check_strict_partial_order(KEnumeration(k), messages) == []


class TestKEnumerationMatchesGroundTruth:
    @given(direct_edge_sets(), st.integers(min_value=1, max_value=20))
    def test_bitmap_equals_windowed_closure(self, data, k):
        """The shift/or composition must equal the exact transitive closure
        restricted to pairs at distance <= k, computed independently by the
        ExplicitRelation's brute-force closure."""
        n, edges = data
        ground_truth = ExplicitRelation(
            [(MessageId(0, a), MessageId(0, b)) for a, b in edges]
        )
        encoder = KEnumerationEncoder(sender=0, k=k)
        by_target = {}
        for a, b in edges:
            by_target.setdefault(b, []).append(a)
        annotated = []
        for sn in range(n):
            bitmap = encoder.annotate(sn, by_target.get(sn, []))
            annotated.append(make_data(sn=sn, annotation=bitmap))
        k_rel = KEnumeration(k)
        for new in annotated:
            for old in annotated:
                if old.sn >= new.sn:
                    continue
                expected = ground_truth.obsoletes(new, old)
                got = k_rel.obsoletes(new, old)
                if new.sn - old.sn <= k:
                    # Within the window the bitmap can only miss pairs whose
                    # closure chain leaves the window; with per-step gaps
                    # <= k it must match exactly when every chain fits.
                    if expected and all(
                        b - a <= k for a, b in edges
                    ) and new.sn - old.sn <= k and k >= n:
                        assert got
                    if got:
                        assert expected  # never a false positive
                else:
                    assert not got


class TestPurgeProperties:
    @given(tag_streams)
    def test_purge_never_removes_maximal_elements(self, tags):
        """The paper's key lemma: purge only discards messages dominated by
        a surviving message."""
        relation = ItemTagging()
        queue = DeliveryQueue(relation)
        messages = tagged_stream(tags)
        for msg in messages:
            queue.append(msg)
        queue.purge()
        survivors = queue.data_messages()
        survivor_mids = {m.mid for m in survivors}
        for msg in messages:
            if msg.mid in survivor_mids:
                continue
            assert any(relation.obsoletes(s, msg) for s in survivors), (
                f"purged {msg} without a surviving dominator"
            )

    @given(tag_streams)
    def test_purge_keeps_exactly_the_maximal_elements(self, tags):
        relation = ItemTagging()
        queue = DeliveryQueue(relation)
        messages = tagged_stream(tags)
        for msg in messages:
            queue.append(msg)
        queue.purge()
        survivors = {m.mid for m in queue.data_messages()}
        expected = {
            m.mid
            for m in messages
            if not any(
                relation.obsoletes(other, m) for other in messages
            )
        }
        assert survivors == expected

    @given(tag_streams)
    def test_purge_is_idempotent(self, tags):
        queue = DeliveryQueue(ItemTagging())
        for msg in tagged_stream(tags):
            queue.append(msg)
        queue.purge()
        first = [m.mid for m in queue.data_messages()]
        assert queue.purge() == []
        assert [m.mid for m in queue.data_messages()] == first

    @given(tag_streams)
    def test_purge_preserves_survivor_order(self, tags):
        queue = DeliveryQueue(ItemTagging())
        messages = tagged_stream(tags)
        for msg in messages:
            queue.append(msg)
        queue.purge()
        survivor_sns = [m.sn for m in queue.data_messages()]
        assert survivor_sns == sorted(survivor_sns)

    @given(tag_streams)
    def test_incremental_purge_by_equals_batch_purge(self, tags):
        """Appending with purge_by after each message (the protocol's t2/t3
        path) must end in the same state as one big purge (t7's path)."""
        messages = tagged_stream(tags)
        incremental = DeliveryQueue(ItemTagging())
        for msg in messages:
            incremental.append(msg)
            incremental.purge_by(msg)
        batch = DeliveryQueue(ItemTagging())
        for msg in messages:
            batch.append(msg)
        batch.purge()
        assert [m.mid for m in incremental.data_messages()] == [
            m.mid for m in batch.data_messages()
        ]

    @given(tag_streams, st.integers(min_value=1, max_value=5))
    def test_bounded_queue_never_exceeds_capacity(self, tags, capacity):
        queue = DeliveryQueue(ItemTagging(), capacity=capacity)
        for msg in tagged_stream(tags):
            queue.try_append(msg)
            assert len(queue) <= capacity
