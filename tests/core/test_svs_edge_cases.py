"""Adversarial edge cases for the SVS protocol.

These target the narrow windows where the Figure 1 algorithm is easiest
to get wrong: concurrent initiators, traffic racing a view change,
purge/flush interactions, and the k-enumeration truncation hazard.
"""

import pytest

from repro.core.buffers import DeliveryQueue
from repro.core.message import DataMessage, MessageId, ViewDelivery
from repro.core.obsolescence import ItemTagging, KEnumeration, KEnumerationEncoder
from repro.core.spec import check_all
from repro.gcs.stack import GroupStack, StackConfig
from tests.conftest import make_data


def build(n=3, **kwargs):
    config = StackConfig(n=n, consensus=kwargs.pop("consensus", "oracle"), **kwargs)
    return GroupStack(ItemTagging(), config)


class TestConcurrentInitiators:
    def test_two_simultaneous_initiators(self):
        stack = build()
        stack[0].trigger_view_change()
        stack[1].trigger_view_change()
        stack.settle(max_time=10.0)
        # Exactly one view change results (the INIT flood is idempotent
        # once blocked); everyone lands in the same view 1.
        assert all(p.cv.vid == 1 for p in stack)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_conflicting_leave_sets(self):
        """Two initiators request different leaves: consensus picks one
        proposal; membership is consistent either way."""
        stack = build(n=4)
        stack[0].trigger_view_change(leave=(3,))
        stack[1].trigger_view_change(leave=(2,))
        stack.settle(max_time=10.0)
        views = {
            p.cv.members
            for p in stack
            if not p.crashed and not p.excluded
        }
        assert len(views) == 1
        members = views.pop()
        # One of the two leave requests won; at least one of {2, 3} left.
        assert members in (frozenset({0, 1, 2}), frozenset({0, 1, 3}))
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_initiator_crashes_after_init(self):
        """The INIT flood must carry the change through even if the
        initiator dies right after sending — before processing its own
        INIT, so it never contributes a PRED and drops out of the view."""
        stack = build(n=4)
        stack[1].trigger_view_change()
        stack[1].crash()  # INIT is on the wire; no PRED will follow
        stack.settle(max_time=15.0)
        survivors = [p for p in stack if not p.crashed]
        assert all(p.cv.vid == 1 for p in survivors)
        assert all(1 not in p.cv.members for p in survivors)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_initiator_crashes_after_sending_pred(self):
        """If the initiator's PRED made it out before the crash, it may
        legitimately be included in the next view; either way the
        survivors agree and safety holds."""
        stack = build(n=4)
        stack[1].trigger_view_change()
        stack.run(until=0.003)  # PRED exchanged
        stack[1].crash()
        stack.settle(max_time=15.0)
        survivors = [p for p in stack if not p.crashed]
        views = {p.cv.members for p in survivors if not p.excluded}
        assert len(views) == 1
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []


class TestTrafficRacingViewChange:
    def test_burst_straddling_the_change(self):
        stack = build(latency=0.01)
        sim = stack.sim
        for i in range(40):
            sim.schedule_at(
                0.002 * i,
                lambda i=i: stack[0].multicast(("u", i), annotation=i % 2),
            )
        sim.schedule_at(0.04, stack[2].trigger_view_change)
        for i in range(40, 60):
            sim.schedule_at(
                0.5 + 0.002 * (i - 40),
                lambda i=i: stack[0].multicast(("u", i), annotation=i % 2),
            )
        stack.settle(max_time=20.0)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_sender_blocked_messages_eventually_flow(self):
        """Multicasts refused during the change are the application's to
        retry; after installation the guard opens again and FIFO holds."""
        stack = build()
        stack[0].multicast("before", annotation=None)
        stack[0].trigger_view_change()
        stack.run(until=0.0005)
        assert stack[0].multicast("during", annotation=None) is None
        stack.settle(max_time=10.0)
        assert stack[0].multicast("after", annotation=None) is not None
        stack.run(until=stack.sim.now + 1.0)
        stack.drain_all()
        history = [
            e.payload
            for e in stack.recorder.history(1).events
            if isinstance(e, DataMessage)
        ]
        assert history == ["before", "after"]
        assert check_all(stack.recorder, stack.relation) == []

    def test_back_to_back_view_changes_with_purging_traffic(self):
        stack = build(consensus="chandra-toueg")
        sim = stack.sim
        for i in range(80):
            sim.schedule_at(
                0.003 * i,
                lambda i=i: stack[0].multicast(("u", i), annotation=i % 2),
            )
        sim.schedule_at(0.06, stack[1].trigger_view_change)
        sim.schedule_at(0.12, stack[2].trigger_view_change)
        sim.schedule_at(0.18, stack[0].trigger_view_change)
        stack.settle(max_time=30.0)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []
        vids = {p.cv.vid for p in stack}
        assert vids == {3}


class TestPurgeFlushInteraction:
    def test_slow_member_queue_purged_then_flushed(self):
        """A slow member whose queue was heavily purged must not
        re-deliver obsolete messages from the flush set (the deep-coverage
        regression found by the spec checker)."""
        stack = build()
        sim = stack.sim
        # Heavy same-item traffic: the slow member purges almost all of it.
        for i in range(60):
            sim.schedule_at(
                0.002 * i, lambda i=i: stack[0].multicast(("x", i), annotation=7)
            )
        # Member 1 consumes everything promptly (so its delivered set holds
        # many messages the slow member purged).
        def fast():
            stack[1].drain()
            sim.schedule(0.002, fast)

        sim.schedule(0.002, fast)
        sim.schedule_at(0.2, stack[0].trigger_view_change)
        stack.settle(max_time=20.0)
        stack.drain_all()
        violations = check_all(stack.recorder, stack.relation)
        assert violations == []

    def test_view_notification_never_overtaken(self):
        """Entries after a VIEW delivery must all belong to the new view."""
        stack = build()
        sim = stack.sim
        for i in range(30):
            sim.schedule_at(
                0.004 * i, lambda i=i: stack[0].multicast(("u", i), annotation=None)
            )
        sim.schedule_at(0.06, stack[1].trigger_view_change)
        stack.settle(max_time=20.0)
        for i in range(30, 40):
            stack[0].multicast(("u", i), annotation=None)
        stack.run(until=sim.now + 1.0)
        stack.drain_all()
        for history in stack.recorder.histories.values():
            current_vid = -1
            for event in history.events:
                if isinstance(event, ViewDelivery):
                    current_vid = event.view.vid
                elif current_vid >= 0:
                    assert event.view_id <= current_vid
                    # Old-view data may trail (flushed), but new-view data
                    # must never precede its VIEW notification.


class TestKTruncationHazard:
    def test_small_k_breaks_coverage_chains_in_queue(self):
        """The documented hazard: with k too small the encoded relation is
        not transitive, and the Figure 1 fixpoint purge can strand a
        message whose only coverers were themselves purged.

        Chain m0 ≺ m1 ≺ m2 at unit distances with k=1: the relation knows
        (m0,m1) and (m1,m2) but not (m0,m2)."""
        encoder = KEnumerationEncoder(sender=0, k=1)
        bitmaps = [encoder.annotate(sn, [sn - 1] if sn else []) for sn in range(3)]
        messages = [
            make_data(sn=sn, annotation=bitmaps[sn]) for sn in range(3)
        ]
        relation = KEnumeration(k=1)
        assert relation.obsoletes(messages[1], messages[0])
        assert relation.obsoletes(messages[2], messages[1])
        assert not relation.obsoletes(messages[2], messages[0])  # truncated!

        queue = DeliveryQueue(relation)
        for msg in messages:
            queue.append(msg)
        removed = queue.purge()
        survivors = {m.sn for m in queue.data_messages()}
        # m0 and m1 are both dominated in the original set, so the
        # simultaneous purge removes both — leaving m0 covered only by the
        # *removed* m1.  With k >= 2 the closure would make m2 cover m0.
        assert survivors == {2}
        assert {m.sn for m in removed} == {0, 1}

    def test_paper_recommended_k_preserves_chains(self):
        encoder = KEnumerationEncoder(sender=0, k=4)
        bitmaps = [encoder.annotate(sn, [sn - 1] if sn else []) for sn in range(3)]
        messages = [make_data(sn=sn, annotation=bitmaps[sn]) for sn in range(3)]
        relation = KEnumeration(k=4)
        assert relation.obsoletes(messages[2], messages[0])  # closure intact
