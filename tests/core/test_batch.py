"""Unit tests for multi-item batches (Section 4.1 / Figure 2)."""

import pytest

from repro.core.batch import BatchAssembler, BatchEncoder, BatchMessagePayload, ItemUpdate
from repro.core.buffers import DeliveryQueue
from repro.core.obsolescence import KEnumeration, KEnumerationEncoder


def build_encoder(k=32, piggyback=True):
    return BatchEncoder(
        KEnumerationEncoder(sender=0, k=k), commit_piggybacked=piggyback
    )


class TestEncoding:
    def test_piggybacked_commit_is_last_update(self):
        enc = build_encoder()
        msgs = enc.encode_batch([ItemUpdate(1, "a"), ItemUpdate(2, "b")])
        assert len(msgs) == 2
        assert not msgs[0].payload.commit
        assert msgs[1].payload.commit
        assert msgs[1].payload.update == ItemUpdate(2, "b")

    def test_separate_commit_message(self):
        enc = build_encoder(piggyback=False)
        msgs = enc.encode_batch([ItemUpdate(1, "a")])
        assert len(msgs) == 2
        assert msgs[1].payload.update is None
        assert msgs[1].payload.commit

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            build_encoder().encode_batch([])

    def test_interior_updates_never_obsolete_anything(self):
        enc = build_encoder()
        enc.encode_batch([ItemUpdate(1, "a"), ItemUpdate(2, "b")])
        msgs = enc.encode_batch([ItemUpdate(1, "a2"), ItemUpdate(2, "b2")])
        interior = msgs[0]
        assert interior.annotation == 0

    def test_sequence_numbers_consecutive(self):
        enc = build_encoder()
        first = enc.encode_batch([ItemUpdate(1, "a"), ItemUpdate(2, "b")])
        second = enc.encode_batch([ItemUpdate(3, "c")])
        sns = [m.sn for m in first + second]
        assert sns == list(range(len(sns)))

    def test_batch_ids_increment(self):
        enc = build_encoder()
        a = enc.encode_batch([ItemUpdate(1, "x")])
        b = enc.encode_batch([ItemUpdate(1, "y")])
        assert a[0].payload.batch_id != b[0].payload.batch_id


class TestCommitObsolescence:
    def test_figure_2_scenario(self):
        """U(a,1) U(b,1) C(1)  then  U(b,2) U(c,2) C(2):
        C(2) — not U(b,2) — makes U(b,1) obsolete."""
        enc = build_encoder(piggyback=False)
        rel = KEnumeration(k=32)
        batch1 = enc.encode_batch([ItemUpdate("a", 1), ItemUpdate("b", 1)])
        batch2 = enc.encode_batch([ItemUpdate("b", 2), ItemUpdate("c", 2)])
        u_a1, u_b1, c1 = batch1
        u_b2, u_c2, c2 = batch2
        # The second update to b does NOT itself obsolete U(b,1)...
        assert not rel.obsoletes(u_b2, u_b1)
        # ...the commit of the second batch does.
        assert rel.obsoletes(c2, u_b1)
        # Unrelated items are untouched.
        assert not rel.obsoletes(c2, u_a1)

    def test_commit_does_not_obsolete_own_batch(self):
        enc = build_encoder(piggyback=False)
        rel = KEnumeration(k=32)
        u_a, u_b, commit = enc.encode_batch(
            [ItemUpdate("a", 1), ItemUpdate("b", 1)]
        )
        assert not rel.obsoletes(commit, u_a)
        assert not rel.obsoletes(commit, u_b)

    def test_piggybacked_commit_obsoletes_prior_interior_updates_only(self):
        enc = build_encoder(piggyback=True)
        rel = KEnumeration(k=32)
        batch1 = enc.encode_batch([ItemUpdate("a", 1), ItemUpdate("b", 1)])
        batch2 = enc.encode_batch([ItemUpdate("a", 2), ItemUpdate("b", 2)])
        commit2 = batch2[-1]
        # The interior update of batch 1 is covered by the new commit...
        assert rel.obsoletes(commit2, batch1[0])
        # ...but batch 1's piggybacked commit is exempt: purging it would
        # strand U(a,1) uncommitted (a torn batch).
        assert not rel.obsoletes(commit2, batch1[1])

    def test_commits_are_never_obsolescence_targets(self):
        # Single-update piggybacked batches: every message is a commit, so
        # nothing may ever be purged.
        enc = build_encoder(piggyback=True)
        rel = KEnumeration(k=32)
        b1 = enc.encode_batch([ItemUpdate("a", 1)])
        b2 = enc.encode_batch([ItemUpdate("a", 2)])
        assert not rel.obsoletes(b2[-1], b1[-1])

    def test_chained_batches_are_commit_anchored(self):
        """Each interior update is obsoleted by its item's *next* commit
        (which is never purgeable), so coverage chains have length one —
        the encoding is trivially transitive because commits are never on
        the left of the relation."""
        enc = build_encoder(piggyback=False)
        rel = KEnumeration(k=32)
        b1 = enc.encode_batch([ItemUpdate("a", 1)])
        b2 = enc.encode_batch([ItemUpdate("a", 2)])
        b3 = enc.encode_batch([ItemUpdate("a", 3)])
        # Every interior update is covered by the following batch's commit.
        assert rel.obsoletes(b2[-1], b1[0])
        assert rel.obsoletes(b3[-1], b2[0])
        # The commit control messages themselves are never obsolete, so no
        # chain x ≺ y ≺ z can form.
        assert not rel.obsoletes(b3[-1], b1[-1])
        assert not rel.obsoletes(b3[-1], b2[-1])


class TestAssembler:
    def test_atomic_delivery_on_commit(self):
        enc = build_encoder(piggyback=False)
        asm = BatchAssembler()
        msgs = enc.encode_batch([ItemUpdate(1, "a"), ItemUpdate(2, "b")])
        assert asm.feed(msgs[0]) is None
        assert asm.feed(msgs[1]) is None
        result = asm.feed(msgs[2])
        assert result == [ItemUpdate(1, "a"), ItemUpdate(2, "b")]
        assert asm.open_batches == 0

    def test_piggybacked_assembly(self):
        enc = build_encoder(piggyback=True)
        asm = BatchAssembler()
        msgs = enc.encode_batch([ItemUpdate(1, "a"), ItemUpdate(2, "b")])
        assert asm.feed(msgs[0]) is None
        assert asm.feed(msgs[1]) == [ItemUpdate(1, "a"), ItemUpdate(2, "b")]

    def test_interleaved_batches_by_id(self):
        enc = build_encoder(piggyback=False)
        b1 = enc.encode_batch([ItemUpdate(1, "a")])
        b2 = enc.encode_batch([ItemUpdate(2, "b")])
        asm = BatchAssembler()
        asm.feed(b1[0])
        asm.feed(b2[0])
        assert asm.open_batches == 2
        assert asm.feed(b2[1]) == [ItemUpdate(2, "b")]
        assert asm.feed(b1[1]) == [ItemUpdate(1, "a")]

    def test_non_batch_payload_rejected(self):
        from tests.conftest import make_data

        asm = BatchAssembler()
        with pytest.raises(TypeError):
            asm.feed(make_data(payload="raw"))


class TestAtomicityThroughPurging:
    def test_purged_queue_still_yields_atomic_batches(self):
        """Run two overwriting batches through a purging queue: whatever is
        delivered must commit whole batches with the newest values."""
        enc = build_encoder(piggyback=True, k=32)
        rel = KEnumeration(k=32)
        queue = DeliveryQueue(rel)
        batch1 = enc.encode_batch([ItemUpdate("a", 1), ItemUpdate("b", 1)])
        batch2 = enc.encode_batch([ItemUpdate("a", 2), ItemUpdate("b", 2)])
        for msg in batch1 + batch2:
            queue.append(msg)
            queue.purge_by(msg)
        asm = BatchAssembler()
        committed = []
        while queue:
            result = asm.feed(queue.pop())
            if result is not None:
                committed.append(result)
        # Batch 1's interior update U(a,1) was purged; its piggybacked
        # commit U(b,1) survives (commits are exempt) and commits the
        # remaining part, which batch 2 then supersedes item by item.
        assert committed == [
            [ItemUpdate("b", 1)],
            [ItemUpdate("a", 2), ItemUpdate("b", 2)],
        ]
        assert asm.open_batches == 0

    def test_final_state_converges_despite_partial_application(self):
        """Apply committed batches to a dict: the purged path must reach
        exactly the same final state as the unpurged path."""
        def final_state(purge: bool):
            enc = build_encoder(piggyback=True, k=32)
            rel = KEnumeration(k=32)
            queue = DeliveryQueue(rel)
            batches = [
                [ItemUpdate("a", 1), ItemUpdate("b", 1)],
                [ItemUpdate("b", 2), ItemUpdate("c", 2)],
                [ItemUpdate("a", 3), ItemUpdate("b", 3)],
            ]
            for batch in batches:
                for msg in enc.encode_batch(batch):
                    queue.append(msg)
                    if purge:
                        queue.purge_by(msg)
            state = {}
            asm = BatchAssembler()
            while queue:
                result = asm.feed(queue.pop())
                if result:
                    for update in result:
                        state[update.item] = update.value
            return state

        assert final_state(purge=True) == final_state(purge=False)
