"""Property tests: the purge index must decide exactly like the naive scan.

Kernel v2 gave :class:`~repro.core.buffers.DeliveryQueue` an obsolescence
index (``relation.make_index()``) so purges resolve by per-key lookup
instead of a linear ``obsoletes`` scan.  The index is an optimisation —
never a semantics change — so for **every registered relation** and any
reachable queue state the indexed queue and a ``use_index=False`` queue
must agree on:

* ``purge_by(new)`` — the exact set (and queue order) of removed messages;
* ``purge()``      — the full simultaneous pass;
* ``covered(msg)`` — the t3 coverage test;
* the queue contents and lifetime stats after any operation sequence.

Annotations are produced by the representation's own encoder (bitmaps via
:class:`KEnumerationEncoder`, enumeration sets via
:class:`EnumerationEncoder`, item tags directly), so the tested states are
the ones real senders generate — plus adversarial hand-rolled ones.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import DeliveryQueue
from repro.core.message import DataMessage, MessageId, View, ViewDelivery
from repro.core.obsolescence import (
    EnumerationEncoder,
    KEnumerationEncoder,
)
from repro.registry import relations as relation_registry

K = 4  # deliberately small: window truncation edge cases get exercised

#: Every relation registered in the registry, with small-k overrides so
#: the k-enumeration window actually truncates at test sizes.
RELATION_SPECS = [
    ("empty", {}),
    ("item-tagging", {}),
    ("message-enumeration", {}),
    ("k-enumeration", {"k": K}),
]

assert {name for name, _ in RELATION_SPECS} == set(
    relation_registry.names()
), "a newly registered relation must be added to the purge-index property tests"


# ----------------------------------------------------------------------
# Stream generation: encoder-faithful annotated messages
# ----------------------------------------------------------------------


def _annotate_stream(name, raw):
    """Turn (sender, tag, direct_predecessor_distances, view) tuples into
    DataMessages annotated the way the representation's encoder would."""
    sns = {}
    messages = []
    enum_encoders = {}
    kenum_encoders = {}
    history = []  # all (mid, tag) so far, any sender
    for sender, tag, distances, view_id in raw:
        sn = sns.get(sender, 0)
        sns[sender] = sn + 1
        mid = MessageId(sender, sn)
        if name == "empty":
            annotation = None
        elif name == "item-tagging":
            annotation = tag
        elif name == "k-enumeration":
            encoder = kenum_encoders.setdefault(
                sender, KEnumerationEncoder(sender, K)
            )
            direct = [sn - d for d in distances if sn - d >= 0]
            annotation = encoder.annotate(sn, direct)
        else:  # message-enumeration
            encoder = enum_encoders.setdefault(
                sender, EnumerationEncoder(sender)
            )
            # Enumerate same-tag predecessors from any sender (the one
            # representation that can express cross-sender obsolescence).
            direct = [m for m, t in history if t == tag and t is not None][-3:]
            annotation = encoder.annotate(mid, direct)
        history.append((mid, tag))
        messages.append(
            DataMessage(mid=mid, view_id=view_id, payload=None, annotation=annotation)
        )
    return messages


raw_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # sender
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),  # tag
        st.lists(  # direct predecessor distances (k-enumeration)
            st.integers(min_value=1, max_value=K + 2), max_size=3
        ),
        st.integers(min_value=0, max_value=1),  # view id
    ),
    min_size=0,
    max_size=14,
)

# Which messages of the stream are appended vs offered as the probe.
op_seed = st.integers(min_value=0, max_value=2**31 - 1)


def _paired_queues(name, params, capacity=None):
    relation = relation_registry.create(name, **params)
    indexed = DeliveryQueue(relation, capacity=capacity, use_index=True)
    naive = DeliveryQueue(relation, capacity=capacity, use_index=False)
    return relation, indexed, naive


def _queue_state(queue):
    return (
        [m.mid if isinstance(m, DataMessage) else ("view", m.view.vid) for m in queue],
        queue.stats.appended,
        queue.stats.purged,
        queue.stats.popped,
        queue.stats.rejected,
    )


class TestPurgeDecisionsMatchNaiveScan:
    @settings(max_examples=60, deadline=None)
    @given(raw=raw_streams)
    def test_purge_by_identical(self, raw):
        for name, params in RELATION_SPECS:
            relation, indexed, naive = _paired_queues(name, params)
            messages = _annotate_stream(name, raw)
            for msg in messages[:-1]:
                indexed.append(msg)
                naive.append(msg)
            if not messages:
                return
            probe = messages[-1]
            removed_indexed = indexed.purge_by(probe)
            removed_naive = naive.purge_by(probe)
            assert removed_indexed == removed_naive, (name, probe)
            assert _queue_state(indexed) == _queue_state(naive), name

    @settings(max_examples=60, deadline=None)
    @given(raw=raw_streams)
    def test_full_purge_identical(self, raw):
        for name, params in RELATION_SPECS:
            relation, indexed, naive = _paired_queues(name, params)
            for msg in _annotate_stream(name, raw):
                indexed.append(msg)
                naive.append(msg)
            assert indexed.purge() == naive.purge(), name
            assert _queue_state(indexed) == _queue_state(naive), name

    @settings(max_examples=60, deadline=None)
    @given(raw=raw_streams)
    def test_covered_identical(self, raw):
        for name, params in RELATION_SPECS:
            relation, indexed, naive = _paired_queues(name, params)
            messages = _annotate_stream(name, raw)
            for msg in messages[:-1]:
                indexed.append(msg)
                naive.append(msg)
            for msg in messages:  # queued and un-queued probes alike
                assert indexed.covered(msg) == naive.covered(msg), (name, msg)

    @settings(max_examples=40, deadline=None)
    @given(raw=raw_streams, seed=op_seed)
    def test_operation_sequences_identical(self, raw, seed):
        """Random append/try_append/pop/purge interleavings on a bounded
        queue keep the two implementations in lockstep."""
        import random

        rng = random.Random(seed)
        for name, params in RELATION_SPECS:
            relation, indexed, naive = _paired_queues(name, params, capacity=5)
            view = View(0, frozenset({0, 1, 2}))
            for msg in _annotate_stream(name, raw):
                op = rng.random()
                if op < 0.55:
                    assert indexed.try_append(msg) == naive.try_append(msg), name
                elif op < 0.7 and indexed:
                    assert indexed.pop() == naive.pop(), name
                elif op < 0.85:
                    assert indexed.purge() == naive.purge(), name
                else:
                    entry = ViewDelivery(view)
                    assert indexed.try_append(entry) == naive.try_append(entry)
                assert _queue_state(indexed) == _queue_state(naive), name


class TestAdversarialAnnotations:
    """Hand-rolled annotations the encoders would never emit."""

    def test_kenum_bitmap_with_bits_beyond_k(self):
        relation, indexed, naive = _paired_queues("k-enumeration", {"k": K})
        old = DataMessage(MessageId(0, 0), view_id=0)
        mid_msg = DataMessage(MessageId(0, 3), view_id=0, annotation=0b100)
        for queue in (indexed, naive):
            queue.append(old)
            queue.append(mid_msg)
        # Bit K+3 set: distance beyond the window must be ignored by both.
        probe = DataMessage(
            MessageId(0, K + 3), view_id=0, annotation=(1 << (K + 2)) | 0b1
        )
        assert indexed.purge_by(probe) == naive.purge_by(probe)

    def test_cross_view_pairs_not_purged_but_covered(self):
        """Purging filters by view; coverage (like the naive scan) does not."""
        relation, indexed, naive = _paired_queues("item-tagging", {})
        old = DataMessage(MessageId(0, 0), view_id=0, annotation=7)
        for queue in (indexed, naive):
            queue.append(old)
        newer_other_view = DataMessage(MessageId(0, 1), view_id=1, annotation=7)
        assert indexed.purge_by(newer_other_view) == naive.purge_by(newer_other_view) == []
        for queue in (indexed, naive):
            queue.append(newer_other_view)
        assert indexed.covered(old) == naive.covered(old) is True

    def test_enumeration_self_reference_ignored(self):
        relation, indexed, naive = _paired_queues("message-enumeration", {})
        other = DataMessage(MessageId(1, 0), view_id=0)
        for queue in (indexed, naive):
            queue.append(other)
        probe = DataMessage(
            MessageId(0, 5),
            view_id=0,
            annotation=frozenset({MessageId(0, 5), MessageId(1, 0)}),
        )
        assert indexed.purge_by(probe) == naive.purge_by(probe) == [other]
