"""Unit tests for the obsolescence relations and encoders."""

import pytest

from repro.core.message import MessageId
from repro.core.obsolescence import (
    EmptyRelation,
    EnumerationEncoder,
    ExplicitRelation,
    ItemTagging,
    KEnumeration,
    KEnumerationEncoder,
    MessageEnumeration,
    check_strict_partial_order,
)
from tests.conftest import make_data


class TestEmptyRelation:
    def test_never_obsoletes(self):
        rel = EmptyRelation()
        a, b = make_data(sn=0, annotation=1), make_data(sn=1, annotation=1)
        assert not rel.obsoletes(b, a)

    def test_covers_is_identity_only(self):
        rel = EmptyRelation()
        a = make_data(sn=0)
        b = make_data(sn=1)
        assert rel.covers(a, a)
        assert not rel.covers(b, a)

    def test_same_sender_only_flag(self):
        assert EmptyRelation.same_sender_only


class TestItemTagging:
    def test_same_tag_newer_obsoletes_older(self):
        rel = ItemTagging()
        old = make_data(sn=0, annotation=7)
        new = make_data(sn=3, annotation=7)
        assert rel.obsoletes(new, old)
        assert not rel.obsoletes(old, new)

    def test_different_tags_unrelated(self):
        rel = ItemTagging()
        a = make_data(sn=0, annotation=7)
        b = make_data(sn=1, annotation=8)
        assert not rel.obsoletes(b, a)

    def test_none_tag_never_related(self):
        rel = ItemTagging()
        a = make_data(sn=0, annotation=None)
        b = make_data(sn=1, annotation=None)
        assert not rel.obsoletes(b, a)

    def test_cross_sender_unrelated(self):
        rel = ItemTagging()
        a = make_data(sender=0, sn=0, annotation=7)
        b = make_data(sender=1, sn=5, annotation=7)
        assert not rel.obsoletes(b, a)

    def test_strict_partial_order_on_tagged_stream(self):
        rel = ItemTagging()
        messages = [make_data(sn=i, annotation=i % 3) for i in range(12)]
        assert check_strict_partial_order(rel, messages) == []


class TestMessageEnumeration:
    def test_enumerated_predecessor_is_obsolete(self):
        rel = MessageEnumeration()
        old = make_data(sn=0)
        new = make_data(sn=1, annotation=frozenset({MessageId(0, 0)}))
        assert rel.obsoletes(new, old)

    def test_empty_annotation_relates_nothing(self):
        rel = MessageEnumeration()
        old = make_data(sn=0)
        new = make_data(sn=1, annotation=frozenset())
        assert not rel.obsoletes(new, old)

    def test_cross_sender_expressible(self):
        rel = MessageEnumeration()
        old = make_data(sender=3, sn=9)
        new = make_data(sender=0, sn=1, annotation=frozenset({MessageId(3, 9)}))
        assert rel.obsoletes(new, old)

    def test_same_sender_later_sn_cannot_be_obsoleted(self):
        # Guards against malformed annotations claiming to obsolete the
        # sender's own future messages.
        rel = MessageEnumeration()
        future = make_data(sn=5)
        new = make_data(sn=1, annotation=frozenset({MessageId(0, 5)}))
        assert not rel.obsoletes(new, future)


class TestEnumerationEncoder:
    def test_transitive_closure_carried(self):
        enc = EnumerationEncoder(sender=0)
        m0 = enc.next_mid()
        enc.annotate(m0, [])
        m1 = enc.next_mid()
        enc.annotate(m1, [m0])
        m2 = enc.next_mid()
        annotation = enc.annotate(m2, [m1])
        assert m0 in annotation and m1 in annotation

    def test_window_truncates_old_predecessors(self):
        enc = EnumerationEncoder(sender=0, window=2)
        mids = []
        for i in range(5):
            mid = enc.next_mid()
            direct = [mids[-1]] if mids else []
            enc.annotate(mid, direct)
            mids.append(mid)
        # The last message's annotation keeps only predecessors within 2 sns.
        last_annotation = enc._closure[mids[-1]]
        assert all(p.sn >= mids[-1].sn - 2 for p in last_annotation)

    def test_self_obsolescence_rejected(self):
        enc = EnumerationEncoder(sender=0)
        mid = enc.next_mid()
        with pytest.raises(ValueError):
            enc.annotate(mid, [mid])

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            EnumerationEncoder(sender=0, window=0)

    def test_matches_relation_semantics(self):
        enc = EnumerationEncoder(sender=0)
        rel = MessageEnumeration()
        m0 = enc.next_mid()
        a0 = enc.annotate(m0, [])
        m1 = enc.next_mid()
        a1 = enc.annotate(m1, [m0])
        msg0 = make_data(sn=0, annotation=a0)
        msg1 = make_data(sn=1, annotation=a1)
        assert rel.obsoletes(msg1, msg0)


class TestKEnumeration:
    def test_bitmap_distance_semantics(self):
        rel = KEnumeration(k=4)
        old = make_data(sn=1)
        # distance 2 => bit 1 set
        new = make_data(sn=3, annotation=0b10)
        assert rel.obsoletes(new, old)

    def test_distance_beyond_k_unrelated(self):
        rel = KEnumeration(k=2)
        old = make_data(sn=0)
        new = make_data(sn=5, annotation=0b11)
        assert not rel.obsoletes(new, old)

    def test_zero_bitmap_relates_nothing(self):
        rel = KEnumeration(k=4)
        assert not rel.obsoletes(make_data(sn=2, annotation=0), make_data(sn=1))

    def test_cross_sender_unrelated(self):
        rel = KEnumeration(k=4)
        old = make_data(sender=1, sn=0)
        new = make_data(sender=0, sn=1, annotation=0b1)
        assert not rel.obsoletes(new, old)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KEnumeration(0)


class TestKEnumerationEncoder:
    def test_direct_predecessor_bit(self):
        enc = KEnumerationEncoder(sender=0, k=8)
        assert enc.annotate(1, [0]) == 0b1
        assert enc.annotate(5, [3]) == 0b10

    def test_shift_or_transitive_composition(self):
        enc = KEnumerationEncoder(sender=0, k=8)
        enc.annotate(1, [0])  # m1 obsoletes m0
        bitmap = enc.annotate(2, [1])  # m2 obsoletes m1 (and m0 transitively)
        rel = KEnumeration(k=8)
        m2 = make_data(sn=2, annotation=bitmap)
        assert rel.obsoletes(m2, make_data(sn=1))
        assert rel.obsoletes(m2, make_data(sn=0))

    def test_chain_composition_through_window(self):
        enc = KEnumerationEncoder(sender=0, k=16)
        for sn in range(1, 10):
            enc.annotate(sn, [sn - 1])
        rel = KEnumeration(k=16)
        last = make_data(sn=9, annotation=enc._bitmaps[9])
        for sn in range(9):
            assert rel.obsoletes(last, make_data(sn=sn))

    def test_predecessor_outside_window_dropped(self):
        enc = KEnumerationEncoder(sender=0, k=2)
        assert enc.annotate(5, [1]) == 0

    def test_bitmap_masked_to_k_bits(self):
        enc = KEnumerationEncoder(sender=0, k=3)
        enc.annotate(1, [0])
        enc.annotate(2, [1])
        bitmap = enc.annotate(3, [2])
        assert bitmap <= enc.mask

    def test_future_predecessor_rejected(self):
        enc = KEnumerationEncoder(sender=0, k=4)
        with pytest.raises(ValueError):
            enc.annotate(1, [1])

    def test_gc_keeps_memory_bounded(self):
        enc = KEnumerationEncoder(sender=0, k=4)
        for sn in range(1, 200):
            enc.annotate(sn, [sn - 1])
        assert len(enc._bitmaps) <= 6

    def test_record_external_bitmap(self):
        enc = KEnumerationEncoder(sender=0, k=4)
        enc.record(3, 0b101)
        # Composition picks up the recorded closure.
        bitmap = enc.annotate(4, [3])
        assert bitmap & 0b1  # direct bit for distance 1
        assert bitmap & 0b1010  # recorded closure shifted by 1


class TestExplicitRelation:
    def test_pairs_and_closure(self):
        a, b, c = MessageId(0, 0), MessageId(0, 1), MessageId(0, 2)
        rel = ExplicitRelation([(a, b), (b, c)])
        ma, mb, mc = make_data(sn=0), make_data(sn=1), make_data(sn=2)
        assert rel.obsoletes(mb, ma)
        assert rel.obsoletes(mc, mb)
        assert rel.obsoletes(mc, ma)  # transitively closed

    def test_cycle_rejected(self):
        a, b = MessageId(0, 0), MessageId(0, 1)
        with pytest.raises(ValueError):
            ExplicitRelation([(a, b), (b, a)])

    def test_self_pair_rejected(self):
        a = MessageId(0, 0)
        with pytest.raises(ValueError):
            ExplicitRelation([(a, a)])

    def test_is_strict_partial_order(self):
        mids = [MessageId(0, i) for i in range(5)]
        rel = ExplicitRelation([(mids[i], mids[i + 1]) for i in range(4)])
        messages = [make_data(sn=i) for i in range(5)]
        assert check_strict_partial_order(rel, messages) == []


class TestCheckStrictPartialOrder:
    def test_detects_irreflexivity_violation(self):
        class Bad(EmptyRelation):
            def obsoletes(self, new, old):
                return new.mid == old.mid

        violations = check_strict_partial_order(Bad(), [make_data(sn=0)])
        assert any("irreflexivity" in v for v in violations)

    def test_detects_antisymmetry_violation(self):
        class Bad(EmptyRelation):
            def obsoletes(self, new, old):
                return new.mid != old.mid

        violations = check_strict_partial_order(
            Bad(), [make_data(sn=0), make_data(sn=1)]
        )
        assert any("antisymmetry" in v for v in violations)

    def test_detects_transitivity_violation(self):
        class Bad(EmptyRelation):
            def obsoletes(self, new, old):
                return new.sn - old.sn == 1

        violations = check_strict_partial_order(
            Bad(), [make_data(sn=i) for i in range(3)]
        )
        assert any("transitivity" in v for v in violations)
