"""Unit tests for FaultPlan events, validation and the dict round trip."""

import math

import pytest

from repro import GroupStack, ItemTagging, StackConfig
from repro.faults import (
    Crash,
    FaultPlan,
    FaultPlanError,
    Heal,
    LinkFault,
    Partition,
    Perturb,
    Recover,
    ViewChange,
    fault_profiles,
)


def make_stack(n=3):
    return GroupStack(ItemTagging(), StackConfig(n=n, consensus="oracle"))


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            Crash(at=-1.0, pid=0)

    def test_nan_time_rejected(self):
        with pytest.raises(FaultPlanError):
            Crash(at=math.nan, pid=0)

    def test_infinite_time_rejected(self):
        with pytest.raises(FaultPlanError):
            Heal(at=math.inf)

    def test_non_numeric_time_rejected(self):
        with pytest.raises(FaultPlanError):
            Crash(at="soon", pid=0)

    def test_negative_pid_rejected(self):
        with pytest.raises(FaultPlanError):
            Crash(at=1.0, pid=-1)

    def test_bool_pid_rejected(self):
        with pytest.raises(FaultPlanError):
            Crash(at=1.0, pid=True)

    @pytest.mark.parametrize("rate", [-0.1, 1.5, math.nan])
    def test_link_fault_rates_bounded(self, rate):
        with pytest.raises(FaultPlanError):
            LinkFault(at=0.0, loss=rate)
        with pytest.raises(FaultPlanError):
            LinkFault(at=0.0, duplicate=rate)
        with pytest.raises(FaultPlanError):
            LinkFault(at=0.0, reorder=rate)

    def test_reorder_spread_positive(self):
        with pytest.raises(FaultPlanError):
            LinkFault(at=0.0, reorder=0.5, reorder_spread=0.0)

    def test_perturb_needs_positive_duration(self):
        with pytest.raises(FaultPlanError):
            Perturb(at=1.0, pid=0, duration=0.0)
        with pytest.raises(FaultPlanError):
            Perturb(at=1.0, pid=0, duration=math.nan)

    def test_partition_sides_must_not_overlap(self):
        with pytest.raises(FaultPlanError):
            Partition(at=1.0, sides=[(0, 1), (1, 2)])

    def test_partition_needs_non_empty_sides(self):
        with pytest.raises(FaultPlanError):
            Partition(at=1.0, sides=[])
        with pytest.raises(FaultPlanError):
            Partition(at=1.0, sides=[()])

    def test_recover_retry_positive_or_none(self):
        with pytest.raises(FaultPlanError):
            Recover(at=1.0, pid=0, retry=0.0)
        Recover(at=1.0, pid=0, retry=None)  # single attempt is fine

    def test_non_event_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan([{"kind": "crash", "at": 1.0}])  # dicts go via from_dicts


class TestInstallValidation:
    def test_unknown_pid_rejected(self):
        plan = FaultPlan([Crash(at=1.0, pid=9)])
        with pytest.raises(FaultPlanError, match="unknown process 9"):
            plan.install(make_stack())

    def test_double_install_rejected(self):
        stack = make_stack()
        plan = FaultPlan([Crash(at=1.0, pid=0)])
        plan.install(stack)
        with pytest.raises(FaultPlanError, match="already installed"):
            plan.install(stack)

    def test_perturb_without_consumer_rejected(self):
        plan = FaultPlan([Perturb(at=1.0, pid=0, duration=0.5)])
        with pytest.raises(FaultPlanError, match="consumer"):
            plan.install(make_stack())

    def test_partition_covering_whole_group_rejected_at_install(self):
        stack = make_stack(n=2)
        with pytest.raises(FaultPlanError, match="whole group"):
            FaultPlan([Partition(at=0.5, sides=[(0, 1)])]).install(stack)

    def test_crash_event_fires(self):
        stack = make_stack()
        FaultPlan([Crash(at=0.5, pid=1)]).install(stack)
        stack.run(until=1.0)
        assert stack.processes[1].crashed

    def test_named_heal_only_heals_named_sides(self):
        stack = make_stack(n=4)
        FaultPlan(
            [
                Partition(at=0.1, sides=[(0,), (1,)]),
                Partition(at=0.1, sides=[(2,), (3,)]),
                Heal(at=0.2, sides=[(0,), (1,)]),
            ]
        ).install(stack)
        stack.run(until=0.5)
        net = stack.network
        assert (2, 3) in net._cut and (3, 2) in net._cut
        assert (0, 1) not in net._cut and (1, 0) not in net._cut

    def test_link_fault_window_closes(self):
        """A later all-zero LinkFault on the same scope switches the
        faults off: messages sent after it all arrive."""
        stack = make_stack()
        plan = fault_profiles.create(
            "lossy-links", loss=1.0, at=0.0, until=0.5, data_only=False
        )
        plan.install(stack)
        sim, net = stack.sim, stack.network
        sim.run(until=0.2)
        net.send(0, 1, "during")  # dropped: loss=1.0 window is open
        sim.run(until=0.8)
        net.send(0, 1, "after")  # the until-event zeroed the rates
        stats = net.channel_stats(0, 1)
        assert stats.dropped == 1
        assert stats.sent == 2

    def test_plans_compose_with_plus(self):
        combined = FaultPlan([Crash(at=1.0, pid=0)]) + FaultPlan(
            [Heal(at=2.0)]
        )
        assert len(combined) == 2
        assert combined.referenced_pids() == (0,)


class TestDictRoundTrip:
    def test_round_trip_preserves_events(self):
        plan = FaultPlan(
            [
                Crash(at=1.0, pid=2),
                Recover(at=2.0, pid=2, via=0, retry=0.25),
                Partition(at=3.0, sides=[(0, 1), (2,)]),
                Heal(at=4.0),
                LinkFault(at=0.0, loss=0.1, duplicate=0.05, reorder=0.01,
                          data_only=True),
                Perturb(at=5.0, pid=1, duration=0.5),
                ViewChange(at=6.0, pid=0, leave=(2,)),
            ]
        )
        rebuilt = FaultPlan.from_dicts(plan.to_dicts())
        assert rebuilt.events == plan.events

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault event kind"):
            FaultPlan.from_dicts([{"kind": "meteor", "at": 1.0}])

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fields"):
            FaultPlan.from_dicts([{"kind": "crash", "at": 1.0, "pidd": 0}])

    def test_json_lists_accepted_for_sides(self):
        plan = FaultPlan.from_dicts(
            [{"kind": "partition", "at": 1.0, "sides": [[0, 1], [2]]}]
        )
        assert plan.events[0].sides == ((0, 1), (2,))


class TestProfiles:
    def test_builtin_profiles_registered(self):
        for name in ("partition-heal", "lossy-links", "crash-rejoin",
                     "partition-churn"):
            assert name in fault_profiles

    def test_partition_heal_shape(self):
        plan = fault_profiles.create(
            "partition-heal", at=2.0, duration=1.0, side=[3]
        )
        kinds = [e.kind for e in plan]
        assert kinds == ["partition", "heal", "view-change"]

    def test_profile_heals_are_named_not_global(self):
        """Profile heals undo exactly their own cut: a manual cut on the
        same network must survive the profile's heal."""
        stack = make_stack(n=4)
        stack.network.cut(0, 1)
        fault_profiles.create(
            "partition-heal", at=0.1, duration=0.2, side=[3],
            reconfigure_after=None,
        ).install(stack)
        stack.run(until=1.0)
        assert (0, 1) in stack.network._cut  # manual cut untouched
        assert (3, 0) not in stack.network._cut  # profile's cut healed
        for plan in (
            fault_profiles.create("partition-heal", side=[3]),
            fault_profiles.create("partition-churn", side=[3], cycles=1),
        ):
            heals = [e for e in plan if e.kind == "heal"]
            assert heals and all(e.sides is not None for e in heals)

    def test_lossy_links_window(self):
        plan = fault_profiles.create("lossy-links", loss=0.1, at=1.0, until=3.0)
        assert [e.kind for e in plan] == ["link-fault", "link-fault"]
        assert plan.events[1].loss == 0.0  # the window-closing event

    def test_crash_rejoin_order_enforced(self):
        with pytest.raises(FaultPlanError):
            fault_profiles.create("crash-rejoin", crash_at=2.0, rejoin_at=1.0)

    def test_partition_churn_cycle_count(self):
        plan = fault_profiles.create(
            "partition-churn", side=[4], cycles=3, loss=0.05
        )
        kinds = [e.kind for e in plan]
        assert kinds.count("partition") == 3
        assert kinds.count("heal") == 3
        assert kinds.count("view-change") == 3
        assert kinds.count("link-fault") == 1
