"""Determinism regression: fault plans add no nondeterminism.

Same seed ⇒ byte-identical ``ScenarioResult.to_json()`` under any fault
plan, and a sweep over a fault axis is byte-identical between serial and
multiprocess execution.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario
from repro.core.spec import LOSSY_CHECKS
from repro.sweep import ScenarioSweep


def run_scenario(seed, faults, until=9.0):
    return (
        Scenario()
        .group(
            n=5,
            relation="item-tagging",
            consensus="oracle",
            seed=seed,
            viewchange_retry=0.25,
        )
        .workload("game", rounds=250)
        .consumers(rate=250)
        .faults(faults)
        .view_change(at=4.0)
        .check(checks=LOSSY_CHECKS)
        .collect("throughput", "view_changes", "network", "purges")
        .run(until=until)
    )


FULL_PLAN = [
    {"kind": "link-fault", "at": 0.0, "loss": 0.05, "duplicate": 0.02,
     "reorder": 0.02, "data_only": True},
    {"kind": "partition", "at": 2.0, "sides": [[3, 4]]},
    {"kind": "heal", "at": 3.0},
    {"kind": "crash", "at": 5.0, "pid": 4},
    {"kind": "recover", "at": 6.0, "pid": 4},
    {"kind": "perturb", "at": 1.0, "pid": 2, "duration": 0.5},
]


class TestSameSeedSameHistory:
    def test_full_plan_byte_identical(self):
        a = run_scenario(17, FULL_PLAN)
        b = run_scenario(17, FULL_PLAN)
        assert a.ok, a.violations
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = run_scenario(17, FULL_PLAN)
        b = run_scenario(18, FULL_PLAN)
        assert a.to_json() != b.to_json()

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        loss=st.sampled_from([0.0, 0.03, 0.1]),
        duplicate=st.sampled_from([0.0, 0.05]),
        partition_at=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_plans_byte_identical(
        self, seed, loss, duplicate, partition_at
    ):
        plan = [
            {"kind": "link-fault", "at": 0.0, "loss": loss,
             "duplicate": duplicate, "data_only": True},
            {"kind": "partition", "at": partition_at, "sides": [[4]]},
            {"kind": "heal", "at": partition_at + 0.8},
        ]
        a = run_scenario(seed, plan, until=6.0)
        b = run_scenario(seed, plan, until=6.0)
        assert a.to_json() == b.to_json()

    def test_fault_streams_do_not_perturb_faultless_edges(self):
        """Installing a fault on one edge leaves a fault-free scenario's
        results untouched: an all-zero plan equals no plan at all."""
        base = (
            Scenario()
            .group(n=3, relation="item-tagging", consensus="oracle", seed=3)
            .workload("game", rounds=150)
            .consumers(rate=300)
            .collect("throughput")
            .run(until=5.0)
        )
        zeroed = (
            Scenario()
            .group(n=3, relation="item-tagging", consensus="oracle", seed=3)
            .workload("game", rounds=150)
            .consumers(rate=300)
            .faults([{"kind": "link-fault", "at": 0.0, "loss": 0.0}])
            .collect("throughput")
            .run(until=5.0)
        )
        assert base.to_json() == zeroed.to_json()


BASE = {
    "until": 6.0,
    "workload": "game",
    "workload_params": {"rounds": 150},
    "consumer_rate": 250.0,
    "consensus": "oracle",
    "config": {"viewchange_retry": 0.25},
    "checks": list(LOSSY_CHECKS),
    "histories": True,
    "metrics": ["throughput", "view_changes", "network"],
    "n": 5,
    "faults": {
        "profile": "partition-churn",
        "params": {"side": [4], "at": 1.0, "period": 2.0, "cycles": 2},
    },
}


def make_sweep():
    return (
        ScenarioSweep(base=BASE, seeds=2, base_seed=7)
        .axis("faults.params.loss", [0.0, 0.05])
    )


class TestFaultCellValidation:
    def test_faults_mapping_without_profile_rejected(self):
        from repro.sweep import SweepError, scenario_cell

        cell = dict(BASE)
        cell["faults"] = {"kind": "link-fault", "loss": 0.05}
        with pytest.raises(SweepError, match="profile"):
            scenario_cell(cell, seed=1)


@pytest.mark.slow
class TestSweepOverFaultAxis:
    def test_serial_vs_parallel_byte_identical(self):
        serial = make_sweep().run(workers=0, keep_results=True)
        parallel = make_sweep().run(workers=2, keep_results=True)
        assert serial.to_json() == parallel.to_json()

    def test_fault_axis_actually_varies_cells(self):
        serial = make_sweep().run(workers=0, keep_results=True)
        dropped = {
            loss: serial.select(**{"faults.params.loss": loss}).value(
                "network.dropped"
            )
            for loss in (0.0, 0.05)
        }
        assert dropped[0.05] > dropped[0.0]
