"""Rejoin semantics: recovery, state transfer, incarnations, consumers."""

import pytest

from repro import GroupStack, ItemTagging, Scenario, StackConfig
from repro.core.spec import LOSSY_CHECKS, check_all


def make_stack(n=3, **kwargs):
    kwargs.setdefault("consensus", "oracle")
    return GroupStack(ItemTagging(), StackConfig(n=n, **kwargs))


class TestStackRejoin:
    def test_crash_then_rejoin_same_view(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2)
        stack.run(until=2.0)
        for proc in stack:
            assert proc.cv.vid == 1
            assert proc.cv.members == frozenset({0, 1, 2})
            assert not proc.joining and not proc.blocked

    def test_rejoin_after_intervening_view_change(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        stack.processes[0].trigger_view_change()
        stack.run(until=2.0)
        assert stack.processes[0].cv.members == frozenset({0, 1})
        stack.rejoin(2)
        stack.run(until=3.0)
        assert stack.processes[0].cv.members == frozenset({0, 1, 2})
        assert stack.processes[2].cv.vid == stack.processes[0].cv.vid

    def test_rejoin_of_live_process_rejected(self):
        stack = make_stack()
        stack.run(until=0.5)
        with pytest.raises(ValueError, match="neither crashed nor excluded"):
            stack.rejoin(1)

    @pytest.mark.parametrize("retry", [0, -1.0, float("nan"), float("inf")])
    def test_invalid_retry_rejected_before_any_side_effect(self, retry):
        stack = make_stack()
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        with pytest.raises(ValueError, match="retry"):
            stack.rejoin(2, retry=retry)
        # The rejected call must not have started a rejoin.
        assert stack.processes[2].crashed
        assert not stack.processes[2].joining
        assert stack.recorder.retired == []

    def test_excluded_process_can_rejoin(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.processes[0].trigger_view_change(leave=(2,))
        stack.run(until=1.0)
        assert stack.processes[2].excluded
        stack.rejoin(2)
        stack.run(until=2.0)
        assert not stack.processes[2].excluded
        assert stack.processes[2].cv.members == frozenset({0, 1, 2})

    def test_rejoined_process_multicasts_again(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2)
        stack.run(until=2.0)
        msg = stack.processes[2].multicast("back", None)
        assert msg is not None
        stack.run(until=3.0)
        assert any(
            getattr(e, "payload", None) == "back"
            for e in stack.processes[0].drain()
        )

    def test_sequence_numbers_survive_crash(self):
        """Message ids must stay unique across incarnations."""
        stack = make_stack()
        stack.run(until=0.5)
        first = stack.processes[2].multicast("pre", None)
        stack.run(until=0.7)
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2)
        stack.run(until=2.0)
        second = stack.processes[2].multicast("post", None)
        assert second.sn > first.sn

    def test_spec_checks_pass_across_rejoin(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.processes[0].multicast("a", 1)
        stack.run(until=1.0)
        stack.crash(2)
        stack.run(until=1.5)
        stack.rejoin(2)
        stack.run(until=2.5)
        stack.processes[0].multicast("b", 2)
        stack.run(until=3.0)
        stack.drain_all()
        assert check_all(stack.recorder, stack.relation) == []

    def test_recorder_retires_incarnation(self):
        stack = make_stack()
        stack.run(until=0.5)
        stack.drain_all()  # record the first incarnation's deliveries
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2)
        stack.run(until=2.0)
        stack.drain_all()
        assert len(stack.recorder.retired) == 1
        assert stack.recorder.retired[0].pid == 2
        histories = stack.recorder.all_histories()
        assert len(histories) == 4  # 3 live + 1 retired

    def test_rejoin_without_recorded_history_retires_nothing(self):
        """A crash before any recorded delivery leaves no incarnation to
        retire; the rejoin must not invent an empty one."""
        stack = make_stack()
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2)
        stack.run(until=2.0)
        assert stack.recorder.retired == []

    def test_rejoin_before_crash_suspicion_fires(self):
        """Recovering faster than fd_delay must not deadlock: the oracle
        suspects a joining process outright, so t7 never waits on it."""
        stack = make_stack(fd_delay=0.5)
        stack.run(until=1.0)
        stack.crash(2)
        stack.run(until=1.01)  # well inside the 0.5s detection delay
        stack.rejoin(2, retry=0.2)
        stack.run(until=3.0)
        assert not stack.processes[2].joining
        assert stack.processes[2].cv.members == frozenset({0, 1, 2})
        # Back among the living: the suspicion lifted after the join.
        stack.run(until=4.0)
        assert not stack.processes[0].fd.suspects(2)

    def test_dead_via_sponsor_falls_back_to_live_one(self):
        """A pinned sponsor that crashed must not wedge the rejoin.

        Three of five members stay alive, so the view majority holds and
        only the sponsor choice is under test.
        """
        stack = make_stack(n=5)
        stack.run(until=0.5)
        stack.crash(1)  # the sponsor we will pin
        stack.crash(4)
        stack.run(until=1.0)
        stack.rejoin(4, via=1, retry=0.2)
        stack.run(until=3.0)
        assert not stack.processes[4].joining
        assert 4 in stack.processes[0].cv.members

    def test_heartbeat_fd_rejoin(self):
        stack = make_stack(fd="heartbeat", fd_delay=0.05)
        stack.run(until=0.5)
        stack.crash(2)
        stack.run(until=1.0)
        stack.rejoin(2, retry=0.5)
        stack.run(until=4.0)
        assert stack.processes[2].cv.members == frozenset({0, 1, 2})
        assert not stack.processes[2].joining
        # Peers eventually unsuspect the resumed heartbeater.
        stack.run(until=6.0)
        assert not stack.processes[0].fd.suspects(2)


class TestScenarioRejoin:
    def test_recover_sugar_end_to_end(self):
        result = (
            Scenario()
            .group(n=4, relation="item-tagging", consensus="oracle", seed=11)
            .workload("game", rounds=200)
            .consumers(rate=300)
            .crash(pid=3, at=2.0)
            .recover(pid=3, at=3.0)
            .collect("throughput", "view_changes")
            .run(until=8.0)
        )
        assert result.ok, result.violations
        assert "3@0" in result.histories  # the retired incarnation
        installs = result.metrics["view_changes"]["installs"]["3"]
        assert [vid for vid, _t in installs] == [1]  # the join view

    def test_consumer_restarts_after_rejoin(self):
        live = (
            Scenario()
            .group(n=3, relation="item-tagging", consensus="oracle", seed=5)
            .consumers(rate=500)
            .crash(pid=2, at=1.0)
            .recover(pid=2, at=2.0)
            .workload("game", rounds=300)
            .collect("throughput")
            .build()
        )
        result = live.run(until=8.0, drain=False)
        assert result.ok
        # The rejoined member's consumer kept consuming after recovery.
        consumer = live.consumers[2]
        assert not consumer._dead
        assert consumer.consumed > 0

    def test_incarnation_keys_count_per_pid(self):
        """Each pid's first retired incarnation is \"<pid>@0\" regardless
        of how many other pids rejoined before it."""
        result = (
            Scenario()
            .group(n=4, relation="item-tagging", consensus="oracle", seed=21)
            .workload("game", rounds=200)
            .consumers(rate=300)
            .crash(pid=2, at=2.0)
            .recover(pid=2, at=2.5)
            .crash(pid=3, at=4.0)
            .recover(pid=3, at=4.5)
            .collect("view_changes")
            .run(until=8.0)
        )
        assert result.ok, result.violations
        assert "2@0" in result.histories
        assert "3@0" in result.histories
        assert "3@1" not in result.histories

    def test_recover_validates_pid(self):
        from repro.scenario import ScenarioError

        with pytest.raises(ScenarioError):
            Scenario().recover(pid=-1, at=1.0)

    def test_rejoin_under_loss_retries_until_joined(self):
        result = (
            Scenario()
            .group(
                n=4,
                relation="item-tagging",
                consensus="oracle",
                seed=13,
                viewchange_retry=0.2,
            )
            .workload("game", rounds=200)
            .consumers(rate=300)
            .faults("lossy-links", loss=0.2, data_only=False)
            .crash(pid=3, at=2.0)
            .recover(pid=3, at=3.0, retry=0.3)
            .check(checks=LOSSY_CHECKS)
            .collect("view_changes")
            .run(until=15.0)
        )
        assert result.ok, result.violations
        installs = result.metrics["view_changes"]["installs"]["3"]
        # It made it back despite 20% loss on every stream.
        assert [vid for vid, _t in installs] == [1]
        assert "3@0" in result.histories
