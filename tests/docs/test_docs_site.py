"""The docs tree must stay buildable and complete.

CI runs ``mkdocs build --strict`` (which fails on broken links); these
tests enforce the pieces strict mode cannot know about — above all that
the paper-to-code map in ``docs/architecture.md`` covers **every** public
experiment function, so a new figure cannot land undocumented — and keep
the structural checks runnable in environments without mkdocs installed.
"""

import pathlib
import re

import yaml

import repro.analysis.experiments as experiments

REPO = pathlib.Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"


def load_nav_files():
    config = yaml.safe_load((REPO / "mkdocs.yml").read_text())
    files = []
    for entry in config["nav"]:
        for _title, path in entry.items():
            files.append(path)
    return config, files


class TestMkdocsConfig:
    def test_config_parses_and_is_strict(self):
        config, _files = load_nav_files()
        assert config["strict"] is True
        assert config["site_name"]

    def test_nav_files_exist(self):
        _config, files = load_nav_files()
        assert files, "empty nav"
        for path in files:
            assert (DOCS / path).is_file(), f"nav names missing file {path}"

    def test_required_pages_present(self):
        _config, files = load_nav_files()
        assert "architecture.md" in files
        assert "kernel.md" in files
        assert "index.md" in files
        assert "faults.md" in files
        assert "transport.md" in files
        assert "sweeps-cache.md" in files
        assert "sweeps-dispatch.md" in files
        assert "reports.md" in files


class TestInternalLinks:
    def test_relative_doc_links_resolve(self):
        link = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")
        for page in DOCS.glob("*.md"):
            for target in link.findall(page.read_text()):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                resolved = (page.parent / target).resolve()
                assert resolved.exists(), f"{page.name} links to missing {target}"

    def test_readme_links_docs_site(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/kernel.md" in readme


class TestPaperToCodeMap:
    def test_map_covers_every_experiment_function(self):
        """Acceptance criterion: the architecture page's paper-to-code map
        names every figure/experiment entry point in __all__."""
        text = (DOCS / "architecture.md").read_text()
        missing = [
            name for name in experiments.__all__ if f"`{name}`" not in text
        ]
        assert not missing, (
            f"paper-to-code map in docs/architecture.md misses: {missing}"
        )

    def test_map_names_real_modules(self):
        """Module paths cited in the map must import."""
        import importlib

        text = (DOCS / "architecture.md").read_text()
        cited = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert cited, "map cites no modules?"
        for dotted in cited:
            parts = dotted.split(".")
            # Strip trailing attribute names until the module imports.
            for cut in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:cut]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                raise AssertionError(f"docs cite unimportable {dotted}")


class TestFaultsDocMatchesCode:
    def test_every_fault_event_documented(self):
        """The event taxonomy in docs/faults.md must name every event type
        the plan module exports, so a new fault kind cannot land
        undocumented."""
        from repro.faults import plan

        text = (DOCS / "faults.md").read_text()
        event_names = [
            name
            for name in plan.__all__
            if isinstance(getattr(plan, name), type)
            and issubclass(getattr(plan, name), plan.FaultEvent)
            and getattr(plan, name) is not plan.FaultEvent
        ]
        assert event_names, "no fault event types exported?"
        missing = [n for n in event_names if f"`{n}`" not in text]
        assert not missing, f"docs/faults.md misses event types: {missing}"

    def test_every_builtin_profile_documented(self):
        from repro.faults import fault_profiles

        text = (DOCS / "faults.md").read_text()
        missing = [
            name for name in fault_profiles.names() if f"`{name}`" not in text
        ]
        assert not missing, f"docs/faults.md misses fault profiles: {missing}"

    def test_entry_points_in_paper_to_code_map(self):
        """churn_table is covered by the generic map test; the subsystem
        itself and the rejoin entry point must also be cited."""
        text = (DOCS / "architecture.md").read_text()
        assert "`repro.faults`" in text
        assert "rejoin" in text

    def test_lossy_checks_documented_and_real(self):
        from repro.core.spec import CHECKS, LOSSY_CHECKS

        text = (DOCS / "faults.md").read_text()
        assert "LOSSY_CHECKS" in text
        for name in LOSSY_CHECKS:
            assert name in CHECKS


class TestTransportDocMatchesCode:
    def test_every_backend_documented(self):
        """A new transport backend cannot land without a mention in
        docs/transport.md."""
        import repro.transport  # noqa: F401  (registers the backends)
        from repro.registry import transports

        text = (DOCS / "transport.md").read_text()
        missing = [n for n in transports.names() if f"`{n}`" not in text]
        assert not missing, f"docs/transport.md misses backends: {missing}"

    def test_documented_runtime_defaults_match(self):
        """transport.md quotes the sync defaults; keep them honest."""
        import inspect

        from repro.transport.runtime import LiveRuntime

        sig = inspect.signature(LiveRuntime.__init__)
        assert sig.parameters["sync_interval"].default == 0.05
        assert sig.parameters["sync_jitter"].default == 0.1
        text = (DOCS / "transport.md").read_text()
        assert "50 ms" in text
        assert "10%" in text

    def test_documented_check_tiers_are_real(self):
        from repro.core.spec import CHECKS, DEFAULT_CHECKS, LOSSY_CHECKS

        text = (DOCS / "transport.md").read_text()
        for tier in (DEFAULT_CHECKS, LOSSY_CHECKS):
            for name in tier:
                assert name in CHECKS
                assert f"`{name}`" in text, (
                    f"docs/transport.md misses check {name}"
                )

    def test_architecture_map_cites_transport(self):
        text = (DOCS / "architecture.md").read_text()
        assert "`repro.transport`" in text

    def test_cited_examples_exist(self):
        text = (DOCS / "transport.md").read_text()
        for example in ("live_loopback.py", "live_udp.py"):
            assert f"examples/{example}" in text
            assert (REPO / "examples" / example).is_file()


class TestSweepCacheDocMatchesCode:
    def test_every_key_field_documented(self):
        """sweeps-cache.md documents the exact key composition; keep it
        honest against the canonical document SweepCache.key() builds."""
        import json
        from unittest import mock

        from repro.sweep import SweepCache

        captured = {}
        real_dumps = json.dumps

        def spy(obj, **kwargs):
            captured.setdefault("doc", obj)
            return real_dumps(obj, **kwargs)

        cache = SweepCache.__new__(SweepCache)
        cache.fingerprint = "f"
        cache.extra = ""
        with mock.patch.object(json, "dumps", spy):
            cache.key(lambda p, s, c: None, {"x": 1}, 0, 42)
        text = (DOCS / "sweeps-cache.md").read_text()
        for field in captured["doc"]:
            assert f"`{field}`" in text, (
                f"docs/sweeps-cache.md misses key field {field}"
            )

    def test_cli_subcommands_documented_and_real(self):
        import pytest

        from repro.sweep import cli

        text = (DOCS / "sweeps-cache.md").read_text()
        for sub in ("stats", "gc"):
            assert f"repro-sweep {sub}" in text
            with pytest.raises(SystemExit) as exc:
                cli.main([sub, "--help"])
            assert exc.value.code == 0, f"cli has no {sub} subcommand"
        for flag in ("--json", "--since", "--assert-hit-rate",
                     "--dry-run", "--all"):
            assert flag in text, f"docs miss CLI flag {flag}"

    def test_entry_points_cited(self):
        text = (DOCS / "sweeps-cache.md").read_text()
        assert "`repro.sweep.cache.context_token`" in text
        assert "`repro.sweep.cache.code_fingerprint`" in text
        assert "`cache-stats.json`" in text
        assert "dirty_cells" in text

    def test_architecture_map_cites_cache(self):
        text = (DOCS / "architecture.md").read_text()
        assert "`repro.sweep.cache`" in text
        assert "sweeps-cache.md" in text

    def test_readme_shows_warm_vs_cold(self):
        readme = (REPO / "README.md").read_text()
        assert "--cache .sweep-cache" in readme
        assert "docs/sweeps-cache.md" in readme


class TestSweepDispatchDocMatchesCode:
    def test_every_backend_documented(self):
        """A new dispatch backend cannot land without a row in the
        sweeps-dispatch.md backend matrix."""
        import repro.sweep  # noqa: F401  (registers the backends)
        from repro.registry import dispatch_backends

        text = (DOCS / "sweeps-dispatch.md").read_text()
        missing = [n for n in dispatch_backends.names() if f"`{n}`" not in text]
        assert not missing, f"sweeps-dispatch.md misses backends: {missing}"

    def test_every_frame_type_documented(self):
        """The wire-protocol tables must cover every frame the worker
        speaks, and quote the current protocol version."""
        from repro.sweep import worker

        text = (DOCS / "sweeps-dispatch.md").read_text()
        missing = [f for f in worker.FRAME_TYPES if f"`{f}`" not in text]
        assert not missing, f"sweeps-dispatch.md misses frames: {missing}"
        assert f"protocol version `{worker.PROTOCOL}`" in text

    def test_scheduling_knobs_documented_and_real(self):
        import inspect

        from repro.sweep.dispatch import FramedDispatch, SshDispatch

        text = (DOCS / "sweeps-dispatch.md").read_text()
        assert "hostfile" in text and "max_copies" in text
        sig = inspect.signature(FramedDispatch.__init__)
        assert sig.parameters["max_copies"].default == 2
        for param in ("hosts", "hostfile", "python", "pythonpath", "ssh_args"):
            assert param in inspect.signature(SshDispatch.__init__).parameters
            assert f"`{param}`" in text

    def test_stats_trail_documented(self):
        from repro.sweep.dispatch import DISPATCH_STATS_FILE

        text = (DOCS / "sweeps-dispatch.md").read_text()
        assert f"`{DISPATCH_STATS_FILE}`" in text
        for counter in ("dispatched", "stolen", "re-issued", "duplicate"):
            assert counter in text

    def test_architecture_map_cites_dispatch(self):
        text = (DOCS / "architecture.md").read_text()
        assert "`repro.sweep.dispatch`" in text
        assert "sweeps-dispatch.md" in text

    def test_cited_worker_module_runs(self):
        """The doc quotes `python -m repro.sweep.worker`; keep it real."""
        text = (DOCS / "sweeps-dispatch.md").read_text()
        assert "repro.sweep.worker" in text
        import repro.sweep.worker as worker

        assert callable(worker.main)


class TestReportDocMatchesCode:
    def test_cli_subcommands_documented_and_real(self):
        import pytest

        from repro.report import cli

        text = (DOCS / "reports.md").read_text()
        for sub in ("render", "watch"):
            assert f"repro.report {sub}" in text
            with pytest.raises(SystemExit) as exc:
                cli.main([sub, "--help"])
            assert exc.value.code == 0, f"cli has no {sub} subcommand"
        for flag in ("--out", "--title", "--cache-dir", "--once", "--frames"):
            assert flag in text, f"docs/reports.md misses CLI flag {flag}"

    def test_determinism_contract_documented_and_enforced(self):
        """The page's central claim — markdown deterministic, HTML
        complete — must match what the builder actually does."""
        from repro.report import ReportBuilder, StatsSection

        text = (DOCS / "reports.md").read_text()
        assert "volatile" in text
        assert "byte-identical" in text
        # Stats sections can never leak into the markdown.
        assert StatsSection(heading="s", pairs=[("k", "v")]).volatile is True
        builder = ReportBuilder("t")
        builder.add_stats("cache", [("hits", "3")])
        assert "cache" not in builder.to_markdown()
        assert "cache" in builder.to_html()

    def test_t_table_anchor_values_quoted_correctly(self):
        """reports.md quotes t(df=2)=4.303 and the df=120 z hand-off;
        keep the prose honest against the table."""
        from repro.sweep import t_critical

        text = (DOCS / "reports.md").read_text()
        assert "4.303" in text and t_critical(2) == 4.303
        assert "df=120" in text and t_critical(121) == 1.96

    def test_payload_kinds_documented_and_real(self):
        from repro.report import classify_payload

        text = (DOCS / "reports.md").read_text()
        assert classify_payload({"cells": [], "axes": []}) == "sweep"
        assert classify_payload({"histories": {}, "metrics": {}}) == "scenario"
        for kind in ("sweep", "scenario"):
            assert kind in text

    def test_stats_trail_retention_documented(self):
        from repro.sweep import dispatch

        text = (DOCS / "reports.md").read_text()
        assert dispatch._STATS_KEEP == 50
        assert "last 50" in text

    def test_golden_fixture_cited_and_exists(self):
        text = (DOCS / "reports.md").read_text()
        assert "tests/report/golden_report.md" in text
        assert (REPO / "tests" / "report" / "golden_report.md").is_file()
        assert "tests/fixtures/golden_figure_4a.json" in text
        assert (REPO / "tests" / "fixtures" / "golden_figure_4a.json").is_file()

    def test_architecture_map_cites_reports(self):
        text = (DOCS / "architecture.md").read_text()
        assert "`repro.report`" in text
        assert "reports.md" in text

    def test_readme_shows_report_flag(self):
        readme = (REPO / "README.md").read_text()
        assert "--report" in readme
        assert "docs/reports.md" in readme


class TestKernelDocMatchesCode:
    def test_documented_defaults_match(self):
        """kernel.md documents tick/span defaults; keep them honest."""
        import inspect

        from repro.sim.kernel import Simulator

        sig = inspect.signature(Simulator.__init__)
        assert sig.parameters["tick"].default == 0.008
        assert sig.parameters["span"].default == 4096
        text = (DOCS / "kernel.md").read_text()
        assert "8 ms" in text

    def test_bench_workloads_all_documented(self):
        import sys

        sys.path.insert(0, str(REPO / "benchmarks"))
        try:
            import bench_kernel
        finally:
            sys.path.pop(0)
        text = (DOCS / "kernel.md").read_text()
        for name in bench_kernel.WORKLOADS:
            assert f"`{name}`" in text, f"docs/kernel.md misses workload {name}"
