"""Shared fixtures for the SVS reproduction test suite."""

from __future__ import annotations

import signal

import pytest

from repro.core.message import DataMessage, MessageId
from repro.workload.game import GameConfig, generate_game_trace

try:  # pragma: no cover - depends on the environment
    import pytest_timeout as _pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` without external plugins.

    Live-transport tests run real event loops; a wiring bug would hang
    them forever instead of failing.  When the ``pytest-timeout`` plugin
    is installed (CI) it owns the marker and this hook stands down;
    otherwise a SIGALRM fallback aborts the test past its deadline.  On
    platforms without SIGALRM the marker degrades to a no-op rather than
    skipping the test.
    """
    marker = item.get_closest_marker("timeout")
    if marker is None or _HAVE_PYTEST_TIMEOUT or not _HAVE_SIGALRM:
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds}s timeout (hung event loop?)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def make_data(
    sender: int = 0,
    sn: int = 0,
    view_id: int = 0,
    payload=None,
    annotation=None,
) -> DataMessage:
    """Terse DataMessage constructor used across the test suite."""
    return DataMessage(
        mid=MessageId(sender, sn),
        view_id=view_id,
        payload=payload,
        annotation=annotation,
    )


@pytest.fixture(scope="session")
def short_game_trace():
    """A 1500-round (50 s) game trace — big enough for statistics, small
    enough to keep the suite fast.  Session-scoped: generation and
    annotation caches are shared across tests."""
    return generate_game_trace(GameConfig(rounds=1500))


@pytest.fixture(scope="session")
def tiny_game_trace():
    """A 300-round (10 s) trace for tests that only need plausible traffic."""
    return generate_game_trace(GameConfig(rounds=300, seed=5))
