"""Shared fixtures for the SVS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.message import DataMessage, MessageId
from repro.workload.game import GameConfig, generate_game_trace


def make_data(
    sender: int = 0,
    sn: int = 0,
    view_id: int = 0,
    payload=None,
    annotation=None,
) -> DataMessage:
    """Terse DataMessage constructor used across the test suite."""
    return DataMessage(
        mid=MessageId(sender, sn),
        view_id=view_id,
        payload=payload,
        annotation=annotation,
    )


@pytest.fixture(scope="session")
def short_game_trace():
    """A 1500-round (50 s) game trace — big enough for statistics, small
    enough to keep the suite fast.  Session-scoped: generation and
    annotation caches are shared across tests."""
    return generate_game_trace(GameConfig(rounds=1500))


@pytest.fixture(scope="session")
def tiny_game_trace():
    """A 300-round (10 s) trace for tests that only need plausible traffic."""
    return generate_game_trace(GameConfig(rounds=300, seed=5))
