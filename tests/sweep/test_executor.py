"""Executor semantics: serial/parallel equivalence, invariant policy,
error propagation, metric flattening."""

import pytest

from repro.sweep import (
    Sweep,
    SweepCellError,
    SweepError,
    SweepInvariantError,
    flatten_metrics,
)

pytestmark = pytest.mark.slow  # spawns worker processes


# Cells must be module-level to be picklable by the pool.
def square_cell(params, seed, context):
    return {"value": float(params["x"] ** 2), "seed_mod": float(seed % 97)}


def offset_cell(params, seed, context):
    return {"value": params["x"] + context["offset"]}


def violating_cell(params, seed, context):
    if params["x"] == 2:
        return {"value": 0.0, "violations": ["SVS: synthetic violation"]}
    return {"value": 1.0}


def crashing_cell(params, seed, context):
    raise RuntimeError(f"boom at x={params['x']}")


def bad_return_cell(params, seed, context):
    return 42


class TestSerialExecution:
    def test_runs_every_cell_and_replicate(self):
        result = Sweep(seeds=3).axis("x", [1, 2, 3]).run(square_cell)
        assert result.n_runs == 9
        assert result.select(x=3).value("value") == 9.0

    def test_context_reaches_cells(self):
        result = Sweep().axis("x", [1]).run(offset_cell, context={"offset": 10})
        assert result.select(x=1).value("value") == 11.0

    def test_replicates_receive_distinct_seeds(self):
        result = Sweep(seeds=4).axis("x", [5]).run(square_cell)
        seeds = [run.seed for run in result.select(x=5).runs]
        assert len(set(seeds)) == 4

    def test_progress_callback(self):
        calls = []
        Sweep(seeds=2).axis("x", [1, 2]).run(
            square_cell, progress=lambda done, total, run: calls.append((done, total))
        )
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_cell_exception_wrapped_with_coordinates(self):
        with pytest.raises(SweepCellError, match=r'\{"x": 1\}[\s\S]*boom'):
            Sweep().axis("x", [1]).run(crashing_cell)

    def test_non_mapping_return_rejected(self):
        with pytest.raises(SweepCellError, match="must .* return|returned"):
            Sweep().axis("x", [1]).run(bad_return_cell)

    def test_invalid_policy_rejected(self):
        with pytest.raises(SweepError, match="on_violation"):
            Sweep().axis("x", [1]).run(square_cell, on_violation="ignore")


class TestInvariantPolicy:
    def test_raise_aborts_on_first_violation(self):
        with pytest.raises(SweepInvariantError, match="synthetic violation"):
            Sweep().axis("x", [1, 2, 3]).run(violating_cell)

    def test_collect_records_violations(self):
        result = Sweep().axis("x", [1, 2, 3]).run(
            violating_cell, on_violation="collect"
        )
        assert not result.ok
        assert result.violations == ["SVS: synthetic violation"]
        assert result.select(x=1).ok and not result.select(x=2).ok


class TestParallelExecution:
    def test_matches_serial_results(self):
        sweep = Sweep(seeds=2).axis("x", [1, 2, 3, 4])
        serial = sweep.run(square_cell, workers=0)
        parallel = sweep.run(square_cell, workers=2)
        assert serial.to_json() == parallel.to_json()

    def test_context_shipped_to_workers(self):
        result = (
            Sweep()
            .axis("x", [1, 2])
            .run(offset_cell, workers=2, context={"offset": 100})
        )
        assert result.select(x=2).value("value") == 102.0

    def test_worker_exception_propagates(self):
        with pytest.raises(SweepCellError, match="boom"):
            Sweep().axis("x", [1, 2]).run(crashing_cell, workers=2)

    def test_violation_raises_across_pool(self):
        with pytest.raises(SweepInvariantError):
            Sweep().axis("x", [1, 2, 3]).run(violating_cell, workers=2)


class TestFlattenMetrics:
    def test_nested_numeric_leaves(self):
        flat = flatten_metrics({"a": {"b": {"c": 1}}, "d": 2.5})
        assert flat == {"a.b.c": 1.0, "d": 2.5}

    def test_non_numeric_leaves_skipped(self):
        flat = flatten_metrics({"a": "text", "b": [1, 2], "c": 3})
        assert flat == {"c": 3.0}

    def test_bools_coerce_to_floats(self):
        assert flatten_metrics({"flag": True}) == {"flag": 1.0}
