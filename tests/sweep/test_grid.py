"""Grid enumeration, dotted axes, and deterministic seed derivation."""

import pytest

from repro.sweep import Sweep, SweepError, canonical_params, derive_seed


class TestGridConstruction:
    def test_cells_are_cartesian_product_in_axis_order(self):
        sweep = Sweep(base={"c": 9}).axis("a", [1, 2]).axis("b", ["x", "y"])
        assert sweep.cells() == [
            {"c": 9, "a": 1, "b": "x"},
            {"c": 9, "a": 1, "b": "y"},
            {"c": 9, "a": 2, "b": "x"},
            {"c": 9, "a": 2, "b": "y"},
        ]
        assert sweep.n_cells == 4

    def test_axes_via_constructor_match_fluent_form(self):
        a = Sweep(axes={"a": [1, 2], "b": [3]})
        b = Sweep().axis("a", [1, 2]).axis("b", [3])
        assert a.cells() == b.cells()

    def test_axis_overrides_base_key(self):
        sweep = Sweep(base={"a": 0}).axis("a", [1, 2])
        assert [c["a"] for c in sweep.cells()] == [1, 2]

    def test_fixed_merges_base(self):
        sweep = Sweep().fixed(x=1).fixed(y=2).axis("a", [0])
        assert sweep.cells() == [{"x": 1, "y": 2, "a": 0}]

    def test_n_runs_counts_replicates(self):
        sweep = Sweep(seeds=3).axis("a", [1, 2])
        assert sweep.n_runs == 6

    def test_coordinates_exclude_base(self):
        sweep = Sweep(base={"c": 9}).axis("a", [1, 2])
        assert sweep.coordinates() == [{"a": 1}, {"a": 2}]

    def test_dotted_axis_expands_into_nested_dict(self):
        sweep = Sweep(base={"latency_params": {"sigma": 2.0}}).axis(
            "latency_params.mean", [0.001, 0.002]
        )
        cells = sweep.cells()
        assert cells[0]["latency_params"] == {"sigma": 2.0, "mean": 0.001}
        assert cells[1]["latency_params"] == {"sigma": 2.0, "mean": 0.002}
        # The shared base mapping is never mutated by expansion.
        assert sweep.base["latency_params"] == {"sigma": 2.0}

    def test_dotted_axis_through_scalar_is_an_error(self):
        sweep = Sweep(base={"n": 3}).axis("n.sub", [1])
        with pytest.raises(SweepError, match="non-dict"):
            sweep.cells()


class TestGridValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="no values"):
            Sweep().axis("a", [])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SweepError, match="duplicate"):
            Sweep().axis("a", [1]).axis("a", [2])

    def test_zero_seeds_rejected(self):
        with pytest.raises(SweepError, match="seeds"):
            Sweep(seeds=0)

    def test_non_json_axis_values_rejected(self):
        with pytest.raises(SweepError, match="JSON"):
            Sweep().axis("a", [object()])


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(0, {"a": 1}, 0) == derive_seed(0, {"a": 1}, 0)

    def test_independent_of_key_order(self):
        assert derive_seed(0, {"a": 1, "b": 2}, 0) == derive_seed(
            0, {"b": 2, "a": 1}, 0
        )

    def test_distinct_per_replicate_cell_and_base_seed(self):
        seeds = {
            derive_seed(base, {"a": a}, rep)
            for base in (0, 1)
            for a in (1, 2)
            for rep in (0, 1)
        }
        assert len(seeds) == 8

    def test_position_independent(self):
        """Adding axis values must not reseed existing cells."""
        small = Sweep(seeds=2).axis("a", [1, 2])
        large = Sweep(seeds=2).axis("a", [0, 1, 2, 3])
        cell = {"a": 2}
        assert small.seeds_for(cell) == large.seeds_for(cell)

    def test_in_63_bit_range(self):
        seed = derive_seed(123, {"x": "y"}, 7)
        assert 0 <= seed < 2**63

    def test_canonical_params_rejects_objects(self):
        with pytest.raises(SweepError, match="context"):
            canonical_params({"trace": object()})
