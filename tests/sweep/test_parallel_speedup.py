"""Acceptance: the multiprocess executor actually buys wall-clock.

An 8×5-cell sweep with 2 workers must run at least 1.7× faster than the
same sweep serially.  Needs ≥2 usable CPUs — skipped (not failed) on
single-core runners, where no executor could deliver a speedup.
"""

import os
import time

import pytest

from repro.sweep import ScenarioSweep

pytestmark = pytest.mark.slow

CPUS = len(os.sched_getaffinity(0))

BASE = {
    "until": 20.0,
    "workload": "game",
    "workload_params": {"rounds": 600},
    "consumer_rate": 150.0,
    "consensus": "oracle",
    "histories": False,
    "metrics": ["throughput", "purges"],
}


def make_sweep():
    # 8 × 5 = 40 cells, one replicate each.
    return (
        ScenarioSweep(base=BASE)
        .axis("consumer_rate", [60.0, 90.0, 120.0, 150.0, 200.0, 300.0, 400.0, 500.0])
        .axis("n", [2, 3, 4, 5, 6])
    )


@pytest.mark.skipif(CPUS < 2, reason=f"needs >=2 CPUs, have {CPUS}")
def test_two_workers_at_least_1_7x_faster_than_serial():
    sweep = make_sweep()
    assert sweep.n_cells == 40

    start = time.perf_counter()
    serial = sweep.run(workers=0)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = sweep.run(workers=2)
    t_parallel = time.perf_counter() - start

    assert serial.to_json() == parallel.to_json()  # speed, not drift
    speedup = t_serial / t_parallel
    assert speedup >= 1.7, (
        f"2-worker sweep only {speedup:.2f}x faster "
        f"(serial {t_serial:.2f}s, parallel {t_parallel:.2f}s)"
    )
