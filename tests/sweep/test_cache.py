"""The content-addressed cell cache: correctness before convenience.

Four properties carry the whole design (see docs/sweeps-cache.md):

* a warm run computes zero cells and merges **byte-identically** to the
  cold run that populated the cache;
* any change to cell params, seeds, runner, context or code fingerprint
  misses — incremental re-runs recompute exactly the affected cells;
* corrupted shards (truncation, edits, fingerprint drift) are treated as
  misses and recomputed, never served — in particular shards recording
  invariant violations;
* serial and pooled executors share one store, and concurrent writers
  can only ever publish complete shards.
"""

import json
import os
import threading

import pytest

from repro.sweep import Sweep, SweepCache, SweepError, SweepInvariantError
from repro.sweep.cache import (
    cache_stats,
    code_fingerprint,
    context_token,
    gc,
    runner_token,
)
from repro.sweep.result import CellRun


# Cells must be module-level to be picklable by the pool.
def square_cell(params, seed, context):
    return {"value": float(params["x"] ** 2), "seed_mod": float(seed % 97)}


def counting_cell(params, seed, context):
    counting_cell.calls += 1
    return {"value": float(params["x"])}


counting_cell.calls = 0


def offset_cell(params, seed, context):
    return {"value": params["x"] + context["offset"]}


def violating_cell(params, seed, context):
    return {"value": 0.0, "violations": ["SVS: synthetic violation"]}


def make_sweep(seeds=2, values=(1, 2, 3)):
    return Sweep(seeds=seeds).axis("x", list(values))


def make_cache(tmp_path, fingerprint="fp-test", **kwargs):
    return SweepCache(tmp_path / "cache", fingerprint=fingerprint, **kwargs)


class TestHitMissDeterminism:
    def test_warm_run_computes_zero_cells(self, tmp_path):
        sweep = make_sweep()
        counting_cell.calls = 0
        sweep.run(counting_cell, cache=make_cache(tmp_path))
        assert counting_cell.calls == sweep.n_runs
        sweep.run(counting_cell, cache=make_cache(tmp_path))
        assert counting_cell.calls == sweep.n_runs, "warm run recomputed cells"

    def test_warm_run_byte_identical_to_cold(self, tmp_path):
        sweep = make_sweep()
        cold = sweep.run(square_cell, cache=make_cache(tmp_path))
        warm = sweep.run(square_cell, cache=make_cache(tmp_path))
        assert cold.to_json() == warm.to_json()

    def test_cached_matches_uncached(self, tmp_path):
        sweep = make_sweep()
        plain = sweep.run(square_cell)
        cached = sweep.run(square_cell, cache=make_cache(tmp_path))
        assert plain.to_json() == cached.to_json()

    def test_partial_warm_merges_identically(self, tmp_path):
        cache = make_cache(tmp_path)
        make_sweep(values=(1, 2)).run(square_cell, cache=cache)
        grown = make_sweep(values=(1, 2, 3))
        counting_cell.calls = 0
        merged = grown.run(square_cell, cache=make_cache(tmp_path))
        assert merged.to_json() == grown.run(square_cell).to_json()

    def test_adding_an_axis_value_recomputes_only_new_cells(self, tmp_path):
        counting_cell.calls = 0
        make_sweep(values=(1, 2)).run(counting_cell, cache=make_cache(tmp_path))
        before = counting_cell.calls
        make_sweep(values=(1, 2, 3)).run(
            counting_cell, cache=make_cache(tmp_path)
        )
        # Only the two replicates of the new x=3 cell ran.
        assert counting_cell.calls == before + 2

    def test_path_accepted_in_place_of_cache_object(self, tmp_path):
        sweep = make_sweep()
        cold = sweep.run(square_cell, cache=tmp_path / "by-path")
        warm = sweep.run(square_cell, cache=str(tmp_path / "by-path"))
        assert cold.to_json() == warm.to_json()

    def test_hit_and_miss_counters_flush_to_disk(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep()
        sweep.run(square_cell, cache=cache)
        sweep.run(square_cell, cache=make_cache(tmp_path))
        recorded = cache_stats(tmp_path / "cache")["counters"]
        assert recorded["misses"] == sweep.n_runs
        assert recorded["hits"] == sweep.n_runs
        assert recorded["stores"] == sweep.n_runs
        assert recorded["runs"] == 2


class TestInvalidation:
    def test_param_change_misses(self, tmp_path):
        cache = make_cache(tmp_path)
        Sweep(base={"b": 1}, seeds=1).axis("x", [1]).run(square_cell, cache=cache)
        counting_cell.calls = 0
        Sweep(base={"b": 2}, seeds=1).axis("x", [1]).run(
            counting_cell, cache=make_cache(tmp_path)
        )
        assert counting_cell.calls == 1

    def test_seed_change_misses(self, tmp_path):
        Sweep(seeds=1, base_seed=0).axis("x", [1]).run(
            counting_cell, cache=make_cache(tmp_path)
        )
        counting_cell.calls = 0
        Sweep(seeds=1, base_seed=1).axis("x", [1]).run(
            counting_cell, cache=make_cache(tmp_path)
        )
        assert counting_cell.calls == 1

    def test_code_fingerprint_change_misses(self, tmp_path):
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(counting_cell, cache=make_cache(tmp_path, fingerprint="v1"))
        counting_cell.calls = 0
        sweep.run(counting_cell, cache=make_cache(tmp_path, fingerprint="v2"))
        assert counting_cell.calls == 1
        counting_cell.calls = 0
        sweep.run(counting_cell, cache=make_cache(tmp_path, fingerprint="v1"))
        assert counting_cell.calls == 0, "original fingerprint lost its shards"

    def test_runner_identity_in_key(self, tmp_path):
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(square_cell, cache=make_cache(tmp_path))
        counting_cell.calls = 0
        sweep.run(counting_cell, cache=make_cache(tmp_path))
        assert counting_cell.calls == 1, "different runner hit the same shard"

    def test_context_change_misses(self, tmp_path):
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(offset_cell, context={"offset": 1}, cache=make_cache(tmp_path))
        r2 = sweep.run(
            offset_cell, context={"offset": 5}, cache=make_cache(tmp_path)
        )
        assert r2.select(x=1).value("value") == 6.0, "stale context served"

    def test_extra_salt_in_key(self, tmp_path):
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(counting_cell, cache=make_cache(tmp_path, extra="a"))
        counting_cell.calls = 0
        sweep.run(counting_cell, cache=make_cache(tmp_path, extra="b"))
        assert counting_cell.calls == 1

    def test_opaque_context_refused(self, tmp_path):
        with pytest.raises(SweepError, match="cache_token"):
            make_sweep().run(
                square_cell, context=object(), cache=make_cache(tmp_path)
            )

    def test_context_token_resolution(self):
        class Tokenised:
            def cache_token(self):
                return "tok-1"

        assert context_token(None) == ""
        assert context_token(Tokenised()) == "tok-1"
        assert context_token({"a": 1}) == context_token({"a": 1})
        assert context_token({"a": 1}) != context_token({"a": 2})

    def test_runner_token_external_runner_hashes_its_file(self):
        token = runner_token(square_cell)
        assert token.startswith(f"{__name__}:square_cell:")

    def test_code_fingerprint_is_stable_and_source_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        first = code_fingerprint(pkg)
        assert first == code_fingerprint(pkg)  # memoised and stable
        import repro.sweep.cache as cache_mod

        cache_mod._code_fingerprint_memo.pop(str(pkg))
        (pkg / "a.py").write_text("x = 2\n")
        assert code_fingerprint(pkg) != first


class TestCorruptShards:
    def shard_paths(self, cache):
        return sorted(cache.path.glob("*/*.json"))

    def test_truncated_shard_recomputed_not_crashed(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=1)
        cold = sweep.run(square_cell, cache=cache)
        victim = self.shard_paths(cache)[0]
        victim.write_text(victim.read_text()[: victim.stat().st_size // 2])
        again = sweep.run(square_cell, cache=make_cache(tmp_path))
        assert again.to_json() == cold.to_json()

    def test_tampered_payload_fails_history_fingerprint(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=1)
        cold = sweep.run(square_cell, cache=cache)
        victim = self.shard_paths(cache)[0]
        shard = json.loads(victim.read_text())
        shard["run"]["metrics"]["value"] = -12345.0
        victim.write_text(json.dumps(shard, sort_keys=True))
        verify = make_cache(tmp_path)
        again = sweep.run(square_cell, cache=verify)
        assert again.to_json() == cold.to_json(), "tampered shard was served"

    def test_violation_shard_not_served_when_fingerprint_broken(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(violating_cell, on_violation="collect", cache=cache)
        victim = self.shard_paths(cache)[0]
        shard = json.loads(victim.read_text())
        assert shard["run"]["violations"], "expected a violating shard"
        shard["run"]["violations"] = []  # tamper: hide the violation
        victim.write_text(json.dumps(shard, sort_keys=True))
        # The doctored shard fails its history fingerprint, so the cell is
        # recomputed and the violation resurfaces (and raises by default).
        with pytest.raises(SweepInvariantError):
            sweep.run(violating_cell, cache=make_cache(tmp_path))

    def test_intact_violation_shard_still_triggers_policy(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=1, values=(1,))
        sweep.run(violating_cell, on_violation="collect", cache=cache)
        with pytest.raises(SweepInvariantError):
            sweep.run(violating_cell, cache=make_cache(tmp_path))

    def test_unrelated_json_in_cache_dir_ignored(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=1)
        sweep.run(square_cell, cache=cache)
        (cache.path / "aa").mkdir(exist_ok=True)
        (cache.path / "aa" / "not-a-shard.json").write_text("{}")
        counting_cell.calls = 0
        warm = sweep.run(square_cell, cache=make_cache(tmp_path))
        assert warm.ok


class TestDirtyCells:
    def test_partition_hit_and_miss_cells(self, tmp_path):
        cache = make_cache(tmp_path)
        make_sweep(values=(1, 2)).run(square_cell, cache=cache)
        grown = make_sweep(values=(1, 2, 3))
        cached, dirty = grown.dirty_cells(make_cache(tmp_path), square_cell)
        assert [c["x"] for c in cached] == [1, 2]
        assert [c["x"] for c in dirty] == [3]

    def test_partially_cached_cell_is_dirty(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep(seeds=3, values=(1,))
        sweep.run(square_cell, cache=cache)
        victim = sorted(cache.path.glob("*/*.json"))[0]
        victim.unlink()
        cached, dirty = sweep.dirty_cells(make_cache(tmp_path), square_cell)
        assert cached == []
        assert [c["x"] for c in dirty] == [1]

    def test_probing_leaves_counters_untouched(self, tmp_path):
        cache = make_cache(tmp_path)
        sweep = make_sweep()
        sweep.run(square_cell, cache=cache)
        probe = make_cache(tmp_path)
        sweep.dirty_cells(probe, square_cell)
        assert probe.stats.hits == 0
        assert probe.stats.misses == 0


@pytest.mark.slow
class TestExecutorSharing:
    def test_serial_cold_pooled_warm(self, tmp_path):
        sweep = make_sweep()
        cold = sweep.run(square_cell, cache=make_cache(tmp_path))
        warm = sweep.run(square_cell, workers=2, cache=make_cache(tmp_path))
        assert cold.to_json() == warm.to_json()

    def test_pooled_cold_serial_warm(self, tmp_path):
        sweep = make_sweep()
        cold = sweep.run(square_cell, workers=2, cache=make_cache(tmp_path))
        counting_cell.calls = 0
        warm = sweep.run(square_cell, cache=make_cache(tmp_path))
        assert cold.to_json() == warm.to_json()
        recorded = cache_stats(tmp_path / "cache")["counters"]
        assert recorded["hits"] == sweep.n_runs


class TestConcurrentWriters:
    def test_racing_stores_publish_complete_shards(self, tmp_path):
        # Hammer one key from many threads; atomic replace means any
        # winner must leave a complete, verifiable shard behind.
        run = CellRun(replicate=0, seed=42, metrics={"v": 1.0})
        caches = [make_cache(tmp_path) for _ in range(8)]
        params = {"x": 1}
        barrier = threading.Barrier(len(caches))

        def store(cache):
            barrier.wait()
            for _ in range(25):
                cache.store(square_cell, params, 0, 42, run)

        threads = [
            threading.Thread(target=store, args=(cache,)) for cache in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        loaded = make_cache(tmp_path).lookup(square_cell, params, 0, 42)
        assert loaded is not None
        assert loaded.metrics == {"v": 1.0}
        leftovers = [p for p in (tmp_path / "cache").rglob("*.tmp")]
        assert not leftovers, f"temp files leaked: {leftovers}"

    def test_two_caches_interleaved_runs_share_shards(self, tmp_path):
        sweep = make_sweep()
        a = make_cache(tmp_path)
        b = make_cache(tmp_path)
        ra = sweep.run(square_cell, cache=a)
        rb = sweep.run(square_cell, cache=b)
        assert ra.to_json() == rb.to_json()


class TestGcAndStats:
    def test_gc_evicts_stale_fingerprints_only(self, tmp_path):
        sweep = make_sweep(seeds=1)
        sweep.run(square_cell, cache=make_cache(tmp_path, fingerprint="old"))
        current = code_fingerprint()
        sweep.run(
            square_cell, cache=make_cache(tmp_path, fingerprint=current)
        )
        report = gc(tmp_path / "cache")
        assert report["evicted"] == sweep.n_cells
        assert report["kept"] == sweep.n_cells
        # The current-fingerprint shards survived and still hit.
        counting_cell.calls = 0
        sweep.run(square_cell, cache=make_cache(tmp_path, fingerprint=current))
        stats = cache_stats(tmp_path / "cache")
        assert stats["stale_shards"] == 0

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        sweep = make_sweep(seeds=1)
        sweep.run(square_cell, cache=make_cache(tmp_path, fingerprint="old"))
        report = gc(tmp_path / "cache", dry_run=True)
        assert report["evicted"] == sweep.n_cells
        assert cache_stats(tmp_path / "cache")["shards"] == sweep.n_cells

    def test_gc_all_clears_everything(self, tmp_path):
        sweep = make_sweep(seeds=1)
        sweep.run(square_cell, cache=make_cache(tmp_path))
        report = gc(tmp_path / "cache", remove_all=True)
        assert report["kept"] == 0
        assert cache_stats(tmp_path / "cache")["shards"] == 0

    def test_gc_removes_unreadable_shards(self, tmp_path):
        cache = make_cache(tmp_path, fingerprint=code_fingerprint())
        make_sweep(seeds=1).run(square_cell, cache=cache)
        victim = sorted(cache.path.glob("*/*.json"))[0]
        victim.write_text("not json at all")
        report = gc(tmp_path / "cache")
        assert report["evicted"] == 1

    def test_stats_on_missing_dir(self, tmp_path):
        stats = cache_stats(tmp_path / "never-created")
        assert stats["shards"] == 0
        assert stats["hit_rate"] is None


class TestCli:
    def run_cli(self, *argv):
        from repro.sweep.cli import main

        return main(list(argv))

    def test_stats_and_assert_hit_rate(self, tmp_path, capsys):
        sweep = make_sweep()
        sweep.run(square_cell, cache=make_cache(tmp_path))
        sweep.run(square_cell, cache=make_cache(tmp_path))
        cache_dir = str(tmp_path / "cache")
        assert self.run_cli("stats", cache_dir) == 0
        out = capsys.readouterr().out
        assert "hit rate: 50.0%" in out
        assert self.run_cli("stats", cache_dir, "--assert-hit-rate", "0.4") == 0
        assert self.run_cli("stats", cache_dir, "--assert-hit-rate", "0.9") == 1

    def test_stats_since_snapshot_isolates_warm_pass(self, tmp_path, capsys):
        sweep = make_sweep()
        cache_dir = str(tmp_path / "cache")
        sweep.run(square_cell, cache=make_cache(tmp_path))
        self.run_cli("stats", cache_dir, "--json")
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(capsys.readouterr().out)
        sweep.run(square_cell, cache=make_cache(tmp_path))
        code = self.run_cli(
            "stats", cache_dir, "--since", str(snapshot),
            "--assert-hit-rate", "0.9",
        )
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_stats_since_mid_history_uses_delta_window_denominator(
        self, tmp_path, capsys
    ):
        """Regression pin: the --since hit rate divides delta hits by
        *delta-window lookups* (hits + misses after the snapshot), never
        by the cumulative lookup count.  The snapshot is taken mid-history
        — after a cold+warm pair — so a cumulative denominator would
        dilute the asserted window with the 12 cold-era lookups before
        it.  (Each run is 3 cells x 2 replicates = 6 lookups.)"""
        cache_dir = str(tmp_path / "cache")
        # History before the snapshot: cold (6 misses) + warm (6 hits).
        make_sweep().run(square_cell, cache=make_cache(tmp_path))
        make_sweep().run(square_cell, cache=make_cache(tmp_path))
        self.run_cli("stats", cache_dir, "--json")
        snapshot_payload = json.loads(capsys.readouterr().out)
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps(snapshot_payload))
        assert snapshot_payload["counters"] == {
            "hits": 6, "misses": 6, "stores": 6, "corrupt": 0, "runs": 2,
        }
        # Window after the snapshot: 6 hits (x in 1..3) + 4 misses (4, 5).
        make_sweep(values=(1, 2, 3, 4, 5)).run(
            square_cell, cache=make_cache(tmp_path)
        )
        self.run_cli("stats", cache_dir, "--since", str(snapshot), "--json")
        stats = json.loads(capsys.readouterr().out)
        assert stats["since"] == {
            "hits": 6, "misses": 4, "stores": 4, "corrupt": 0, "runs": 1,
        }
        # 6/10, not 12/22: the cold history must not dilute it.
        assert stats["since_hit_rate"] == pytest.approx(0.6)
        assert stats["hit_rate"] == pytest.approx(12 / 22)

    def test_stats_since_clamps_counter_resets(self, tmp_path, capsys):
        """A stats file reset (cache cleared) after the snapshot must not
        produce negative deltas or a rate above 100%."""
        cache_dir = str(tmp_path / "cache")
        make_sweep().run(square_cell, cache=make_cache(tmp_path))
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps({"counters": {
            "hits": 100, "misses": 100, "stores": 100, "corrupt": 0,
            "runs": 9,
        }}))
        self.run_cli("stats", cache_dir, "--since", str(snapshot), "--json")
        stats = json.loads(capsys.readouterr().out)
        assert all(v >= 0 for v in stats["since"].values())
        assert stats["since_hit_rate"] is None

    def test_gc_subcommand(self, tmp_path, capsys):
        sweep = make_sweep(seeds=1)
        sweep.run(square_cell, cache=make_cache(tmp_path, fingerprint="old"))
        cache_dir = str(tmp_path / "cache")
        assert self.run_cli("gc", cache_dir, "--dry-run") == 0
        assert "would evict 3" in capsys.readouterr().out
        assert self.run_cli("gc", cache_dir, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == 3
        assert cache_stats(cache_dir)["shards"] == 0
