"""The declarative scenario cell schema and ScenarioSweep."""

import pytest

from repro.scenario import ScenarioResult
from repro.sweep import ScenarioSweep, SweepError, scenario_cell

BASE = {
    "until": 4.0,
    "workload": "periodic-updates",
    "workload_params": {"items": 4, "messages": 60, "rate": 40.0},
    "consumer_rate": 200.0,
    "consensus": "oracle",
}


class TestScenarioCell:
    def test_returns_checked_scenario_result(self):
        result = scenario_cell(dict(BASE), seed=7)
        assert isinstance(result, ScenarioResult)
        assert result.ok and result.seed == 7
        assert result.violations == []  # checked, not skipped

    def test_unknown_key_rejected(self):
        with pytest.raises(SweepError, match="consumer_rte"):
            scenario_cell({**BASE, "consumer_rte": 10.0}, seed=0)

    def test_until_required(self):
        params = dict(BASE)
        del params["until"]
        with pytest.raises(SweepError, match="until"):
            scenario_cell(params, seed=0)

    def test_context_supplies_defaults(self):
        result = scenario_cell({"n": 4}, seed=1, context=BASE)
        assert result.n == 4

    def test_cell_params_override_context(self):
        result = scenario_cell({"until": 2.0}, seed=1, context=BASE)
        assert result.duration == pytest.approx(2.0)

    def test_non_mapping_context_rejected(self):
        with pytest.raises(SweepError, match="mapping"):
            scenario_cell(dict(BASE), seed=0, context=object())

    def test_faults_and_membership_schedule(self):
        params = {
            **BASE,
            "n": 4,
            "until": 6.0,
            "perturb": [[1, 1.0, 0.5]],
            "crash": [[3, 2.0]],
            "view_change": [[2.5]],
            "metrics": ["view_changes", "throughput"],
        }
        result = scenario_cell(params, seed=3)
        assert result.ok
        # The crash + triggered view change produced a reconfiguration
        # (the initial view predates the scenario's install hooks, so any
        # recorded install is a genuine view change).
        assert result.metrics["view_changes"]["count"]["0"] >= 1

    def test_checks_subset(self):
        result = scenario_cell({**BASE, "checks": ["integrity"]}, seed=0)
        assert result.violations == []

    def test_unknown_check_rejected_up_front(self):
        from repro.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="unknown check"):
            scenario_cell({**BASE, "checks": ["not-a-check"]}, seed=0)

    def test_latency_params_without_model_rejected(self):
        """A latency axis with no model must error, not silently no-op."""
        with pytest.raises(SweepError, match="latency_model"):
            scenario_cell(
                {**BASE, "latency_params": {"mean": 0.001}}, seed=0
            )

    def test_metrics_default_collects_all_known(self):
        from repro.scenario import KNOWN_METRICS

        result = scenario_cell(dict(BASE), seed=0)
        assert set(result.metrics) == set(KNOWN_METRICS)

    def test_metrics_none_means_default(self):
        result = scenario_cell({**BASE, "metrics": None}, seed=0)
        assert "throughput" in result.metrics


class TestScenarioSweep:
    def test_grid_runs_and_aggregates(self):
        result = (
            ScenarioSweep(base=BASE, seeds=2)
            .axis("n", [2, 3])
            .run()
        )
        assert result.ok and result.n_runs == 4
        cell = result.select(n=3)
        assert cell.stats("throughput.offered").n == 2

    def test_latency_axis_via_dotted_path(self):
        result = (
            ScenarioSweep(base={**BASE, "latency_model": "lognormal"})
            .axis("latency_params.mean", [0.0005, 0.002])
            .run()
        )
        assert result.ok and len(result.cells) == 2
        # Dotted coordinates address dotted axes (mirrors grid expansion).
        cell = result.select(**{"latency_params.mean": 0.002})
        assert cell.params["latency_params"]["mean"] == 0.002
