"""Dispatch backends: determinism across paths, crash recovery, protocol.

The tentpole contract: serial == local-pool == subprocess == ssh —
byte-identical aggregated JSON on the same grid/seed, including
cold-with-cache and warm runs; a worker killed mid-sweep re-queues its
in-flight cells and the sweep still completes identically.

ssh-to-localhost is exercised through a shim ``ssh`` executable (this
environment runs no sshd): the shim drops the client options and host
argument and runs the remote command locally, so every byte of the ssh
backend's code path — remote command construction, per-host slots, frame
transport over the child's pipes — is covered.  A real-ssh variant runs
whenever ``ssh localhost`` actually works.
"""

import io
import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.registry import dispatch_backends
from repro.sweep import (
    DispatchError,
    LocalPoolDispatch,
    SshDispatch,
    SubprocessDispatch,
    Sweep,
    SweepCache,
    SweepError,
    parse_hostfile,
    run_sweep,
)
from repro.sweep.cells import (
    arithmetic_cell,
    failing_cell,
    flaky_worker_cell,
    sleepy_cell,
)
from repro.sweep.dispatch import (
    auto_chunksize,
    context_spec,
    load_dispatch_stats,
    record_dispatch,
    resolve_backend,
    runner_path,
)
from repro.sweep.executor import SweepCellError
from repro.sweep import worker as worker_mod


def small_sweep(**base):
    return Sweep(base={"k": 7, **base}, seeds=2).axis("x", [1, 2, 3, 4])


def make_ssh_shim(tmp_path) -> str:
    """A fake ssh client: drop options + host, run the command locally."""
    shim = tmp_path / "fake-ssh"
    shim.write_text(
        "#!/bin/sh\n"
        'while [ "$#" -gt 0 ]; do\n'
        '  case "$1" in\n'
        "    -o) shift 2 ;;\n"
        "    -*) shift ;;\n"
        "    *) break ;;\n"
        "  esac\n"
        "done\n"
        'host="$1"; shift\n'
        'exec /bin/sh -c "$*"\n'
    )
    shim.chmod(0o755)
    return str(shim)


def ssh_localhost_works() -> bool:
    try:
        return (
            subprocess.run(
                ["ssh", "-o", "BatchMode=yes", "-o", "ConnectTimeout=2",
                 "localhost", "true"],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=10,
            ).returncode
            == 0
        )
    except (OSError, subprocess.TimeoutExpired):
        return False


class TestRegistry:
    def test_backends_registered(self):
        names = dispatch_backends.names()
        assert {"local-pool", "subprocess", "ssh"} <= set(names)

    def test_aliases(self):
        assert dispatch_backends.get("pool") is LocalPoolDispatch
        assert dispatch_backends.get("worker") is SubprocessDispatch

    def test_unknown_backend_suggests(self):
        with pytest.raises(SweepError, match="subprocess"):
            run_sweep(small_sweep(), arithmetic_cell, dispatch="subproces")

    def test_resolve_instance_passthrough(self):
        backend = LocalPoolDispatch(workers=2)
        assert resolve_backend(backend) is backend

    def test_resolve_instance_rejects_params(self):
        with pytest.raises(SweepError, match="dispatch_params"):
            resolve_backend(LocalPoolDispatch(workers=2), params={"workers": 3})

    def test_resolve_filters_kwargs_by_signature(self):
        # subprocess's factory takes workers but not mp_context/chunksize;
        # resolve must not explode passing the inapplicable ones.
        backend = resolve_backend(
            "subprocess", workers=3, mp_context="spawn", chunksize=4
        )
        assert backend.n_workers == 3

    def test_dispatch_params_without_dispatch_rejected(self):
        with pytest.raises(SweepError, match="dispatch_params"):
            run_sweep(
                small_sweep(), arithmetic_cell, dispatch_params={"workers": 2}
            )


class TestAutoChunksize:
    def test_bounds(self):
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(1, 4) == 1
        assert auto_chunksize(10_000, 2) == 32

    def test_mid_grid(self):
        # 22 tasks over 2 workers: a few chunks per worker, not one giant.
        assert 1 <= auto_chunksize(22, 2) <= 6

    def test_pinned_chunksize_respected(self):
        backend = LocalPoolDispatch(workers=2, chunksize=5)
        run_sweep(small_sweep(), arithmetic_cell, dispatch=backend)
        assert backend.stats.chunksize == 5


class TestHostfile:
    def test_parse(self, tmp_path):
        hf = tmp_path / "hosts"
        hf.write_text(
            "# fleet\n"
            "alpha 4\n"
            "beta\n"
            "gamma 2  # trailing comment\n"
            "\n"
        )
        assert parse_hostfile(hf) == {"alpha": 4, "beta": 1, "gamma": 2}

    def test_repeated_host_accumulates(self, tmp_path):
        hf = tmp_path / "hosts"
        hf.write_text("alpha 2\nalpha\n")
        assert parse_hostfile(hf) == {"alpha": 3}

    def test_bad_count(self, tmp_path):
        hf = tmp_path / "hosts"
        hf.write_text("alpha lots\n")
        with pytest.raises(SweepError, match="integer"):
            parse_hostfile(hf)

    def test_zero_count(self, tmp_path):
        hf = tmp_path / "hosts"
        hf.write_text("alpha 0\n")
        with pytest.raises(SweepError, match=">= 1"):
            parse_hostfile(hf)

    def test_empty(self, tmp_path):
        hf = tmp_path / "hosts"
        hf.write_text("# nothing\n")
        with pytest.raises(SweepError, match="no hosts"):
            parse_hostfile(hf)

    def test_ssh_requires_hosts(self):
        with pytest.raises(SweepError, match="hosts"):
            SshDispatch()


class TestPortability:
    def test_runner_path_roundtrip(self):
        path = runner_path(arithmetic_cell)
        assert worker_mod.resolve_callable(path) is arithmetic_cell

    def test_runner_path_rejects_lambda(self):
        with pytest.raises(SweepError, match="importable"):
            runner_path(lambda p, s, c: {})

    def test_runner_path_rejects_local_function(self):
        def local_cell(params, seed, context):
            return {}

        with pytest.raises(SweepError, match="importable"):
            runner_path(local_cell)

    def test_context_spec_none_and_json(self):
        assert context_spec(None) is None
        assert context_spec({"a": 1}) == {"kind": "json", "data": {"a": 1}}

    def test_context_spec_trace_recipe(self):
        from repro.workload import portable_workload

        trace = portable_workload("game", rounds=120)
        spec = context_spec(trace)
        assert spec == {
            "kind": "workload", "name": "game", "params": {"rounds": 120}
        }
        rebuilt = worker_mod.build_context(spec)
        assert rebuilt.cache_token() == trace.cache_token()

    def test_context_spec_unportable_rejected(self):
        from repro.registry import workloads

        bare = workloads.create("game", rounds=120)  # no recipe stamped
        with pytest.raises(SweepError, match="portable"):
            context_spec(bare)

    def test_trace_context_spec_rebuilds_with_engine(self):
        from repro.analysis.experiments import TraceContext, _trace_engine
        from repro.workload import portable_workload

        ctx = TraceContext(portable_workload("game", rounds=120), engine="v3")
        spec = ctx.worker_recipe()
        rebuilt = worker_mod.build_context(spec)
        trace, engine = _trace_engine(rebuilt)
        assert engine == "v3"
        assert trace.cache_token() == ctx.trace.cache_token()
        assert ctx.cache_token().endswith("|engine=v3")


class TestWorkerProtocol:
    """Drive the worker loop in-process over text streams."""

    def run_worker(self, frames):
        stdin = io.StringIO(
            "".join(json.dumps(f, sort_keys=True) + "\n" for f in frames)
        )
        stdout = io.StringIO()
        # main() stamps WORKER_ENV in os.environ; running it in-process
        # would leak the marker into the pytest process (and arm
        # flaky_worker_cell in later tests), so restore it afterwards.
        prev = os.environ.get(worker_mod.WORKER_ENV)
        try:
            code = worker_mod.main(stdin=stdin, stdout=stdout)
            self.env_during = os.environ.get(worker_mod.WORKER_ENV)
        finally:
            if prev is None:
                os.environ.pop(worker_mod.WORKER_ENV, None)
            else:
                os.environ[worker_mod.WORKER_ENV] = prev
        lines = [json.loads(l) for l in stdout.getvalue().splitlines() if l]
        return code, lines

    def hello(self, runner="repro.sweep.cells:arithmetic_cell", **extra):
        frame = {
            "type": "hello",
            "protocol": worker_mod.PROTOCOL,
            "runner": runner,
            "context": None,
            "keep_results": False,
        }
        frame.update(extra)
        return frame

    def test_happy_path(self):
        code, lines = self.run_worker([
            self.hello(),
            {"type": "job", "id": 5, "params": {"x": 1}, "replicate": 0,
             "seed": 42},
            {"type": "shutdown"},
        ])
        assert code == 0
        assert lines[0]["type"] == "ready"
        assert lines[0]["protocol"] == worker_mod.PROTOCOL
        result = lines[1]
        assert result["type"] == "result" and result["id"] == 5
        assert result["run"] == {
            "replicate": 0,
            "seed": 42,
            "metrics": arithmetic_cell({"x": 1}, 42, None),
            "violations": [],
            "result": None,
        }

    def test_result_matches_serial_execution_exactly(self):
        params, seed = {"x": 3, "k": 7}, 987654321
        _, lines = self.run_worker([
            self.hello(),
            {"type": "job", "id": 0, "params": params, "replicate": 1,
             "seed": seed},
            {"type": "shutdown"},
        ])
        from repro.sweep.executor import _execute

        _, _, run = _execute(arithmetic_cell, None, (0, 0, params, 1, seed), False)
        assert lines[1]["run"] == json.loads(json.dumps(run.to_dict()))

    def test_error_frame_carries_cell_coordinates(self):
        _, lines = self.run_worker([
            self.hello(runner="repro.sweep.cells:failing_cell"),
            {"type": "job", "id": 9,
             "params": {"x": 2, "fail_at": 2}, "replicate": 0, "seed": 1},
            {"type": "shutdown"},
        ])
        err = lines[1]
        assert err["type"] == "error" and err["id"] == 9
        assert err["params"] == {"x": 2, "fail_at": 2}
        assert err["replicate"] == 0 and err["seed"] == 1
        assert "designated failure" in err["error"]

    def test_protocol_mismatch_is_fatal(self):
        code, lines = self.run_worker([self.hello(protocol=99)])
        assert code == 2
        assert lines[0]["type"] == "fatal"
        assert "protocol" in lines[0]["error"]

    def test_job_before_hello_is_fatal(self):
        code, lines = self.run_worker([
            {"type": "job", "id": 0, "params": {}, "replicate": 0, "seed": 0}
        ])
        assert code == 2
        assert lines[0]["type"] == "fatal"

    def test_unknown_frame_is_fatal(self):
        code, lines = self.run_worker([self.hello(), {"type": "dance"}])
        assert code == 2
        assert lines[-1]["type"] == "fatal"

    def test_unresolvable_runner_is_fatal(self):
        code, lines = self.run_worker([self.hello(runner="repro.nope:missing")])
        assert code == 2
        assert lines[0]["type"] == "fatal"

    def test_worker_env_marker_set(self):
        self.run_worker([self.hello(), {"type": "shutdown"}])
        assert self.env_during == "1"
        assert os.environ.get(worker_mod.WORKER_ENV) is None


class TestDispatchDeterminism:
    """serial == local-pool == subprocess == ssh, byte for byte."""

    pytestmark = pytest.mark.slow

    def test_all_paths_byte_identical(self, tmp_path):
        sweep = small_sweep()
        serial = run_sweep(sweep, arithmetic_cell).to_json()
        pool = run_sweep(
            sweep, arithmetic_cell, dispatch="local-pool", workers=2
        ).to_json()
        sub = run_sweep(
            sweep, arithmetic_cell, dispatch="subprocess", workers=2
        ).to_json()
        ssh = run_sweep(
            sweep,
            arithmetic_cell,
            dispatch=SshDispatch(
                hosts={"localhost": 2},
                ssh=make_ssh_shim(tmp_path),
                python=sys.executable,
            ),
        ).to_json()
        assert serial == pool == sub == ssh

    def test_legacy_workers_path_unchanged(self):
        # workers>=2 without dispatch= now routes through LocalPoolDispatch;
        # output must equal the serial run exactly, as it always has.
        sweep = small_sweep()
        assert (
            run_sweep(sweep, arithmetic_cell, workers=2).to_json()
            == run_sweep(sweep, arithmetic_cell).to_json()
        )

    @pytest.mark.skipif(
        not ssh_localhost_works(), reason="no passwordless ssh to localhost"
    )
    def test_real_ssh_to_localhost(self):
        sweep = small_sweep()
        serial = run_sweep(sweep, arithmetic_cell).to_json()
        ssh = run_sweep(
            sweep,
            arithmetic_cell,
            dispatch="ssh",
            dispatch_params={
                "hosts": {"localhost": 2}, "python": sys.executable
            },
        ).to_json()
        assert ssh == serial

    def test_json_context_travels(self, tmp_path):
        sweep = small_sweep()
        ctx = {"offset": 2.5}
        serial = run_sweep(sweep, arithmetic_cell, context=ctx).to_json()
        sub = run_sweep(
            sweep, arithmetic_cell, context=ctx,
            dispatch="subprocess", workers=2,
        ).to_json()
        assert sub == serial

    def test_cold_with_cache_and_warm_byte_identical(self, tmp_path):
        sweep = small_sweep()
        plain = run_sweep(sweep, arithmetic_cell).to_json()
        cache = tmp_path / "cache"
        cold = run_sweep(
            sweep, arithmetic_cell, dispatch="subprocess", workers=2,
            cache=cache,
        ).to_json()
        warm = run_sweep(sweep, arithmetic_cell, cache=cache).to_json()
        warm_dispatched = run_sweep(
            sweep, arithmetic_cell, dispatch="subprocess", workers=2,
            cache=cache,
        ).to_json()
        assert plain == cold == warm == warm_dispatched

    def test_dispatch_stats_recorded_with_cache(self, tmp_path):
        cache = tmp_path / "cache"
        backend = SubprocessDispatch(workers=2)
        run_sweep(small_sweep(), arithmetic_cell, dispatch=backend, cache=cache)
        payload = load_dispatch_stats(cache)
        assert len(payload["runs"]) == 1
        entry = payload["runs"][0]
        assert entry["backend"] == "subprocess"
        assert entry["completed"] == 8
        assert entry["cells_total"] == 8 and entry["cells_cached"] == 0
        assert set(entry["per_worker"]) == {"local/0", "local/1"}

    def test_scenario_cells_over_subprocess(self):
        # Full-stack cells (kernel, protocol, invariant checks) through the
        # frame protocol: the sharpest byte-identity probe we have.
        from repro.sweep import ScenarioSweep

        sweep = (
            ScenarioSweep(
                base={
                    "until": 5.0,
                    "workload": "game",
                    "workload_params": {"rounds": 120},
                    "consumer_rate": 300.0,
                    "consensus": "oracle",
                    "metrics": ["throughput", "purges"],
                },
                seeds=2,
            )
            .axis("n", [3, 5])
        )
        serial = sweep.run().to_json()
        sub = sweep.run(dispatch="subprocess", workers=2).to_json()
        assert sub == serial


class TestCrashRecovery:
    pytestmark = pytest.mark.slow

    def test_killed_worker_requeues_and_output_identical(self, tmp_path):
        marker = str(tmp_path / "killed")
        sweep = Sweep(
            base={"marker": marker, "victim": 3}, seeds=2
        ).axis("x", [1, 2, 3, 4, 5, 6])
        serial = run_sweep(sweep, flaky_worker_cell).to_json()
        assert not os.path.exists(marker)  # serial runs never trigger it

        # max_copies=1 disables stealing, so the crashed worker's cells
        # (the victim itself, at minimum) can only come back via requeue —
        # otherwise a fast survivor can steal them first and hide the crash.
        backend = SubprocessDispatch(workers=2, max_copies=1)
        dispatched = run_sweep(
            sweep, flaky_worker_cell, dispatch=backend
        ).to_json()
        assert dispatched == serial
        assert os.path.exists(marker)  # exactly one worker died
        assert backend.stats.reissued >= 1
        assert sum(
            1 for w in backend.stats.per_worker.values() if w["crashed"]
        ) == 1

    def test_all_workers_dead_raises(self):
        # A worker command that exits immediately: no results, clear error.
        backend = SubprocessDispatch(workers=2, python="/bin/false")
        with pytest.raises(DispatchError, match="workers exited"):
            run_sweep(small_sweep(), arithmetic_cell, dispatch=backend)

    def test_cell_error_propagates_from_worker(self):
        sweep = Sweep(base={"fail_at": 3}, seeds=1).axis("x", [1, 2, 3, 4])
        with pytest.raises(SweepCellError, match="designated failure") as info:
            run_sweep(sweep, failing_cell, dispatch="subprocess", workers=2)
        assert info.value.params == {"fail_at": 3, "x": 3}
        assert info.value.replicate == 0


class TestStragglers:
    pytestmark = pytest.mark.slow

    def test_tail_cells_stolen_and_deduped(self):
        # The first cell sleeps; nine instant cells follow.  With two
        # workers the idle one must steal the sleeper's queue, and the
        # late duplicates must be discarded first-result-wins.
        sweep = Sweep(base={"x": 1}, seeds=1).axis(
            "sleep_s", [0.8] + [0.0] * 9
        )
        serial = run_sweep(sweep, sleepy_cell).to_json()
        backend = SubprocessDispatch(workers=2)
        out = run_sweep(sweep, sleepy_cell, dispatch=backend).to_json()
        assert out == serial
        assert backend.stats.stolen >= 1
        assert backend.stats.dispatched >= backend.stats.completed
        assert backend.stats.completed == 10

    def test_window_adapts_to_fast_cells(self):
        sweep = Sweep(base={}, seeds=1).axis("x", list(range(40)))
        backend = SubprocessDispatch(workers=1)
        run_sweep(sweep, arithmetic_cell, dispatch=backend)
        # Micro-cells: the in-flight window must have opened well past the
        # initial 2 (bounded by max_window).
        assert backend.stats.window > 2
        assert backend.stats.window <= backend.max_window


class TestDispatchStatsTrail:
    def test_record_caps_history(self, tmp_path):
        for i in range(60):
            record_dispatch(tmp_path, {"backend": "x", "i": i})
        runs = load_dispatch_stats(tmp_path)["runs"]
        assert len(runs) == 50
        assert runs[-1]["i"] == 59 and runs[0]["i"] == 10

    def test_load_missing_and_corrupt(self, tmp_path):
        assert load_dispatch_stats(tmp_path)["runs"] == []
        (tmp_path / "dispatch-stats.json").write_text("{nope")
        assert load_dispatch_stats(tmp_path)["runs"] == []

    @pytest.mark.slow
    def test_cli_stats_reports_dispatch_section(self, tmp_path, capsys):
        from repro.sweep.cli import main as cli_main

        cache_dir = str(tmp_path / "cache")
        run_sweep(
            small_sweep(), arithmetic_cell, cache=cache_dir,
            dispatch="subprocess", dispatch_params={"workers": 2},
        )
        assert cli_main(["stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "dispatch:" in out and "subprocess" in out
        assert "local/0" in out  # per-worker timing of the last run

        assert cli_main(["stats", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        agg = payload["dispatch"]["by_backend"]["subprocess"]
        assert agg["runs"] == 1 and agg["dispatched"] >= 8
        assert payload["dispatch"]["last"]["cells_total"] == 8

    def test_cli_stats_without_dispatch_trail(self, tmp_path, capsys):
        from repro.sweep.cli import main as cli_main

        cache_dir = str(tmp_path / "cache")
        run_sweep(small_sweep(), arithmetic_cell, cache=cache_dir)
        assert cli_main(["stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "dispatch:" not in out
        assert cli_main(["stats", cache_dir, "--json"]) == 0
        assert "dispatch" not in json.loads(capsys.readouterr().out)


class TestDispatchStatsConcurrency:
    """Regression: the trail's read-modify-write dropped concurrent records.

    Two sweeps finishing into one cache dir each read the same trail; the
    second ``os.replace`` silently discarded the first's record.  The
    ``O_EXCL`` lockfile serializes the append (bounded retry, stale-lock
    breaking), so every record survives.
    """

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        import threading

        barrier = threading.Barrier(8)

        def write(base):
            barrier.wait()
            for i in range(5):
                record_dispatch(tmp_path, {"backend": "t", "i": base + i})

        threads = [
            threading.Thread(target=write, args=(t * 5,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        runs = load_dispatch_stats(tmp_path)["runs"]
        assert sorted(run["i"] for run in runs) == list(range(40))
        # The lock is released afterwards.
        assert not (tmp_path / "dispatch-stats.json.lock").exists()

    def test_trim_happens_after_merge_not_before(self, tmp_path):
        # Seed the trail right at the cap, then append: the oldest record
        # must fall off and the newest survive — trimming before the
        # merge would instead drop the new record.
        for i in range(50):
            record_dispatch(tmp_path, {"backend": "t", "i": i})
        record_dispatch(tmp_path, {"backend": "t", "i": 50})
        runs = load_dispatch_stats(tmp_path)["runs"]
        assert len(runs) == 50
        assert runs[-1]["i"] == 50 and runs[0]["i"] == 1

    def test_stale_lock_is_broken(self, tmp_path):
        lock = tmp_path / "dispatch-stats.json.lock"
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("999999")
        old = time.time() - 3600
        os.utime(lock, (old, old))
        record_dispatch(tmp_path, {"backend": "t", "i": 1})
        assert load_dispatch_stats(tmp_path)["runs"][-1]["i"] == 1
        assert not lock.exists()

    def test_fresh_foreign_lock_waits_then_proceeds(self, tmp_path, monkeypatch):
        from repro.sweep import dispatch as dispatch_mod

        # A live lock that never releases: after the (shrunken) retry
        # budget the append proceeds unlocked — stats are best-effort and
        # must never wedge a sweep.
        monkeypatch.setattr(dispatch_mod, "_LOCK_RETRIES", 3)
        monkeypatch.setattr(dispatch_mod, "_LOCK_SLEEP_S", 0.001)
        (tmp_path / "dispatch-stats.json.lock").write_text("1")
        record_dispatch(tmp_path, {"backend": "t", "i": 7})
        assert load_dispatch_stats(tmp_path)["runs"][-1]["i"] == 7

    def test_no_tmp_litter_left_behind(self, tmp_path):
        for i in range(3):
            record_dispatch(tmp_path, {"backend": "t", "i": i})
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".dispatch-")]
        assert leftovers == []
