"""Determinism regression: the sweep executor adds no nondeterminism.

The same derived seed must yield a byte-identical ``ScenarioResult.to_json()``
whether the scenario runs directly, through the serial executor, or through
a multiprocess pool — and the aggregated sweep JSON must be identical for
any worker count.
"""

import json

import pytest

from repro.sweep import ScenarioSweep, derive_seed, scenario_cell

pytestmark = pytest.mark.slow  # spawns worker processes

BASE = {
    "until": 5.0,
    "workload": "game",
    "workload_params": {"rounds": 120},
    "consumer_rate": 250.0,
    "consensus": "oracle",
    "histories": True,
    "metrics": ["throughput", "purges", "view_changes"],
}


def make_sweep():
    return (
        ScenarioSweep(base=BASE, seeds=2, base_seed=42)
        .axis("n", [2, 3])
        .axis("latency_model", ["constant", "lognormal"])
    )


@pytest.fixture(scope="module")
def serial_result():
    return make_sweep().run(workers=0, keep_results=True)


def test_serial_vs_parallel_sweep_json_byte_identical(serial_result):
    parallel = make_sweep().run(workers=2, keep_results=True)
    assert serial_result.to_json() == parallel.to_json()


def test_executor_result_matches_direct_scenario_run(serial_result):
    """Per-cell ScenarioResults captured by the executor are byte-identical
    to running the same cell with the same derived seed by hand."""
    sweep = make_sweep()
    for params in sweep.cells():
        for replicate, seed in enumerate(sweep.seeds_for(params)):
            direct = scenario_cell(params, seed)
            captured = next(
                run.result
                for run in serial_result.select(
                    n=params["n"], latency_model=params["latency_model"]
                ).runs
                if run.replicate == replicate
            )
            assert json.dumps(captured, sort_keys=True) == json.dumps(
                direct.to_dict(), sort_keys=True
            )


def test_rerun_is_byte_identical(serial_result):
    again = make_sweep().run(workers=0, keep_results=True)
    assert serial_result.to_json() == again.to_json()


def test_seed_derivation_matches_grid():
    sweep = make_sweep()
    params = sweep.cells()[0]
    assert sweep.seeds_for(params)[1] == derive_seed(42, params, 1)
