"""SweepResult aggregation statistics and JSON round trip."""

import pytest

from repro.sweep import (
    CellResult,
    CellRun,
    SweepResult,
    summarise,
)


def make_result(keep_result=False):
    cells = [
        CellResult(
            params={"x": x},
            runs=[
                CellRun(
                    replicate=rep,
                    seed=1000 + 10 * x + rep,
                    metrics={"value": float(x * 10 + rep)},
                    violations=[],
                    result={"payload": x} if keep_result else None,
                )
                for rep in range(3)
            ],
        )
        for x in (1, 2)
    ]
    return SweepResult(
        base={"fixed": 7},
        axes={"x": [1, 2]},
        seeds=3,
        base_seed=0,
        cells=cells,
    )


class TestStats:
    def test_mean_std_ci(self):
        stats = make_result().select(x=1).stats("value")
        assert stats.mean == pytest.approx(11.0)
        assert stats.n == 3
        assert stats.min == 10.0 and stats.max == 12.0
        assert stats.std == pytest.approx(1.0)
        assert stats.ci95 == pytest.approx(1.96 / 3**0.5)

    def test_single_sample_has_zero_spread(self):
        stats = summarise([4.2])
        assert stats.mean == 4.2 and stats.std == 0.0 and stats.ci95 == 0.0

    def test_unknown_metric_raises_with_known_names(self):
        with pytest.raises(KeyError, match="value"):
            make_result().select(x=1).stats("nope")


class TestSelect:
    def test_select_unique(self):
        assert make_result().select(x=2).params == {"x": 2}

    def test_select_no_match(self):
        with pytest.raises(KeyError, match="no cell"):
            make_result().select(x=99)

    def test_select_ambiguous(self):
        with pytest.raises(KeyError, match="2 cells match"):
            make_result().select()  # no coordinates matches every cell

    def test_column(self):
        pairs = make_result().column("value")
        assert [(p["x"], v) for p, v in pairs] == [(1, 11.0), (2, 21.0)]


class TestJsonRoundTrip:
    def test_lossless(self):
        result = make_result(keep_result=True)
        clone = SweepResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()
        assert clone.select(x=1).runs[0].result == {"payload": 1}

    def test_json_carries_stats_blocks(self):
        data = make_result().to_dict()
        assert data["cells"][0]["stats"]["value"]["n"] == 3

    def test_write_read(self, tmp_path):
        path = tmp_path / "sweep.json"
        result = make_result()
        result.write_json(str(path))
        assert SweepResult.read_json(str(path)).to_json() == result.to_json()

    def test_unsupported_schema_version(self):
        data = make_result().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            SweepResult.from_dict(data)
