"""Worker-side failures must name the failing cell, not just the pool.

Regression tests for the profiling-era bug: a runner exception inside a
multiprocessing worker surfaced as a bare pool traceback, with no way to
tell which of thousands of cells (or which replicate/seed) died.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.sweep import Sweep, SweepCellError


def _explodes_on_x3(params, seed, context):
    if params["x"] == 3:
        raise ValueError(f"boom at x={params['x']}")
    return {"value": params["x"]}


def _cpus() -> int:
    try:
        import os

        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


class TestCellErrorMessages:
    def test_serial_error_carries_cell_json(self):
        sweep = Sweep(seeds=1).axis("x", [1, 2, 3, 4])
        with pytest.raises(SweepCellError) as excinfo:
            sweep.run(_explodes_on_x3, workers=0)
        message = str(excinfo.value)
        assert '{"x": 3}' in message
        assert "ValueError" in message and "boom at x=3" in message
        assert "replicate: 0" in message
        assert excinfo.value.params == {"x": 3}
        assert excinfo.value.replicate == 0
        assert isinstance(excinfo.value.seed, int)

    def test_pooled_error_carries_cell_json(self):
        if _cpus() < 2:
            pytest.skip("needs >= 2 CPUs for a meaningful pool")
        sweep = Sweep(seeds=1).axis("x", [1, 2, 3, 4])
        with pytest.raises(SweepCellError) as excinfo:
            sweep.run(_explodes_on_x3, workers=2)
        message = str(excinfo.value)
        assert '{"x": 3}' in message
        assert "boom at x=3" in message
        # Structured fields survived the pool's pickling round trip.
        assert excinfo.value.params == {"x": 3}

    def test_error_pickles_losslessly(self):
        err = SweepCellError("msg", params={"a": 1}, replicate=2, seed=99)
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == "msg"
        assert clone.params == {"a": 1}
        assert clone.replicate == 2 and clone.seed == 99

    def test_seed_in_message_reproduces_cell(self):
        """The (cell, seed) pair in the message is the real derived seed."""
        from repro.sweep import derive_seed

        sweep = Sweep(seeds=1).axis("x", [3])
        with pytest.raises(SweepCellError) as excinfo:
            sweep.run(_explodes_on_x3, workers=0)
        assert excinfo.value.seed == derive_seed(0, {"x": 3}, 0)


class TestPrepareWorkerHook:
    def test_hook_called_once_serially(self):
        calls = []

        class Context:
            def prepare_worker(self):
                calls.append(1)

        Sweep(seeds=2).axis("x", [1, 2]).run(
            lambda p, s, c: {"v": 1.0}, workers=0, context=Context()
        )
        assert calls == [1]

    def test_mapping_context_without_hook_is_fine(self):
        result = Sweep(seeds=1).axis("x", [1]).run(
            lambda p, s, c: {"v": float(c["base"])}, workers=0, context={"base": 2}
        )
        assert result.ok
