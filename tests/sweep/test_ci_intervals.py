"""Student-t confidence intervals: the z-for-all-n bugfix.

``ci95`` historically used z=1.96 regardless of sample size — at the 3–5
replicates sweeps actually run, that understates the 95 % interval by up
to 2×.  The fix keeps ``ci95`` byte-identical (golden fixtures pin it)
and adds ``ci95_t`` with the Student-t critical value at n-1 degrees of
freedom; reports quote the t interval.
"""

import math

import pytest

from repro.sweep import Sweep, t_critical
from repro.sweep.cells import arithmetic_cell
from repro.sweep.result import MetricStats, SweepResult, summarise


class TestTCritical:
    def test_exact_table_values(self):
        assert t_critical(1) == 12.706
        assert t_critical(2) == 4.303
        assert t_critical(4) == 2.776
        assert t_critical(9) == 2.262
        assert t_critical(30) == 2.042
        assert t_critical(120) == 1.980

    def test_between_rows_rounds_df_down(self):
        # 31..39 use the df=30 row, 45 the df=40 row — conservative
        # (never narrower than the true t interval).
        assert t_critical(31) == t_critical(39) == 2.042
        assert t_critical(45) == 2.021
        assert t_critical(100) == 2.000

    def test_large_samples_converge_to_z(self):
        assert t_critical(121) == 1.96
        assert t_critical(10**6) == 1.96

    def test_strictly_decreasing_toward_z(self):
        values = [t_critical(df) for df in range(1, 31)]
        assert values == sorted(values, reverse=True)
        assert all(v > 1.96 for v in values)

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(-3)


class TestSummarise:
    def test_legacy_ci95_is_unchanged(self):
        # The exact expression the golden fixtures were generated with.
        stats = summarise([1.0, 2.0, 3.0])
        assert stats.ci95 == pytest.approx(1.96 / 3**0.5)

    def test_ci95_t_uses_n_minus_1_dof(self):
        stats = summarise([1.0, 2.0, 3.0])
        sem = stats.std / math.sqrt(3)
        assert stats.ci95_t == pytest.approx(t_critical(2) * sem)
        # At n=3 the z interval understates by the 4.303/1.96 ratio.
        assert stats.ci95_t / stats.ci95 == pytest.approx(4.303 / 1.96)

    def test_single_sample_has_no_interval(self):
        stats = summarise([5.0])
        assert stats.ci95 == 0.0 and stats.ci95_t == 0.0 and stats.std == 0.0

    def test_large_n_intervals_converge(self):
        values = [float(i % 7) for i in range(200)]
        stats = summarise(values)
        assert stats.ci95_t == pytest.approx(stats.ci95, rel=0.011)
        assert stats.ci95_t >= stats.ci95


class TestRoundTrip:
    def test_to_dict_carries_both_intervals(self):
        sweep = Sweep(base={"k": 7}, seeds=3).axis("x", [1]).run(
            arithmetic_cell
        )
        stats = sweep.to_dict()["cells"][0]["stats"]["value"]
        assert set(stats) >= {"mean", "std", "ci95", "ci95_t", "n"}
        assert stats["ci95_t"] / stats["ci95"] == pytest.approx(4.303 / 1.96)

    def test_from_dict_recomputes_stats_for_old_payloads(self):
        """Pre-fix archives (no ci95_t anywhere) still load, and their
        recomputed stats gain the t interval."""
        sweep = Sweep(base={"k": 7}, seeds=2).axis("x", [1]).run(
            arithmetic_cell
        )
        data = sweep.to_dict()
        for raw in data["cells"]:
            for stats in raw["stats"].values():
                stats.pop("ci95_t")
        restored = SweepResult.from_dict(data)
        assert restored.cells[0].stats("value").ci95_t > 0.0

    def test_metric_stats_default_keeps_old_constructors_working(self):
        stats = MetricStats(mean=1.0, std=0.0, ci95=0.0, n=1, min=1.0, max=1.0)
        assert stats.ci95_t == 0.0
